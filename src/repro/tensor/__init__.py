"""Mini deep-learning framework: NumPy tensors with reverse-mode autograd.

This package is the dense-compute substrate the paper's systems sit on —
the moral equivalent of the PyTorch + cuBLAS/cuDNN stack used on Summit.
"""

from . import functional
from .attention import CausalSelfAttention
from .autograd import enable_grad, is_grad_enabled, no_grad, set_grad_enabled
from .checkpoint import checkpoint, checkpoint_sequential, recompute_activation_bytes
from .layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
)
from .module import Module, ModuleList, Parameter, Sequential
from .precision import DynamicLossScaler, quantize_to_half, to_half
from .tensor import Tensor, as_tensor

__all__ = [
    "Tensor",
    "as_tensor",
    "functional",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "ReLU",
    "GELU",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Flatten",
    "Identity",
    "CausalSelfAttention",
    "DynamicLossScaler",
    "to_half",
    "quantize_to_half",
    "checkpoint",
    "checkpoint_sequential",
    "recompute_activation_bytes",
]
