"""The :class:`Tensor` type: a NumPy array with reverse-mode autograd.

Design goals (see DESIGN.md):

* every differentiable op is a thin vectorized NumPy expression — no Python
  loops over elements (per the hpc-parallel guides, vectorize everything);
* the graph is recorded eagerly and freed eagerly: interior gradients are
  dropped as soon as they are consumed so long training loops do not leak;
* storage dtype is caller-controlled (float32 by default; float16 is used by
  the mixed-precision machinery for parameter storage).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import autograd
from .autograd import is_grad_enabled, unbroadcast

__all__ = ["Tensor", "as_tensor"]

Arrayish = "Tensor | np.ndarray | float | int | Sequence"


def as_tensor(value, dtype=np.float32) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


class Tensor:
    """A differentiable n-dimensional array.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray``. Floating dtypes are kept;
        other dtypes are cast to float32.
    requires_grad:
        When true, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_retains_grad")

    def __init__(self, data, requires_grad: bool = False):
        arr = np.asarray(data)
        if arr.dtype.kind != "f":
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        # Leaves retain grads; interior nodes free them after consumption.
        self._retains_grad: bool = bool(requires_grad)

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build an op output, recording the graph only when useful."""
        out = cls.__new__(cls)
        out.data = data
        out.grad = None
        out._retains_grad = False
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        else:
            out.requires_grad = False
            out._parents = ()
            out._backward = None
        return out

    def _accumulate_grad(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (scalar unless ``grad`` given)."""
        autograd.backward(self, grad)

    def retain_grad(self) -> "Tensor":
        """Keep this interior node's gradient after backward (for tests)."""
        self._retains_grad = True
        return self

    def zero_grad(self) -> None:
        """Drop the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a view of the data cut out of the autograd graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{flag})"

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        a, b = self, other
        out_data = a.data + b.data

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(unbroadcast(g, a.data.shape))
            if b.requires_grad:
                b._accumulate_grad(unbroadcast(g, b.data.shape))

        return Tensor._from_op(out_data, (a, b), _bwd)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self
        out_data = -a.data

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(-g)

        return Tensor._from_op(out_data, (a,), _bwd)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other, dtype=self.data.dtype))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other, dtype=self.data.dtype) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        a, b = self, other
        out_data = a.data * b.data

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(unbroadcast(g * b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate_grad(unbroadcast(g * a.data, b.data.shape))

        return Tensor._from_op(out_data, (a, b), _bwd)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        a, b = self, other
        out_data = a.data / b.data

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(unbroadcast(g / b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate_grad(
                    unbroadcast(-g * a.data / (b.data * b.data), b.data.shape)
                )

        return Tensor._from_op(out_data, (a, b), _bwd)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other, dtype=self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        a = self
        out_data = a.data ** exponent

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(g * exponent * a.data ** (exponent - 1))

        return Tensor._from_op(out_data, (a,), _bwd)

    # ------------------------------------------------------------------
    # elementwise transcendental
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(g * out_data)

        return Tensor._from_op(out_data, (a,), _bwd)

    def log(self) -> "Tensor":
        a = self
        out_data = np.log(a.data)

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(g / a.data)

        return Tensor._from_op(out_data, (a,), _bwd)

    def sqrt(self) -> "Tensor":
        a = self
        out_data = np.sqrt(a.data)

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(g * 0.5 / out_data)

        return Tensor._from_op(out_data, (a,), _bwd)

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(g * (1.0 - out_data * out_data))

        return Tensor._from_op(out_data, (a,), _bwd)

    def abs(self) -> "Tensor":
        a = self
        out_data = np.abs(a.data)

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(g * np.sign(a.data))

        return Tensor._from_op(out_data, (a,), _bwd)

    # ------------------------------------------------------------------
    # matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        a, b = self, other
        out_data = a.data @ b.data

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                if b.data.ndim == 1:
                    ga = np.outer(g, b.data) if a.data.ndim == 2 else g[..., None] * b.data
                else:
                    ga = g @ np.swapaxes(b.data, -1, -2)
                a._accumulate_grad(unbroadcast(ga, a.data.shape))
            if b.requires_grad:
                if a.data.ndim == 1:
                    gb = np.outer(a.data, g)
                else:
                    gb = np.swapaxes(a.data, -1, -2) @ g
                b._accumulate_grad(unbroadcast(gb, b.data.shape))

        return Tensor._from_op(out_data, (a, b), _bwd)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.sum(axis=axis, keepdims=keepdims)

        def _bwd(g: np.ndarray) -> None:
            if not a.requires_grad:
                return
            gg = g
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(ax % a.data.ndim for ax in axes)
                gg = np.expand_dims(gg, axes)
            a._accumulate_grad(np.broadcast_to(gg, a.data.shape).astype(a.data.dtype))

        return Tensor._from_op(np.asarray(out_data), (a,), _bwd)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = a.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([a.data.shape[ax] for ax in axes]))

        def _bwd(g: np.ndarray) -> None:
            if not a.requires_grad:
                return
            gg = g / count
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(ax % a.data.ndim for ax in axes)
                gg = np.expand_dims(gg, axes)
            a._accumulate_grad(np.broadcast_to(gg, a.data.shape).astype(a.data.dtype))

        return Tensor._from_op(np.asarray(out_data), (a,), _bwd)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=keepdims)

        def _bwd(g: np.ndarray) -> None:
            if not a.requires_grad:
                return
            gg, od = g, out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(ax % a.data.ndim for ax in axes)
                gg = np.expand_dims(gg, axes)
                od = np.expand_dims(od, axes)
            mask = (a.data == od).astype(a.data.dtype)
            # Split gradient evenly among ties (matches subgradient choice).
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            a._accumulate_grad(mask * gg / denom)

        return Tensor._from_op(np.asarray(out_data), (a,), _bwd)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        out_data = a.data.reshape(shape)

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(g.reshape(a.data.shape))

        return Tensor._from_op(out_data, (a,), _bwd)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        a = self
        out_data = a.data.transpose(axes)
        inv = np.argsort(axes)

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(g.transpose(inv))

        return Tensor._from_op(out_data, (a,), _bwd)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, ax1: int, ax2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[ax1], axes[ax2] = axes[ax2], axes[ax1]
        return self.transpose(tuple(axes))

    def __getitem__(self, idx) -> "Tensor":
        a = self
        out_data = a.data[idx]

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                full = np.zeros_like(a.data)
                np.add.at(full, idx, g)
                a._accumulate_grad(full)

        return Tensor._from_op(np.ascontiguousarray(out_data), (a,), _bwd)

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast (gradient is cast back)."""
        a = self
        out_data = a.data.astype(dtype)

        def _bwd(g: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate_grad(g.astype(a.data.dtype))

        return Tensor._from_op(out_data, (a,), _bwd)

    # comparisons produce plain bool arrays (non-differentiable)
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other
