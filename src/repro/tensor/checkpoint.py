"""Activation checkpointing (recompute-in-backward).

The paper notes (Section II-E) that AxoNN supports activation
checkpointing [Chen et al., "Training deep nets with sublinear memory
cost"]: instead of keeping every intermediate activation alive until the
backward pass, a checkpointed segment stores only its *inputs* during the
forward pass and re-runs the segment's forward when its gradient is
needed. Memory for activations drops from O(L) to O(L/S + S) at the cost
of one extra forward per segment.

On this engine a checkpointed segment is a single graph node whose
backward closure (1) re-executes the segment with gradient recording
enabled, (2) backpropagates the incoming cotangent through the recomputed
subgraph — parameter gradients accumulate exactly as they would have in
an ordinary backward — and (3) forwards the input cotangents to the
segment's parents.

Stochastic segments (dropout) must pass their generators via ``rngs`` so
the recomputation replays the same random draws; otherwise the recomputed
activations (and therefore the gradients) would not match the forward.
"""

from __future__ import annotations

import copy
from typing import Callable, Sequence

import numpy as np

from .autograd import backward as run_backward
from .autograd import enable_grad, is_grad_enabled, no_grad
from .tensor import Tensor

__all__ = ["checkpoint", "checkpoint_sequential", "recompute_activation_bytes"]


def checkpoint(
    fn: Callable[..., Tensor],
    *inputs: Tensor,
    rngs: Sequence[np.random.Generator] = (),
) -> Tensor:
    """Run ``fn(*inputs)`` without storing interior activations.

    Parameters
    ----------
    fn:
        A function of :class:`Tensor` arguments returning one Tensor (a
        module's ``__call__`` qualifies). It is invoked once now (under
        ``no_grad``) and once more during backward (recording).
    inputs:
        Segment inputs. Their ``.data`` buffers are the only activations
        kept alive for this segment.
    rngs:
        Random generators used inside ``fn`` (e.g. each Dropout's); their
        states are snapshotted and restored for the recomputation.

    Returns
    -------
    Tensor
        Output matching an un-checkpointed ``fn(*inputs)``, with a
        backward path that recomputes the segment.
    """
    saved_states = [copy.deepcopy(r.bit_generator.state) for r in rngs]
    with no_grad():
        out_nograd = fn(*inputs)
    if not isinstance(out_nograd, Tensor):
        raise TypeError(f"checkpointed fn must return a Tensor, got {type(out_nograd)}")
    if not is_grad_enabled():
        return out_nograd

    out = Tensor.__new__(Tensor)
    out.data = out_nograd.data
    out.grad = None
    out.requires_grad = True  # params inside fn may need grads even if inputs don't
    out._retains_grad = False
    out._parents = inputs

    def _bwd(g: np.ndarray) -> None:
        for r, s in zip(rngs, saved_states):
            r.bit_generator.state = copy.deepcopy(s)
        # Fresh leaves so the recomputed graph is rooted at the segment
        # boundary; parameters referenced inside fn are shared leaves and
        # receive their gradients directly.
        leaves = [Tensor(t.data, requires_grad=t.requires_grad) for t in inputs]
        with enable_grad():
            recomputed = fn(*leaves)
        if recomputed.data.shape != g.shape:
            raise RuntimeError(
                "checkpoint recomputation produced a different shape: "
                f"{recomputed.data.shape} vs cotangent {g.shape} "
                "(non-deterministic segment? pass its rngs)"
            )
        if recomputed.requires_grad:
            run_backward(recomputed, g)
        for orig, leaf in zip(inputs, leaves):
            if orig.requires_grad and leaf.grad is not None:
                orig._accumulate_grad(leaf.grad)

    out._backward = _bwd
    return out


def checkpoint_sequential(
    modules: Sequence,
    x: Tensor,
    segments: int,
    rngs_of: Callable[[object], Sequence[np.random.Generator]] | None = None,
) -> Tensor:
    """Checkpoint a module list in ``segments`` contiguous chunks.

    The standard sublinear-memory schedule: only segment-boundary
    activations stay alive through the forward pass. ``rngs_of(module)``
    may supply each module's generators (defaults to collecting ``.rng``
    attributes, which covers :class:`~repro.tensor.layers.Dropout`).
    """
    mods = list(modules)
    if not 1 <= segments <= max(len(mods), 1):
        raise ValueError(f"segments must be in [1, {len(mods)}], got {segments}")
    if not mods:
        return x

    if rngs_of is None:
        def rngs_of(m):  # noqa: D401 - tiny default
            r = getattr(m, "rng", None)
            return (r,) if isinstance(r, np.random.Generator) else ()

    bounds = np.linspace(0, len(mods), segments + 1).astype(int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if lo == hi:
            continue
        chunk = mods[lo:hi]

        def run_chunk(t: Tensor, _chunk=chunk) -> Tensor:
            for m in _chunk:
                t = m(t)
            return t

        seg_rngs = [r for m in chunk for r in rngs_of(m)]
        x = checkpoint(run_chunk, x, rngs=seg_rngs)
    return x


def recompute_activation_bytes(
    layer_activation_bytes: Sequence[int], segments: int
) -> tuple[int, int]:
    """Peak activation bytes (without, with) checkpointing into ``segments``.

    Without checkpointing every activation is alive at the backward's
    start: ``sum(bytes)``. With it, alive = the segment-boundary
    activations plus, transiently, one segment's interior recomputation —
    the classic ``O(L/S + S)`` trade-off, here computed exactly from the
    per-layer byte list.
    """
    sizes = [int(b) for b in layer_activation_bytes]
    total = sum(sizes)
    if segments <= 1 or not sizes:
        return total, total
    bounds = np.linspace(0, len(sizes), segments + 1).astype(int)
    boundary = sum(sizes[hi - 1] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo)
    interior_peak = max(
        sum(sizes[lo:hi]) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    )
    return total, boundary + interior_peak
