"""Differentiable neural-network ops built on :class:`repro.tensor.Tensor`.

Every function here is a vectorized NumPy expression with a hand-written
vector-Jacobian product. Convolution is implemented with stride-tricks
(im2col) in the forward pass and a kernel-position loop (O(kh*kw) vectorized
adds) in the backward pass — the standard CPU-efficient formulation.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "relu",
    "gelu",
    "sigmoid",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "mse_loss",
    "linear",
    "embedding",
    "layer_norm",
    "batch_norm",
    "dropout",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "flatten",
    "cat",
    "stack",
    "pad2d",
    "where_mask",
    "masked_fill",
]

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


# ---------------------------------------------------------------------------
# activations
# ---------------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    out_data = np.maximum(x.data, 0)

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(g * (x.data > 0))

    return Tensor._from_op(out_data, (x,), _bwd)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in GPT)."""
    xd = x.data
    inner = _SQRT_2_OVER_PI * (xd + 0.044715 * xd**3)
    t = np.tanh(inner)
    out_data = 0.5 * xd * (1.0 + t)

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            sech2 = 1.0 - t * t
            dinner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * xd * xd)
            x._accumulate_grad(g * (0.5 * (1.0 + t) + 0.5 * xd * sech2 * dinner))

    return Tensor._from_op(out_data, (x,), _bwd)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(g * out_data * (1.0 - out_data))

    return Tensor._from_op(out_data, (x,), _bwd)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            x._accumulate_grad(out_data * (g - dot))

    return Tensor._from_op(out_data, (x,), _bwd)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    sm = np.exp(out_data)

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(g - sm * g.sum(axis=axis, keepdims=True))

    return Tensor._from_op(out_data, (x,), _bwd)


# ---------------------------------------------------------------------------
# losses
# ---------------------------------------------------------------------------
def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int | None = None) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer class ``targets``.

    ``logits`` may be ``(N, C)`` or ``(N, T, C)``; targets are the matching
    integer array. ``ignore_index`` entries contribute zero loss and zero
    gradient (used for padding tokens in language modelling).
    """
    targets = np.asarray(targets)
    orig_shape = logits.data.shape
    flat_logits = logits.data.reshape(-1, orig_shape[-1])
    flat_targets = targets.reshape(-1).astype(np.int64)

    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
    n_valid = max(int(valid.sum()), 1)

    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - lse
    safe_targets = np.where(valid, flat_targets, 0)
    picked = logp[np.arange(flat_targets.shape[0]), safe_targets]
    loss = -(picked * valid).sum() / n_valid
    out_data = np.asarray(loss, dtype=logits.data.dtype)

    def _bwd(g: np.ndarray) -> None:
        if logits.requires_grad:
            sm = np.exp(logp)
            sm[np.arange(flat_targets.shape[0]), safe_targets] -= 1.0
            sm *= (valid / n_valid)[:, None]
            logits._accumulate_grad((float(g) * sm).reshape(orig_shape).astype(logits.data.dtype))

    return Tensor._from_op(out_data, (logits,), _bwd)


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target, dtype=pred.data.dtype)
    diff = pred - target
    return (diff * diff).mean()


# ---------------------------------------------------------------------------
# linear / embedding / normalisation
# ---------------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``.

    ``weight`` has shape ``(out_features, in_features)`` (PyTorch layout),
    ``x`` has shape ``(..., in_features)``.
    """
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add backward."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def _bwd(g: np.ndarray) -> None:
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, indices.reshape(-1), g.reshape(-1, weight.data.shape[1]))
            weight._accumulate_grad(full)

    return Tensor._from_op(out_data, (weight,), _bwd)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis with affine parameters."""
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mu) * inv
    out_data = xhat * weight.data + bias.data
    n = x.data.shape[-1]

    def _bwd(g: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate_grad((g * xhat).reshape(-1, n).sum(axis=0))
        if bias.requires_grad:
            bias._accumulate_grad(g.reshape(-1, n).sum(axis=0))
        if x.requires_grad:
            gx = g * weight.data
            mean_g = gx.mean(axis=-1, keepdims=True)
            mean_gx = (gx * xhat).mean(axis=-1, keepdims=True)
            x._accumulate_grad(inv * (gx - mean_g - xhat * mean_gx))

    return Tensor._from_op(out_data, (x, weight, bias), _bwd)


def batch_norm(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """2-D batch normalisation for NCHW inputs.

    ``running_mean``/``running_var`` are plain arrays updated in place when
    ``training`` is true (they are buffers, not parameters).
    """
    if x.data.ndim != 4:
        raise ValueError(f"batch_norm expects NCHW input, got ndim={x.data.ndim}")
    axes = (0, 2, 3)
    if training:
        mu = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        m = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
        unbiased = var * m / max(m - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mu
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mu = running_mean
        var = running_var

    inv = 1.0 / np.sqrt(var + eps)
    bshape = (1, -1, 1, 1)
    xhat = (x.data - mu.reshape(bshape)) * inv.reshape(bshape)
    out_data = xhat * weight.data.reshape(bshape) + bias.data.reshape(bshape)

    def _bwd(g: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate_grad((g * xhat).sum(axis=axes))
        if bias.requires_grad:
            bias._accumulate_grad(g.sum(axis=axes))
        if x.requires_grad:
            gx = g * weight.data.reshape(bshape)
            if training:
                m = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
                mean_g = gx.mean(axis=axes, keepdims=True)
                mean_gx = (gx * xhat).mean(axis=axes, keepdims=True)
                x._accumulate_grad(inv.reshape(bshape) * (gx - mean_g - xhat * mean_gx))
            else:
                x._accumulate_grad(gx * inv.reshape(bshape))

    return Tensor._from_op(out_data, (x, weight, bias), _bwd)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale by ``1/(1-p)``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.data.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    out_data = x.data * mask

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(g * mask)

    return Tensor._from_op(out_data, (x,), _bwd)


# ---------------------------------------------------------------------------
# convolution and pooling
# ---------------------------------------------------------------------------
def _pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def _im2col(xp: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Strided view of shape ``(N, C, kh, kw, oh, ow)`` over padded input."""
    n, c, hp, wp = xp.shape
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    sn, sc, sh, sw = xp.strides
    return np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation on NCHW input.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.
    Forward uses an im2col strided view + one big tensordot; backward loops
    only over the ``kh*kw`` kernel positions with vectorized adds.
    """
    n, c, h, w = x.data.shape
    oc, ic, kh, kw = weight.data.shape
    if ic != c:
        raise ValueError(f"conv2d channel mismatch: input {c}, weight {ic}")
    xp = _pad_nchw(x.data, padding)
    oh = (xp.shape[2] - kh) // stride + 1
    ow = (xp.shape[3] - kw) // stride + 1
    cols = _im2col(xp, kh, kw, stride)  # (N, C, kh, kw, oh, ow)
    out_data = np.tensordot(cols, weight.data, axes=((1, 2, 3), (1, 2, 3)))
    out_data = np.ascontiguousarray(out_data.transpose(0, 3, 1, 2))  # (N, OC, oh, ow)
    if bias is not None:
        out_data += bias.data.reshape(1, -1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def _bwd(g: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate_grad(g.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            # dW[o,c,u,v] = sum_{n,i,j} g[n,o,i,j] * cols[n,c,u,v,i,j]
            dw = np.tensordot(g, cols, axes=((0, 2, 3), (0, 4, 5)))
            weight._accumulate_grad(dw.astype(weight.data.dtype))
        if x.requires_grad:
            dxp = np.zeros_like(xp)
            for u in range(kh):
                for v in range(kw):
                    # contribution of kernel position (u, v)
                    contrib = np.tensordot(g, weight.data[:, :, u, v], axes=(1, 0))
                    # contrib: (N, oh, ow, C) -> (N, C, oh, ow)
                    contrib = contrib.transpose(0, 3, 1, 2)
                    dxp[:, :, u : u + stride * oh : stride, v : v + stride * ow : stride] += contrib
            if padding:
                dxp = dxp[:, :, padding:-padding, padding:-padding]
            x._accumulate_grad(dxp)

    return Tensor._from_op(out_data, parents, _bwd)


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling on NCHW input (square window)."""
    stride = stride or kernel_size
    k = kernel_size
    n, c, h, w = x.data.shape
    oh = (h - k) // stride + 1
    ow = (w - k) // stride + 1
    cols = _im2col(x.data, k, k, stride)  # (N, C, k, k, oh, ow)
    flat = cols.reshape(n, c, k * k, oh, ow)
    arg = flat.argmax(axis=2)  # (N, C, oh, ow)
    out_data = np.take_along_axis(flat, arg[:, :, None], axis=2)[:, :, 0]

    def _bwd(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dx = np.zeros_like(x.data)
        u = arg // k
        v = arg % k
        ni, ci, oi, oj = np.indices(arg.shape)
        rows = oi * stride + u
        colsi = oj * stride + v
        np.add.at(dx, (ni, ci, rows, colsi), g)
        x._accumulate_grad(dx)

    return Tensor._from_op(np.ascontiguousarray(out_data), (x,), _bwd)


def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Average pooling on NCHW input (square window)."""
    stride = stride or kernel_size
    k = kernel_size
    cols = _im2col(x.data, k, k, stride)
    out_data = cols.mean(axis=(2, 3))  # (N, C, oh, ow)
    n, c, h, w = x.data.shape
    oh, ow = out_data.shape[2], out_data.shape[3]

    def _bwd(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dx = np.zeros_like(x.data)
        share = g / (k * k)
        for u in range(k):
            for v in range(k):
                dx[:, :, u : u + stride * oh : stride, v : v + stride * ow : stride] += share
        x._accumulate_grad(dx)

    return Tensor._from_op(np.ascontiguousarray(out_data), (x,), _bwd)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Adaptive average pooling; only the common ``output_size=1`` case."""
    if output_size != 1:
        raise NotImplementedError("only output_size=1 is supported")
    n, c, h, w = x.data.shape
    out_data = x.data.mean(axis=(2, 3), keepdims=True)

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(np.broadcast_to(g / (h * w), x.data.shape).astype(x.data.dtype))

    return Tensor._from_op(out_data, (x,), _bwd)


# ---------------------------------------------------------------------------
# shape utilities
# ---------------------------------------------------------------------------
def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    """Flatten all dims from ``start_dim`` on."""
    shape = x.data.shape
    new_shape = shape[:start_dim] + (-1,)
    return x.reshape(new_shape)


def cat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def _bwd(g: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(int(lo), int(hi))
                t._accumulate_grad(g[tuple(sl)])

    return Tensor._from_op(out_data, tuple(tensors), _bwd)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def _bwd(g: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate_grad(np.take(g, i, axis=axis))

    return Tensor._from_op(out_data, tuple(tensors), _bwd)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing spatial dims of an NCHW tensor."""
    out_data = _pad_nchw(x.data, padding)

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            p = padding
            x._accumulate_grad(g[:, :, p:-p, p:-p] if p else g)

    return Tensor._from_op(out_data, (x,), _bwd)


def where_mask(mask: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select ``a`` where boolean ``mask`` else ``b`` (mask non-diff)."""
    out_data = np.where(mask, a.data, b.data)

    def _bwd(g: np.ndarray) -> None:
        if a.requires_grad:
            from .autograd import unbroadcast

            a._accumulate_grad(unbroadcast(g * mask, a.data.shape))
        if b.requires_grad:
            from .autograd import unbroadcast

            b._accumulate_grad(unbroadcast(g * (~mask), b.data.shape))

    return Tensor._from_op(out_data, (a, b), _bwd)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Fill positions where boolean ``mask`` is true with ``value``."""
    out_data = np.where(mask, np.asarray(value, dtype=x.data.dtype), x.data)

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            from .autograd import unbroadcast

            x._accumulate_grad(unbroadcast(g * (~mask), x.data.shape))

    return Tensor._from_op(out_data, (x,), _bwd)
