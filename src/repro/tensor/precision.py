"""Mixed-precision helpers (Micikevicius et al., ICLR 2018).

The paper's SAMO operates inside mixed-precision training: parameters and
gradients exist in both fp16 and fp32; the forward/backward pass computes
with fp16 values while the optimizer step runs in fp32.

On CPU, raw float16 arithmetic through NumPy is an order of magnitude slower
than float32 (no vectorised fp16 units), so we emulate half precision the
standard way: values are *quantised through* ``np.float16`` (so they sit
exactly on the fp16 grid and overflow/underflow like fp16) but may be held
in float32 containers for compute. ``HALF`` is the storage dtype used by
model-state accounting — byte counts always use true fp16 sizes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HALF",
    "SINGLE",
    "to_half",
    "half_bytes",
    "single_bytes",
    "quantize_to_half",
    "DynamicLossScaler",
]

HALF = np.float16
SINGLE = np.float32

#: bytes per element in each precision (used by the memory model)
HALF_BYTES = 2
SINGLE_BYTES = 4


def to_half(x: np.ndarray) -> np.ndarray:
    """Cast to true float16 storage."""
    return x.astype(HALF)


def quantize_to_half(x: np.ndarray) -> np.ndarray:
    """Round values onto the fp16 grid but return float32 (compute dtype).

    This reproduces fp16 rounding/overflow semantics while keeping NumPy
    compute in fast float32 — the numerical path the GPU would take with
    fp16 storage + fp32 accumulation (tensor-core behaviour).
    """
    return x.astype(HALF).astype(SINGLE)


def half_bytes(numel: int) -> int:
    """Bytes to store ``numel`` halves."""
    return HALF_BYTES * int(numel)


def single_bytes(numel: int) -> int:
    """Bytes to store ``numel`` singles."""
    return SINGLE_BYTES * int(numel)


class DynamicLossScaler:
    """Dynamic loss scaling for fp16 gradient underflow protection.

    Scales the loss by ``scale`` before backward; on overflow (non-finite
    gradients) the step is skipped and the scale halved; after
    ``growth_interval`` consecutive good steps the scale doubles.
    """

    def __init__(
        self,
        init_scale: float = 2.0**16,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 2000,
        min_scale: float = 1.0,
        max_scale: float = 2.0**24,
    ):
        if init_scale <= 0:
            raise ValueError("init_scale must be positive")
        self.scale = float(init_scale)
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self.min_scale = min_scale
        self.max_scale = max_scale
        self._good_steps = 0
        self.num_overflows = 0

    def check_overflow(self, grads) -> bool:
        """True when any gradient contains inf/nan."""
        for g in grads:
            if g is None:
                continue
            arr = g if isinstance(g, np.ndarray) else g.data
            if not np.all(np.isfinite(arr)):
                return True
        return False

    def unscale(self, grads) -> None:
        """Divide gradients by the current scale, in place."""
        inv = 1.0 / self.scale
        for g in grads:
            if g is None:
                continue
            arr = g if isinstance(g, np.ndarray) else g.data
            arr *= inv

    def update(self, overflow: bool) -> None:
        """Advance the scale state machine after a step attempt."""
        if overflow:
            self.num_overflows += 1
            self.scale = max(self.scale * self.backoff_factor, self.min_scale)
            self._good_steps = 0
        else:
            self._good_steps += 1
            if self._good_steps >= self.growth_interval:
                self.scale = min(self.scale * self.growth_factor, self.max_scale)
                self._good_steps = 0

    def __repr__(self) -> str:
        return f"DynamicLossScaler(scale={self.scale:g}, overflows={self.num_overflows})"
