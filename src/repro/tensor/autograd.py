"""Reverse-mode automatic differentiation machinery.

This module holds the global autograd state (gradient tracking on/off), the
topological-sort based backward pass, and small helpers shared by every
differentiable operation in :mod:`repro.tensor`.

The engine is deliberately tape-free: each :class:`repro.tensor.Tensor`
produced by a differentiable op stores its parents and a backward closure.
``backward()`` walks the graph in reverse topological order and accumulates
gradients into ``.grad`` buffers (plain ``numpy.ndarray`` objects, never
Tensors, so the graph cannot grow during the backward pass).
"""

from __future__ import annotations

import contextlib
import threading
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tensor import Tensor

__all__ = [
    "is_grad_enabled",
    "set_grad_enabled",
    "no_grad",
    "enable_grad",
    "backward",
    "unbroadcast",
]

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return ``True`` when new ops should record the autograd graph."""
    return getattr(_state, "grad_enabled", True)


def set_grad_enabled(mode: bool) -> None:
    """Globally enable or disable graph recording (thread-local)."""
    _state.grad_enabled = bool(mode)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording, like ``torch.no_grad``."""
    prev = is_grad_enabled()
    set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(prev)


@contextlib.contextmanager
def enable_grad():
    """Context manager (re-)enabling graph recording inside ``no_grad``."""
    prev = is_grad_enabled()
    set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(prev)


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes.

    NumPy broadcasting may have expanded an operand of shape ``shape`` up to
    ``grad.shape``; the vector-Jacobian product of broadcasting is summation
    over the expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _topo_order(root: "Tensor") -> list["Tensor"]:
    """Iterative post-order DFS over the autograd graph rooted at ``root``."""
    order: list["Tensor"] = []
    visited: set[int] = set()
    stack: list[tuple["Tensor", bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return order


def backward(root: "Tensor", grad: np.ndarray | None = None) -> None:
    """Run the reverse pass from ``root``, accumulating into ``.grad``.

    Parameters
    ----------
    root:
        The tensor to differentiate. Must be scalar unless ``grad`` is given.
    grad:
        Incoming cotangent with the same shape as ``root``; defaults to ones
        (i.e. ``d root / d root``).
    """
    if grad is None:
        if root.data.size != 1:
            raise RuntimeError(
                "backward() on a non-scalar tensor requires an explicit "
                f"gradient argument (got shape {root.data.shape})"
            )
        grad = np.ones_like(root.data)
    grad = np.asarray(grad, dtype=root.data.dtype)
    if grad.shape != root.data.shape:
        raise ValueError(
            f"gradient shape {grad.shape} does not match tensor shape "
            f"{root.data.shape}"
        )
    root._accumulate_grad(grad)
    for node in reversed(_topo_order(root)):
        fn = node._backward
        if fn is not None and node.grad is not None:
            fn(node.grad)
        if not node._retains_grad and node._parents:
            # Interior node: free the gradient buffer once consumed.
            node.grad = None


def make_backward_guard(fns: Iterable[Callable]) -> Callable:
    """Compose several per-parent backward closures into one (utility)."""
    fns = tuple(fns)

    def _run(g: np.ndarray) -> None:
        for fn in fns:
            fn(g)

    return _run
