"""Parameter initialisers.

All initialisers take an explicit :class:`numpy.random.Generator` so model
construction is reproducible — the statistical-efficiency experiment
(Figure 4) depends on AxoNN and AxoNN+SAMO starting from identical weights.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "normal",
    "zeros",
    "ones",
    "gpt_init",
]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """(fan_in, fan_out) for linear (O, I) and conv (O, I, kh, kw) shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        o, i, kh, kw = shape
        rf = kh * kw
        return i * rf, o * rf
    n = int(np.prod(shape))
    return n, n


def kaiming_normal(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-normal initialisation (for ReLU networks such as VGG/ResNet)."""
    fan_in, _ = _fan(tuple(shape))
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-uniform initialisation."""
    fan_in, _ = _fan(tuple(shape))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialisation."""
    fan_in, fan_out = _fan(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(shape, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Plain Gaussian initialisation (GPT uses std=0.02)."""
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def gpt_init(shape, rng: np.random.Generator, n_layers: int, residual: bool = False) -> np.ndarray:
    """GPT-2/3 initialisation: N(0, 0.02), residual projections scaled by
    ``1/sqrt(2*n_layers)`` (Radford et al. / Brown et al.)."""
    std = 0.02
    if residual:
        std /= np.sqrt(2.0 * n_layers)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
