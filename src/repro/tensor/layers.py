"""Standard neural-network layers built on the Module system.

Weight tensors of :class:`Linear` and :class:`Conv2d` are marked
``prunable=True`` — these are the tensors the paper's pruning algorithms
operate on. Biases and normalisation parameters are kept dense.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "ReLU",
    "GELU",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Flatten",
    "Identity",
]


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` with ``W`` of shape (out, in)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        init_fn=None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        make = init_fn or (lambda s: init.kaiming_uniform(s, rng, gain=1.0))
        self.weight = Parameter(make((out_features, in_features)), prunable=True)
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Conv2d(Module):
    """2-D convolution with square kernels on NCHW input."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng), prunable=True)
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class BatchNorm2d(Module):
    """Batch normalisation over N,H,W for NCHW input, with running stats."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(init.ones(num_features))
        self.bias = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class LayerNorm(Module):
    """Layer normalisation over the trailing feature dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones(normalized_shape))
        self.bias = Parameter(init.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape})"


class Embedding(Module):
    """Token embedding table of shape (num_embeddings, dim).

    The table is prunable: GPT-style models count it in the pruned
    parameter budget (the paper prunes 90% of *all* parameters).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
        std: float = 0.02,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal((num_embeddings, embedding_dim), rng, std=std), prunable=True
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self.rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)

    def __repr__(self) -> str:
        return "GELU()"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)

    def __repr__(self) -> str:
        return f"AdaptiveAvgPool2d({self.output_size})"


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x, self.start_dim)

    def __repr__(self) -> str:
        return "Flatten()"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"
