"""Multi-head causal self-attention, the core block of the GPT models.

The implementation follows MegatronLM's fused layout used by the paper's
GPT-3 runs: a single (3*d, d) projection computing Q, K, V at once, a
causal mask applied before softmax, and an output projection whose init is
scaled down by ``1/sqrt(2*n_layers)``.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["CausalSelfAttention"]


class CausalSelfAttention(Module):
    """Masked multi-head self-attention for decoder-only transformers.

    Parameters
    ----------
    d_model:
        Hidden size; must be divisible by ``n_heads``.
    n_heads:
        Number of attention heads.
    n_layers:
        Depth of the parent transformer (for GPT residual init scaling).
    dropout_p:
        Attention/projection dropout probability.
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        n_layers: int = 1,
        dropout_p: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if d_model % n_heads:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        rng = rng or np.random.default_rng()
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.dropout_p = dropout_p
        self._rng = rng
        self.qkv = Parameter(init.gpt_init((3 * d_model, d_model), rng, n_layers), prunable=True)
        self.qkv_bias = Parameter(init.zeros(3 * d_model))
        self.proj = Parameter(
            init.gpt_init((d_model, d_model), rng, n_layers, residual=True), prunable=True
        )
        self.proj_bias = Parameter(init.zeros(d_model))

    def forward(self, x: Tensor) -> Tensor:
        """Apply attention to ``x`` of shape (B, T, d_model)."""
        b, t, d = x.shape
        h, dh = self.n_heads, self.d_head

        qkv = F.linear(x, self.qkv, self.qkv_bias)  # (B, T, 3d)
        qkv = qkv.reshape(b, t, 3, h, dh)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, h, T, dh)
        q, k, v = qkv[0], qkv[1], qkv[2]

        # scaled dot-product attention with causal masking
        att = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(dh))  # (B, h, T, T)
        causal = np.triu(np.ones((t, t), dtype=bool), k=1)
        att = F.masked_fill(att, causal, -1e9)
        att = F.softmax(att, axis=-1)
        if self.dropout_p > 0:
            att = F.dropout(att, self.dropout_p, training=self.training, rng=self._rng)
        out = att @ v  # (B, h, T, dh)
        out = out.transpose(0, 2, 1, 3).reshape(b, t, d)
        out = F.linear(out, self.proj, self.proj_bias)
        if self.dropout_p > 0:
            out = F.dropout(out, self.dropout_p, training=self.training, rng=self._rng)
        return out

    def __repr__(self) -> str:
        return f"CausalSelfAttention(d={self.d_model}, heads={self.n_heads})"
