"""Module system: :class:`Parameter`, :class:`Module`, :class:`Sequential`.

Mirrors the familiar ``torch.nn`` contract at the scale this reproduction
needs: recursive parameter discovery, train/eval mode, ``state_dict``.
Parameter *names* are stable, dotted paths — the pruning and SAMO machinery
key their per-layer index sets (``ind_i`` in the paper) off these names.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` registered as a trainable module attribute.

    ``prunable`` marks weight matrices/filters the pruning algorithms may
    zero out. Biases and normalisation affine parameters are conventionally
    not pruned (matching You et al. and the lottery-ticket literature), so
    they default to ``prunable=False`` unless constructed via layer code
    that says otherwise.
    """

    __slots__ = ("prunable",)

    def __init__(self, data, prunable: bool = False):
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True)
        self.prunable = bool(prunable)


class Module:
    """Base class for all neural-network building blocks."""

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training: bool = True

    # -- attribute plumbing -------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BN running statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mname, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mname}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for mname, mod in self._modules.items():
            yield from mod.named_modules(prefix=f"{prefix}{mname}.")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def children(self) -> Iterator["Module"]:
        """Immediate sub-modules, in registration order."""
        yield from self._modules.values()

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, b in self._buffers.items():
            yield (f"{prefix}{name}", b)
        for mname, mod in self._modules.items():
            yield from mod.named_buffers(prefix=f"{prefix}{mname}.")

    # -- mode ----------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        self.training = mode
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # -- gradients / state ----------------------------------------------------
    def zero_grad(self) -> None:
        """Drop all accumulated parameter gradients."""
        for p in self.parameters():
            p.grad = None

    def num_parameters(self, prunable_only: bool = False) -> int:
        """Total parameter count (optionally only prunable tensors)."""
        return sum(
            p.size for p in self.parameters() if (p.prunable or not prunable_only)
        )

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of all parameters and buffers keyed by dotted name."""
        out: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, p in self.named_parameters():
            out[name] = p.data.copy()
        for name, b in self.named_buffers():
            out[f"buffer:{name}"] = np.array(b, copy=True)
        return out

    def load_state_dict(self, state: dict) -> None:
        """Load values saved by :meth:`state_dict` (shapes must match)."""
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for key, value in state.items():
            if key.startswith("buffer:"):
                buf = buffers[key[len("buffer:") :]]
                buf[...] = value
            else:
                p = params[key]
                if p.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: {p.data.shape} vs {value.shape}"
                    )
                p.data[...] = value

    # -- call ----------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, mod in self._modules.items():
            sub = repr(mod).splitlines()
            lines.append(f"  ({name}): " + sub[0])
            lines.extend("  " + s for s in sub[1:])
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else self.__class__.__name__ + "()"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *mods: Module):
        super().__init__()
        self._seq: list[Module] = []
        for i, m in enumerate(mods):
            setattr(self, str(i), m)
            self._seq.append(m)

    def append(self, mod: Module) -> "Sequential":
        setattr(self, str(len(self._seq)), mod)
        self._seq.append(mod)
        return self

    def __iter__(self):
        return iter(self._seq)

    def __len__(self) -> int:
        return len(self._seq)

    def __getitem__(self, idx: int) -> Module:
        return self._seq[idx]

    def forward(self, x):
        for m in self._seq:
            x = m(x)
        return x


class ModuleList(Module):
    """List container whose entries are registered sub-modules."""

    def __init__(self, mods: list[Module] | None = None):
        super().__init__()
        self._list: list[Module] = []
        for m in mods or []:
            self.append(m)

    def append(self, mod: Module) -> "ModuleList":
        setattr(self, str(len(self._list)), mod)
        self._list.append(mod)
        return self

    def __iter__(self):
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, idx: int) -> Module:
        return self._list[idx]

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")
