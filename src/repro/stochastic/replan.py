"""Mid-job re-planning: ride a failure out, or pay to repair?

A sampled degradation at normalised job time ``t`` leaves
``(1 - t) · horizon_batches`` batches still to run under the degraded
machine. :meth:`Session.replan` prices the decision:

* **ride** — keep the current configuration; every remaining batch pays
  the degraded batch time;
* **re-partition** — rebalance the pipeline cuts against
  time-under-scenario (``balanced_partition(mode="time")``), paying a
  migration cost to move the layers that change stage;
* **re-place** — re-run the replica placement optimizer
  (:meth:`Session.place`'s engine via ``placement="best"``), paying a
  migration cost to shuffle stage ranks;
* **both** — re-partition and re-place together.

Each repair amortises: with per-batch saving ``Δ = ride − repaired``,
the move pays for itself after ``migration / Δ`` batches — the
``break_even_batches`` of each :class:`RepairOption`. The decision is
whichever total remaining time is smallest (ties ride: doing nothing is
free and reversible).

The migration cost is parameterised (``migration_seconds=``); the
default models moving one pipeline stage's dense fp16 parameter shard
across the calibrated inter-node link via
:func:`~repro.cluster.p2p.p2p_message_time` — deliberately simple and
visible in the result, not hidden in the engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..obs import OBS
from ..parallel.scenarios import get_scenario
from .process import ScenarioEvent

__all__ = ["RepairOption", "ReplanDecision", "run_replan"]


@dataclass(frozen=True)
class RepairOption:
    """One priced repair move."""

    action: str
    #: per-batch time after the repair, under the same scenario
    batch_time: float
    migration_seconds: float
    #: migration + remaining batches at the repaired rate
    total_seconds: float
    #: batches until the migration cost amortises (inf if never)
    break_even_batches: float

    def to_dict(self) -> dict:
        be = self.break_even_batches
        return {
            "action": self.action,
            "batch_time": self.batch_time,
            "migration_seconds": self.migration_seconds,
            "total_seconds": self.total_seconds,
            "break_even_batches": None if math.isinf(be) else be,
        }


@dataclass
class ReplanDecision:
    """Ride-vs-repair verdict for one failure at one point in the job."""

    model: str
    n_gpus: int
    scenario: str
    #: normalised job progress when the failure arrived
    at: float
    remaining_batches: float
    #: per-batch time if the job keeps its configuration
    ride_batch_time: float
    #: remaining batches at the ride rate
    ride_seconds: float
    options: list = field(default_factory=list)
    #: "ride" or the winning option's action
    decision: str = "ride"

    @property
    def chosen(self) -> RepairOption | None:
        for option in self.options:
            if option.action == self.decision:
                return option
        return None

    def report(self) -> str:
        from ..reporting.tables import render_table

        lines = [
            f"Re-plan decision for {self.model} on {self.n_gpus} GPUs: "
            f"'{self.scenario}' arrived at t={self.at:.2f} "
            f"({self.remaining_batches:g} batches remain)",
            f"  ride it out: {self.ride_batch_time:.3f} s/batch -> "
            f"{self.ride_seconds:.1f} s remaining",
        ]
        rows = []
        for option in self.options:
            be = option.break_even_batches
            rows.append(
                {
                    "repair": option.action,
                    "s/batch": round(option.batch_time, 3),
                    "migration (s)": round(option.migration_seconds, 2),
                    "total (s)": round(option.total_seconds, 1),
                    "break-even (batches)": (
                        "never" if math.isinf(be) else round(be, 1)
                    ),
                }
            )
        lines.append(render_table(rows, title="Repair options"))
        if self.decision == "ride":
            lines.append(
                "decision: RIDE — no repair amortises before the job ends"
            )
        else:
            chosen = self.chosen
            lines.append(
                f"decision: {chosen.action.upper()} — saves "
                f"{self.ride_seconds - chosen.total_seconds:.1f} s over riding "
                f"(break-even after {chosen.break_even_batches:.1f} batches)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "n_gpus": self.n_gpus,
            "scenario": self.scenario,
            "at": self.at,
            "remaining_batches": self.remaining_batches,
            "ride_batch_time": self.ride_batch_time,
            "ride_seconds": self.ride_seconds,
            "options": [option.to_dict() for option in self.options],
            "decision": self.decision,
        }


# ---------------------------------------------------------------------------
# the driver (called by Session.replan inside its _op scope)
# ---------------------------------------------------------------------------

#: the repair moves, as Job knob overrides
_REPAIRS = (
    ("re-partition", {"partition_mode": "time"}),
    ("re-place", {"placement": "best"}),
    ("re-partition+re-place", {"partition_mode": "time", "placement": "best"}),
)


def default_migration_seconds(spec, g_inter: int, cal) -> float:
    """Moving one stage's dense fp16 parameter shard across nodes."""
    from ..cluster.p2p import p2p_message_time

    nbytes = 2 * spec.param_count // max(g_inter, 1)
    return p2p_message_time(nbytes, cal=cal)


def run_replan(
    session,
    job,
    failure,
    *,
    at: float = 0.5,
    horizon_batches: float = 500.0,
    migration_seconds: float | None = None,
    spec,
) -> ReplanDecision:
    """The engine behind :meth:`Session.replan`."""
    if isinstance(failure, ScenarioEvent):
        # a sampled arrival carries its own timestamp (normalised time)
        at = failure.time
        failure = failure.scenario
    scenario = get_scenario(failure)
    if not 0.0 <= at < 1.0:
        raise ValueError(f"'at' must be in [0, 1), got {at!r}")
    if horizon_batches <= 0:
        raise ValueError(
            f"horizon_batches must be positive, got {horizon_batches!r}"
        )
    if spec.family == "cnn":
        raise ValueError(
            f"{spec.name} runs pure data parallel (no pipeline to re-plan)"
        )

    # replan prices with the event engine: scenario stage times and the
    # placement/partition repairs all need the schedule, not Eqs. 6-7
    base = job.with_(fidelity="sim")
    remaining = horizon_batches * (1.0 - at)
    evaluations = OBS.metrics.counter("mc.replan_evaluations")

    ride_batch = session.breakdown(base, scenario=scenario, spec=spec).total
    evaluations.inc()
    ride_seconds = remaining * ride_batch

    if migration_seconds is None:
        from ..parallel.axonn import _framework_traits, _gpt_decomposition

        traits = _framework_traits(job.framework)
        g_inter, _g_data, _m, _t_f, _t_b = _gpt_decomposition(
            spec, traits, job.n_gpus, job.sparsity, job.mbs, session.machine.cal
        )
        migration_seconds = default_migration_seconds(
            spec, g_inter, session.machine.cal
        )

    options = []
    for action, knobs in _REPAIRS:
        repaired = session.breakdown(
            base.with_(**knobs), scenario=scenario, spec=spec
        ).total
        evaluations.inc()
        saving = ride_batch - repaired
        options.append(
            RepairOption(
                action=action,
                batch_time=repaired,
                migration_seconds=migration_seconds,
                total_seconds=migration_seconds + remaining * repaired,
                break_even_batches=(
                    migration_seconds / saving if saving > 0 else math.inf
                ),
            )
        )

    best = min(options, key=lambda option: option.total_seconds)
    decision = best.action if best.total_seconds < ride_seconds else "ride"
    return ReplanDecision(
        model=spec.name,
        n_gpus=job.n_gpus,
        scenario=scenario.name if scenario is not None else "neutral",
        at=at,
        remaining_batches=remaining,
        ride_batch_time=ride_batch,
        ride_seconds=ride_seconds,
        options=options,
        decision=decision,
    )
