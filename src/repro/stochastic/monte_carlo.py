"""Monte-Carlo robust planning: price candidates on sampled timelines.

``Session.mc_robust_plan`` draws N :class:`ScenarioTimeline`\\ s from a
:class:`~repro.stochastic.process.ScenarioProcess` and prices every
candidate configuration on every draw. The trick that keeps this cheap:
a timeline's :meth:`exposure` is a weighted mixture over the process's
few distinct scenarios, so the per-sample cost is just

    cost(config, sample) = Σ_scenario  w(sample, scenario) · time(config, scenario)

— one (candidate × scenario) matrix priced once (through the same
evaluation cache and, when every scenario is collective-only, one
``analytic-batch`` ``evaluate_batch`` call), then an exposure-matrix
product per sample. N=1000 samples cost the same evaluations as N=1.

**Common random numbers** (``crn=True``, the default): every candidate
is priced on the *same* sampled timelines, so per-sample cost
differences between two candidates are paired — the difference
estimator's variance drops by the (typically large) common component of
the per-sample noise. ``crn=False`` draws independent timelines per
candidate instead; ``benchmarks/bench_mc_plan.py`` measures the ratio.

**CI semantics**: per candidate, ``mean_time ± ci95`` is the normal
95% interval ``1.96·s/√N`` on the mean per-sample cost. Ranking is by
mean; :meth:`MCRobustResult.leaders` re-tests each runner-up against
the winner with the *paired-difference* interval (the CRN payoff) and
flags the statistically indistinguishable ones.

A degenerate process (no kind can fire) reproduces
:meth:`Session.plan` bit-identically: the single neutral column is
priced with the same ``analytic`` fidelity and cache keys, and the mean
is taken as the column itself — no float round-trip through averaging.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs import OBS
from .process import ScenarioProcess, get_process

__all__ = ["MCCandidate", "MCRobustResult", "run_mc_robust_plan"]

#: normal 97.5% quantile — the half-width multiplier of a 95% interval
Z95 = 1.96


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MCCandidate:
    """One candidate costed across all sampled timelines."""

    config: object
    #: mean per-sample batch time (== plan()'s time under a degenerate process)
    mean_time: float
    #: sample standard deviation (ddof=1; 0 for a single sample)
    std_time: float
    #: 95% half-width on the mean: 1.96·std/√N
    ci95: float
    #: slowest sampled cost and which draw caused it
    worst_time: float
    worst_sample: int
    #: scenario label -> batch time (the priced matrix row)
    per_scenario: dict
    #: per-sample costs, in draw order — what the CI math runs on
    sample_costs: tuple
    memory_bytes: int
    feasible: bool
    batch_size: int

    @property
    def expected_throughput(self) -> float:
        return self.batch_size / self.mean_time

    def as_row(self) -> dict:
        return {
            "framework": self.config.framework,
            "G_t": self.config.g_tensor,
            "G_i": self.config.g_inter,
            "G_d": self.config.g_data,
            "mbs": self.config.mbs,
            "E[time] (s)": round(self.mean_time, 3),
            "±95% (s)": round(self.ci95, 3),
            "worst (s)": round(self.worst_time, 3),
            "E[tput] (smp/s)": round(self.expected_throughput, 1),
            "mem/GPU (GB)": round(self.memory_bytes / 1e9, 2),
        }

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "mean_time": self.mean_time,
            "std_time": self.std_time,
            "ci95": self.ci95,
            "worst_time": self.worst_time,
            "worst_sample": self.worst_sample,
            "per_scenario": dict(self.per_scenario),
            "sample_costs": list(self.sample_costs),
            "memory_bytes": self.memory_bytes,
            "feasible": self.feasible,
            "batch_size": self.batch_size,
        }


@dataclass
class MCRobustResult:
    """Outcome of one Monte-Carlo robust search."""

    model: str
    n_gpus: int
    fidelity: str
    budget_bytes: int
    process: ScenarioProcess
    samples: int
    seed: int
    crn: bool
    labels: tuple = ()
    entries: list = field(default_factory=list)
    #: accounting (scenarios, candidates, evaluated, cache_hits, samples,
    #: wall_seconds); wall time stays out of to_dict so same-seed runs
    #: serialize byte-identically
    stats: dict = field(default_factory=dict)

    @property
    def feasible(self) -> list:
        """Feasible candidates, best mean cost first."""
        return sorted(
            (e for e in self.entries if e.feasible), key=lambda e: e.mean_time
        )

    @property
    def best(self) -> MCCandidate:
        ranked = self.feasible
        if not ranked:
            raise RuntimeError(
                f"{self.model} on {self.n_gpus} GPUs: no feasible configuration"
            )
        return ranked[0]

    def leaders(self) -> list:
        """The winner plus every candidate statistically tied with it.

        A runner-up is tied when the paired per-sample difference
        against the winner has ``mean(d) <= 1.96·std(d)/√N`` — under
        CRN the pairing shares the sampled timelines, which is what
        makes this test sharp.
        """
        ranked = self.feasible
        if not ranked:
            return []
        best = ranked[0]
        base = np.asarray(best.sample_costs)
        out = [best]
        for entry in ranked[1:]:
            d = np.asarray(entry.sample_costs) - base
            mean_d = float(d.mean())
            if len(d) > 1:
                half = Z95 * float(d.std(ddof=1)) / math.sqrt(len(d))
            else:
                half = 0.0
            if mean_d <= half:
                out.append(entry)
        return out

    # ------------------------------------------------------------------
    def summary_table(self, top: int = 8) -> str:
        from ..reporting.tables import render_table

        ranked = self.feasible
        if not ranked:
            return "(no feasible configurations)"
        tied = {id(e) for e in self.leaders()}
        rows = []
        for e in ranked[:top]:
            row = e.as_row()
            row["tied"] = "=" if id(e) in tied else ""
            rows.append(row)
        return render_table(
            rows,
            title=(
                f"MC robust plan: {self.model} on {self.n_gpus} GPUs over "
                f"process '{self.process.name}' "
                f"({self.samples} samples, seed {self.seed}, "
                f"CRN {'on' if self.crn else 'off'})"
            ),
        )

    def report(self, top: int = 8) -> str:
        from ..reporting.tables import format_bytes

        try:
            best = self.best
        except RuntimeError as err:
            return str(err)
        leaders = self.leaders()
        parts = [
            f"Best mean-cost config for {self.model} on {self.n_gpus} GPUs "
            f"over process '{self.process.name}': {best.config.describe()}\n"
            f"  E[batch time] {best.mean_time:.3f} ± {best.ci95:.3f} s "
            f"(95% CI over {self.samples} samples; "
            f"worst draw {best.worst_time:.3f} s), "
            f"E[throughput] {best.expected_throughput:.0f} samples/s, "
            f"memory {format_bytes(best.memory_bytes)}/GPU",
        ]
        if len(leaders) > 1:
            descs = ", ".join(e.config.describe() for e in leaders[1:])
            parts.append(
                f"{len(leaders)} statistically indistinguishable leaders "
                f"at 95% (paired difference vs the winner): {descs}"
            )
        parts.append(self.summary_table(top=top))
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready mapping; byte-identical across same-seed runs."""
        feasible = self.feasible
        stats = {k: v for k, v in self.stats.items() if k != "wall_seconds"}
        return {
            "model": self.model,
            "n_gpus": self.n_gpus,
            "fidelity": self.fidelity,
            "budget_bytes": self.budget_bytes,
            "process": self.process.to_dict(),
            "samples": self.samples,
            "seed": self.seed,
            "crn": self.crn,
            "labels": list(self.labels),
            "best": feasible[0].to_dict() if feasible else None,
            "leaders": [e.config.to_dict() for e in self.leaders()],
            "entries": [e.to_dict() for e in self.entries],
            "stats": stats,
        }


# ---------------------------------------------------------------------------
# the driver (called by Session.mc_robust_plan inside its _op scope)
# ---------------------------------------------------------------------------

def _columns_for(process: ScenarioProcess) -> tuple[list, list]:
    """The scenario columns a process can ever expose, labels first.

    Deterministic — derived from the kinds, not the draws — so cache
    keys and candidate × scenario matrices are stable across sample
    counts and seeds. Kinds that can never fire (rate ceiling 0)
    contribute nothing; a process with none left is degenerate and
    prices exactly like :meth:`Session.plan`.
    """
    labels, columns, seen = ["neutral"], [None], set()
    for kind in process.kinds:
        if kind.rate.ceiling(process.horizon) <= 0.0 or kind.scenario is None:
            continue
        if kind.scenario.name in seen:
            continue
        seen.add(kind.scenario.name)
        labels.append(kind.scenario.name)
        columns.append(kind.scenario)
    return labels, columns


def _exposure_matrix(
    timelines: tuple, labels: list, horizon: float
) -> np.ndarray:
    """(n_samples × n_columns) time-weight matrix; rows sum to 1."""
    index = {label: j for j, label in enumerate(labels)}
    W = np.zeros((len(timelines), len(labels)))
    for i, timeline in enumerate(timelines):
        for scenario, w in timeline.exposure():
            W[i, index[scenario.name if scenario is not None else "neutral"]] = w
    return W


def _independent_timelines(
    process: ScenarioProcess, n_candidates: int, samples: int, seed: int
) -> list:
    """Per-candidate independent draws (the no-CRN comparison arm)."""
    out = []
    for child in np.random.SeedSequence(seed).spawn(n_candidates):
        out.append(
            tuple(
                process.sample(np.random.default_rng(grandchild))
                for grandchild in child.spawn(samples)
            )
        )
    return out


def run_mc_robust_plan(
    session,
    job,
    process,
    *,
    samples: int = 32,
    seed: int = 0,
    crn: bool = True,
    frameworks: tuple,
    microbatch_sizes: tuple,
    explore_no_checkpoint: bool,
    spec,
) -> MCRobustResult:
    """The engine behind :meth:`Session.mc_robust_plan`.

    Runs inside the session's ``_op`` scope, so ``OBS.metrics`` is the
    session registry and spans land on the session tracer.
    """
    from ..autotune.estimator import make_estimator

    if samples < 1:
        raise ValueError(f"need at least one sample, got {samples}")
    t0 = time.perf_counter()
    process = get_process(process)
    labels, columns = _columns_for(process)
    degenerate = len(columns) == 1

    # one coherent fidelity for the whole matrix: pipeline-degrading
    # kinds need the event engine; collective-only kinds vectorize
    # through the batch array program; a degenerate process keeps
    # plan()'s default so the cache keys (and the ranking) coincide
    fidelity = job.fidelity
    if fidelity is None:
        needs_engine = (
            any(c is not None and c.degrades_pipeline for c in columns)
            or job.overlap
            or job.placement != "block"
        )
        if needs_engine:
            fidelity = "sim"
        elif degenerate:
            fidelity = "analytic"
        else:
            fidelity = "analytic-batch"
    job = job.with_(fidelity=fidelity)

    metrics = OBS.metrics
    metrics.counter("mc.samples").inc(samples)

    t_draw = time.perf_counter()
    timelines = process.sample_timelines(samples, seed)
    events_hist = metrics.histogram("mc.timeline_events")
    for timeline in timelines:
        events_hist.observe(len(timeline.events))
    if OBS.enabled:
        OBS.tracer.record(
            "mc.sample_timelines", t_draw, time.perf_counter(),
            category="mc_robust_plan", samples=samples, seed=seed,
        )

    # -- price the candidate × scenario matrix once ---------------------
    try:
        probe = make_estimator(
            fidelity, spec, session.machine.cal,
            partition_mode=job.partition_mode,
            overlap=job.overlap, placement=job.placement,
        )
    except Exception:
        probe = None  # conflicts surface from the per-column loop below
    if probe is not None and getattr(probe, "supports_batch", False):
        per_label = session._robust_matrix(
            job, spec, labels, columns, probe,
            frameworks=frameworks,
            microbatch_sizes=microbatch_sizes,
            explore_no_checkpoint=explore_no_checkpoint,
        )
    else:
        per_label = {}
        for label, column in zip(labels, columns):
            per_label[label] = session.plan(
                job,
                scenario=column,
                frameworks=frameworks,
                microbatch_sizes=microbatch_sizes,
                explore_no_checkpoint=explore_no_checkpoint,
                spec=spec,
            )

    first = per_label[labels[0]]
    by_config = {
        label: {e.config: e for e in res.evaluations}
        for label, res in per_label.items()
    }
    times = np.array(
        [
            [by_config[label][ev.config].total_time for label in labels]
            for ev in first.evaluations
        ]
    )

    # -- per-sample costs = priced matrix × exposure weights ------------
    n_candidates = len(first.evaluations)
    if degenerate:
        # exact degeneration: every sample is the neutral machine, so
        # the mean IS the plan() column — no averaging round-trip
        costs = np.repeat(times[:, :1], samples, axis=1)
        mean_arr = times[:, 0]
        std_arr = np.zeros(n_candidates)
    else:
        if crn:
            W = _exposure_matrix(timelines, labels, process.horizon)
            costs = times @ W.T
        else:
            costs = np.empty((n_candidates, samples))
            per_candidate = _independent_timelines(
                process, n_candidates, samples, seed
            )
            for r in range(n_candidates):
                W = _exposure_matrix(per_candidate[r], labels, process.horizon)
                costs[r] = times[r] @ W.T
        mean_arr = costs.mean(axis=1)
        std_arr = (
            costs.std(axis=1, ddof=1) if samples > 1 else np.zeros(n_candidates)
        )
    ci_arr = Z95 * std_arr / math.sqrt(samples)
    worst_idx = np.argmax(costs, axis=1)

    entries = []
    for r, ev in enumerate(first.evaluations):
        entries.append(
            MCCandidate(
                config=ev.config,
                mean_time=float(mean_arr[r]),
                std_time=float(std_arr[r]),
                ci95=float(ci_arr[r]),
                worst_time=float(costs[r, worst_idx[r]]),
                worst_sample=int(worst_idx[r]),
                per_scenario={
                    label: float(times[r, j]) for j, label in enumerate(labels)
                },
                sample_costs=tuple(float(c) for c in costs[r]),
                memory_bytes=ev.memory_bytes,
                feasible=all(
                    by_config[label][ev.config].feasible for label in labels
                ),
                batch_size=ev.batch_size,
            )
        )

    result = MCRobustResult(
        model=spec.name,
        n_gpus=job.n_gpus,
        fidelity=fidelity,
        budget_bytes=session.machine.gpu_memory_bytes,
        process=process,
        samples=samples,
        seed=seed,
        crn=crn,
        labels=tuple(labels),
        entries=entries,
        stats={
            "scenarios": len(labels),
            "candidates": sum(r.stats.candidates for r in per_label.values()),
            "evaluated": sum(r.stats.evaluated for r in per_label.values()),
            "cache_hits": sum(r.stats.cache_hits for r in per_label.values()),
            "samples": samples,
            "wall_seconds": round(time.perf_counter() - t0, 4),
        },
    )
    feasible = result.feasible
    if feasible:
        sample_hist = metrics.histogram("mc.sample_seconds")
        for c in feasible[0].sample_costs:
            sample_hist.observe(c)
    return result
