"""Failure processes: degradations that *arrive* over the course of a job.

A :class:`ScenarioProcess` turns the static machine conditions of
:data:`~repro.parallel.scenarios.SCENARIOS` into arrival processes: each
:class:`DegradationKind` pairs one :class:`ClusterScenario` with a
Poisson rate function over normalised job time ``[0, horizon]``.
Constant rates sample by exponential inter-arrival gaps; time-varying
rates sample by thinning (Lewis-Shedler): draw homogeneous arrivals at
the rate's ceiling, accept each at probability ``rate(t) / ceiling`` —
the standard numeric recipe for inhomogeneous Poisson point processes
(Hohmann, arXiv:1901.10754).

A draw is a :class:`ScenarioTimeline` — timestamped
:class:`ScenarioEvent`\\ s plus the horizon — whose :meth:`exposure`
collapses it to the time-weighted scenario mixture the cost model can
price: segments where no degradation is active count toward ``None``
(the pristine machine), overlapping events resolve to the most recently
started one, and the weights sum to 1. That mixture is exactly the
shape :meth:`Session.robust_plan` already prices, which is how
:mod:`repro.stochastic.monte_carlo` reuses the evaluation cache and the
batch estimator unchanged.

Everything here is a frozen, serializable value object
(``to_dict``/``from_dict``), and every draw is reproducible from an
integer seed via the SeedSequence spawning in
:func:`repro.rng.spawn_generators`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..parallel.scenarios import SCENARIOS, ClusterScenario, get_scenario
from ..rng import resolve_rng, spawn_generators

__all__ = [
    "RateFunction",
    "DegradationKind",
    "ScenarioEvent",
    "ScenarioTimeline",
    "ScenarioProcess",
    "PROCESSES",
    "get_process",
]


# ---------------------------------------------------------------------------
# rate functions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RateFunction:
    """Arrival intensity λ(t) over normalised job time.

    ``kind="constant"`` is the homogeneous case λ(t) = ``rate``;
    ``kind="linear"`` interpolates ``rate`` at t=0 to ``rate_end`` at
    t=horizon — the simplest inhomogeneous shape, enough to model
    aging/wear-out arrivals that become likelier as the job runs.

    >>> RateFunction.constant(2.0)(0.3, horizon=1.0)
    2.0
    >>> RateFunction.linear(0.0, 4.0)(0.5, horizon=1.0)
    2.0
    """

    kind: str = "constant"
    rate: float = 0.0
    rate_end: float | None = None

    def __post_init__(self):
        if self.kind not in ("constant", "linear"):
            raise ValueError(
                f"unknown rate kind {self.kind!r}; choose 'constant' or 'linear'"
            )
        for value in (self.rate, self.rate_end):
            if value is not None and not (
                isinstance(value, (int, float)) and math.isfinite(value) and value >= 0
            ):
                raise ValueError(
                    f"rates must be finite non-negative numbers, got {value!r}"
                )
        if self.kind == "linear" and self.rate_end is None:
            raise ValueError("linear rate needs rate_end")

    @classmethod
    def constant(cls, rate: float) -> "RateFunction":
        return cls("constant", float(rate))

    @classmethod
    def linear(cls, rate0: float, rate1: float) -> "RateFunction":
        return cls("linear", float(rate0), float(rate1))

    def __call__(self, t: float, horizon: float) -> float:
        """Instantaneous intensity λ(t)."""
        if self.kind == "constant":
            return self.rate
        return self.rate + (self.rate_end - self.rate) * (t / horizon)

    def ceiling(self, horizon: float) -> float:
        """sup λ(t) over [0, horizon] — the thinning envelope rate."""
        if self.kind == "constant":
            return self.rate
        return max(self.rate, self.rate_end)

    def to_dict(self) -> dict:
        doc = {"kind": self.kind, "rate": self.rate}
        if self.rate_end is not None:
            doc["rate_end"] = self.rate_end
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "RateFunction":
        return cls(data["kind"], data["rate"], data.get("rate_end"))


# ---------------------------------------------------------------------------
# kinds and events
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DegradationKind:
    """One failure mode: a scenario, its arrival rate, and how long it lasts.

    ``duration=None`` means absorbing — once it arrives, the degradation
    persists to the end of the horizon (a lost node, a throttled GPU
    nobody resets mid-job). Neutral scenarios are canonicalised to
    ``None`` exactly like :class:`~repro.api.ScenarioSet` members, so a
    "degradation" that degrades nothing prices as the pristine machine.
    """

    name: str
    scenario: ClusterScenario | None
    rate: RateFunction
    duration: float | None = None

    def __post_init__(self):
        scenario = get_scenario(self.scenario)
        if scenario is not None and scenario.is_neutral:
            scenario = None
        object.__setattr__(self, "scenario", scenario)
        if self.duration is not None and not (
            isinstance(self.duration, (int, float))
            and math.isfinite(self.duration)
            and self.duration > 0
        ):
            raise ValueError(
                f"duration must be positive or None (absorbing), got {self.duration!r}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scenario": self.scenario.to_dict() if self.scenario else None,
            "rate": self.rate.to_dict(),
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DegradationKind":
        scenario = data["scenario"]
        return cls(
            name=data["name"],
            scenario=ClusterScenario.from_dict(scenario) if scenario else None,
            rate=RateFunction.from_dict(data["rate"]),
            duration=data["duration"],
        )


@dataclass(frozen=True)
class ScenarioEvent:
    """One sampled arrival: a degradation starting at ``time``."""

    time: float
    kind: str
    scenario: ClusterScenario | None
    duration: float | None = None

    def end(self, horizon: float) -> float:
        """When the degradation clears (the horizon, if absorbing)."""
        if self.duration is None:
            return horizon
        return min(self.time + self.duration, horizon)

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "scenario": self.scenario.to_dict() if self.scenario else None,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioEvent":
        scenario = data["scenario"]
        return cls(
            time=data["time"],
            kind=data["kind"],
            scenario=ClusterScenario.from_dict(scenario) if scenario else None,
            duration=data["duration"],
        )


@dataclass(frozen=True)
class ScenarioTimeline:
    """One sampled realisation: events over ``[0, horizon]``.

    :meth:`exposure` is the bridge to the cost model — the time-weighted
    scenario mixture this timeline exposes the job to.
    """

    horizon: float
    events: tuple = ()

    def segments(self) -> tuple:
        """``(start, end, scenario_or_None)`` covering the horizon.

        Where events overlap, the most recently started one wins — the
        later arrival is the fresher machine condition (a link flap on
        an already-degraded ring reads as the flap until it clears).
        """
        cuts = {0.0, self.horizon}
        for ev in self.events:
            if ev.time < self.horizon:
                cuts.add(ev.time)
                cuts.add(ev.end(self.horizon))
        points = sorted(c for c in cuts if 0.0 <= c <= self.horizon)
        out = []
        for a, b in zip(points, points[1:]):
            active = [
                ev for ev in self.events if ev.time <= a and ev.end(self.horizon) > a
            ]
            scenario = max(active, key=lambda ev: ev.time).scenario if active else None
            out.append((a, b, scenario))
        return tuple(out)

    def exposure(self) -> tuple:
        """Time-weighted ``(scenario_or_None, weight)`` mixture, Σw = 1.

        Neutral first when present, then scenarios in order of first
        activity; adjacent segments under the same condition merge.
        """
        totals: dict = {}
        order: list = []
        for a, b, scenario in self.segments():
            key = scenario.name if scenario is not None else None
            if key not in totals:
                totals[key] = [scenario, 0.0]
                order.append(key)
            totals[key][1] += b - a
        if None in order:
            order.remove(None)
            order.insert(0, None)
        return tuple(
            (totals[k][0], totals[k][1] / self.horizon) for k in order
        )

    def to_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "events": [ev.to_dict() for ev in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioTimeline":
        return cls(
            horizon=data["horizon"],
            events=tuple(ScenarioEvent.from_dict(e) for e in data["events"]),
        )


# ---------------------------------------------------------------------------
# the process
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioProcess:
    """A superposition of per-kind Poisson arrival processes.

    ``horizon`` is normalised job time (the MC layer weights batch
    times, so only ratios of durations to the horizon matter). An empty
    ``kinds`` tuple — or kinds at rate 0 — is the degenerate pristine
    process: every draw is the empty timeline and Monte-Carlo planning
    over it reproduces :meth:`Session.plan` bit-identically.

    >>> p = get_process("flaky-links")
    >>> t = p.sample(np.random.default_rng(0))
    >>> sum(w for _, w in t.exposure())
    1.0
    >>> p == ScenarioProcess.from_dict(p.to_dict())
    True
    """

    name: str
    kinds: tuple = ()
    horizon: float = 1.0

    def __post_init__(self):
        if not (
            isinstance(self.horizon, (int, float))
            and math.isfinite(self.horizon)
            and self.horizon > 0
        ):
            raise ValueError(f"horizon must be positive, got {self.horizon!r}")
        object.__setattr__(self, "kinds", tuple(self.kinds))
        names = [k.name for k in self.kinds]
        if len(set(names)) != len(names):
            raise ValueError(
                f"process {self.name!r} has duplicate kind names: {names}"
            )

    # -- sampling -------------------------------------------------------
    def _arrivals(self, rate: RateFunction, rng: np.random.Generator) -> list:
        """Thinning (Lewis-Shedler): homogeneous draws at the ceiling
        rate, each accepted with probability λ(t)/ceiling."""
        ceiling = rate.ceiling(self.horizon)
        if ceiling <= 0.0:
            return []
        times = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / ceiling)
            if t >= self.horizon:
                return times
            if rng.random() * ceiling <= rate(t, self.horizon):
                times.append(t)

    def sample(self, rng=None) -> ScenarioTimeline:
        """Draw one timeline. Kinds are sampled in declaration order from
        one generator, so a fixed seed pins the whole draw."""
        rng = resolve_rng(rng)
        events = []
        for kind in self.kinds:
            for t in self._arrivals(kind.rate, rng):
                events.append(
                    ScenarioEvent(
                        time=t,
                        kind=kind.name,
                        scenario=kind.scenario,
                        duration=kind.duration,
                    )
                )
        events.sort(key=lambda ev: (ev.time, ev.kind))
        return ScenarioTimeline(horizon=self.horizon, events=tuple(events))

    def sample_timelines(self, n: int, seed: int = 0) -> tuple:
        """``n`` independent draws from SeedSequence-spawned streams.

        Sample ``i`` is identical no matter how large ``n`` is (the
        prefix property) — the foundation of common-random-numbers
        pairing across candidates and of stable fixed-seed tests.
        """
        if n < 1:
            raise ValueError(f"need at least one sample, got {n}")
        return tuple(self.sample(g) for g in spawn_generators(seed, n))

    # -- introspection --------------------------------------------------
    @property
    def is_degenerate(self) -> bool:
        """True when no kind can ever fire (rate ceiling 0 everywhere)."""
        return all(k.rate.ceiling(self.horizon) <= 0.0 for k in self.kinds)

    def degrades_pipeline(self) -> bool:
        """True if any kind's scenario needs the event engine to price."""
        return any(
            k.scenario is not None and k.scenario.degrades_pipeline
            for k in self.kinds
        )

    def describe(self) -> str:
        if not self.kinds:
            return f"{self.name}: no degradations"
        parts = []
        for k in self.kinds:
            label = k.scenario.name if k.scenario is not None else "neutral"
            lam = k.rate.to_dict()
            rate = (
                f"{lam['rate']:g}"
                if lam["kind"] == "constant"
                else f"{lam['rate']:g}->{lam['rate_end']:g}"
            )
            dur = "absorbing" if k.duration is None else f"dur {k.duration:g}"
            parts.append(f"{k.name}({label}, rate {rate}, {dur})")
        return f"{self.name}: " + ", ".join(parts)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "horizon": self.horizon,
            "kinds": [k.to_dict() for k in self.kinds],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioProcess":
        return cls(
            name=data["name"],
            kinds=tuple(DegradationKind.from_dict(k) for k in data["kinds"]),
            horizon=data["horizon"],
        )


#: Named failure processes (the ``repro mc-plan --process`` choices).
PROCESSES: dict[str, ScenarioProcess] = {
    p.name: p
    for p in (
        # the degenerate pristine process — mc_robust_plan over it must
        # reproduce plan() bit-identically (the acceptance criterion)
        ScenarioProcess("calm", ()),
        # transient fabric trouble: ring links flap and recover — both
        # scenarios touch only collective knobs, so the whole candidate
        # grid prices through the analytic-batch array program
        ScenarioProcess(
            "flaky-links",
            (
                DegradationKind(
                    "link-flap",
                    scenario=SCENARIOS["slow-ring-link"],
                    rate=RateFunction.constant(2.0),
                    duration=0.15,
                ),
                DegradationKind(
                    "fabric-congestion",
                    scenario=SCENARIOS["degraded-ring"],
                    rate=RateFunction.constant(1.0),
                    duration=0.25,
                ),
            ),
        ),
        # a spot/preemptible pool: once capacity is yanked, the job runs
        # degraded (straggler + halved rings) for the rest of the horizon
        ScenarioProcess(
            "spot-preemption",
            (
                DegradationKind(
                    "preemption",
                    scenario=SCENARIOS["degraded"],
                    rate=RateFunction.constant(0.7),
                    duration=None,
                ),
            ),
        ),
        # wear-out arrivals: throttling becomes likelier as the job runs
        # (the inhomogeneous case — rate climbs 0 -> 2.5 over the job)
        ScenarioProcess(
            "aging-stragglers",
            (
                DegradationKind(
                    "thermal-throttle",
                    scenario=SCENARIOS["straggler"],
                    rate=RateFunction.linear(0.0, 2.5),
                    duration=None,
                ),
            ),
        ),
    )
}


def get_process(process) -> ScenarioProcess:
    """Resolve a process given by name or instance.

    >>> get_process("spot-preemption").kinds[0].duration is None
    True
    >>> sorted(PROCESSES)
    ['aging-stragglers', 'calm', 'flaky-links', 'spot-preemption']
    """
    if isinstance(process, ScenarioProcess):
        return process
    if isinstance(process, str):
        try:
            return PROCESSES[process]
        except KeyError:
            raise ValueError(
                f"unknown scenario process {process!r}; "
                f"named processes: {sorted(PROCESSES)}"
            ) from None
    raise TypeError(
        f"expected a ScenarioProcess or a named process; "
        f"got {type(process).__name__}"
    )
