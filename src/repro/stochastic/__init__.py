"""``repro.stochastic`` — failure processes, Monte-Carlo robust planning,
and mid-job re-planning.

Three layers on top of the :mod:`repro.api` facade::

    from repro.api import Job, Machine, Session
    from repro.stochastic import get_process

    session = Session(Machine.summit())
    job = Job(model="gpt3-xl", n_gpus=16)

    # sampled degradation timelines from a named failure process
    timeline = get_process("flaky-links").sample(rng=7)

    # price every candidate on N sampled timelines (CRN across
    # candidates), with 95% CIs and tie-aware ranking
    result = session.mc_robust_plan(job, "flaky-links", samples=64, seed=7)

    # a failure arrived mid-job: ride it out or pay to repair?
    decision = session.replan(job, "straggler", at=0.4)

* :class:`ScenarioProcess` — per-degradation-kind Poisson arrival
  processes (constant and time-varying rates via thinning), named
  presets in :data:`PROCESSES`;
* :class:`MCRobustResult` / :func:`run_mc_robust_plan` — the
  Monte-Carlo pricing engine behind :meth:`Session.mc_robust_plan`;
* :class:`ReplanDecision` / :func:`run_replan` — the ride-vs-repair
  break-even analysis behind :meth:`Session.replan`.
"""

from .monte_carlo import MCCandidate, MCRobustResult, run_mc_robust_plan
from .process import (
    PROCESSES,
    DegradationKind,
    RateFunction,
    ScenarioEvent,
    ScenarioProcess,
    ScenarioTimeline,
    get_process,
)
from .replan import RepairOption, ReplanDecision, run_replan

__all__ = [
    "RateFunction",
    "DegradationKind",
    "ScenarioEvent",
    "ScenarioTimeline",
    "ScenarioProcess",
    "PROCESSES",
    "get_process",
    "MCCandidate",
    "MCRobustResult",
    "run_mc_robust_plan",
    "RepairOption",
    "ReplanDecision",
    "run_replan",
]
