"""Magnitude pruning: keep the largest-|w| fraction of parameters.

The simplest accuracy-preserving pruning family (Frankle & Carbin's LTH
baseline). Both global and per-layer thresholds are provided; global is
the default used throughout the reproduction.
"""

from __future__ import annotations

import numpy as np

from ..tensor.module import Module
from .masks import MaskSet, prunable_parameters

__all__ = ["magnitude_prune", "magnitude_scores"]


def magnitude_scores(model: Module) -> dict[str, np.ndarray]:
    """Absolute parameter values of every prunable tensor."""
    return {name: np.abs(p.data) for name, p in prunable_parameters(model).items()}


def magnitude_prune(model: Module, sparsity: float, scope: str = "global") -> MaskSet:
    """Prune ``sparsity`` fraction of the model's prunable weights by |w|.

    Returns the keep-index :class:`MaskSet`; the model itself is *not*
    modified (call ``mask.apply(model)`` to zero the pruned weights).
    """
    scores = magnitude_scores(model)
    if not scores:
        raise ValueError("model has no prunable parameters")
    return MaskSet.from_scores(scores, sparsity, scope=scope)
