"""Iterative magnitude pruning with weight rewinding (Frankle & Carbin).

The original lottery-ticket procedure: train, prune a fraction of the
remaining weights by magnitude, rewind the survivors to their initial
values, repeat until the target sparsity is reached. Provided both as a
baseline pruning algorithm and for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..tensor.module import Module
from .magnitude import magnitude_scores
from .masks import MaskSet

__all__ = ["IterativePruner", "rounds_for_sparsity"]


def rounds_for_sparsity(target_sparsity: float, per_round: float = 0.2) -> int:
    """Number of prune-retrain rounds needed to reach ``target_sparsity``
    when each round prunes ``per_round`` of the *remaining* weights."""
    if not 0.0 < target_sparsity < 1.0:
        raise ValueError("target sparsity must be in (0,1)")
    density = 1.0
    rounds = 0
    # Small slack absorbs float error (1 - 0.8 = 0.19999...96, which must
    # count as having reached a 0.2 target).
    while 1.0 - density < target_sparsity - 1e-12:
        density *= 1.0 - per_round
        rounds += 1
    return rounds


class IterativePruner:
    """Drives train -> prune -> rewind rounds.

    Usage::

        pruner = IterativePruner(model, target_sparsity=0.9)
        while not pruner.done:
            train_fn(model)                 # caller trains the masked net
            pruner.prune_round()            # prune + rewind survivors
        mask = pruner.mask
    """

    def __init__(
        self,
        model: Module,
        target_sparsity: float = 0.9,
        per_round: float = 0.2,
        rewind: bool = True,
    ):
        self.model = model
        self.target_sparsity = target_sparsity
        self.per_round = per_round
        self.rewind = rewind
        self._init_state = {
            name: p.data.copy() for name, p in model.named_parameters()
        }
        self.mask: MaskSet = MaskSet.dense(model)
        self.round: int = 0
        self.total_rounds = rounds_for_sparsity(target_sparsity, per_round)
        self._stalled = False

    @property
    def done(self) -> bool:
        # Sparsity is quantised to 1/total_size by integer keep counts, so a
        # target of 0.4 over 768 weights is *reached* at 307/768 = 0.3997.
        tol = 1.0 / max(self.mask.total_size(), 1)
        return self._stalled or self.mask.sparsity >= self.target_sparsity - tol

    def prune_round(self) -> MaskSet:
        """Prune ``per_round`` of currently-kept weights; rewind survivors."""
        if self.done:
            return self.mask
        scores = magnitude_scores(self.model)
        # Score pruned positions at -inf so they stay pruned.
        for name in scores:
            keep = self.mask.bool_mask(name)
            scores[name] = np.where(keep, scores[name], -np.inf)
        current_density = 1.0 - self.mask.sparsity
        new_density = current_density * (1.0 - self.per_round)
        target = min(1.0 - new_density, self.target_sparsity)
        # absolute=False keeps the -inf sentinels below every live score,
        # so pruned positions can never be re-admitted.
        new_mask = MaskSet.from_scores(scores, target, scope="global", absolute=False)
        if new_mask.total_kept() >= self.mask.total_kept():
            # Rounding produced no further pruning; stop rather than loop.
            self._stalled = True
        self.mask = new_mask
        self.round += 1
        if self.rewind:
            params = dict(self.model.named_parameters())
            for name, init_val in self._init_state.items():
                params[name].data[...] = init_val
        self.mask.apply(self.model)
        return self.mask

    def run(self, train_fn: Callable[[Module], None]) -> MaskSet:
        """Convenience driver calling ``train_fn`` between rounds."""
        while not self.done:
            train_fn(self.model)
            self.prune_round()
        return self.mask
