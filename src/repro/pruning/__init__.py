"""Neural-network pruning algorithms (lottery-ticket family).

Provides the ``ind`` index sets SAMO consumes: Early-Bird Tickets (You et
al., used by the paper), global/layerwise magnitude, iterative magnitude
with rewinding (Frankle & Carbin), SNIP connection sensitivity, random
control masks, and structured (block / column-vector / channel) variants.
"""

from .early_bird import EarlyBirdPruner
from .lottery import IterativePruner, rounds_for_sparsity
from .magnitude import magnitude_prune, magnitude_scores
from .masks import MaskSet, prunable_parameters
from .random_pruning import random_mask_for_shapes, random_prune
from .snip import snip_prune, snip_scores
from .structured import block_prune, channel_prune, unit_norms, vector_prune

__all__ = [
    "MaskSet",
    "prunable_parameters",
    "magnitude_prune",
    "magnitude_scores",
    "EarlyBirdPruner",
    "IterativePruner",
    "rounds_for_sparsity",
    "random_prune",
    "random_mask_for_shapes",
    "snip_prune",
    "snip_scores",
    "block_prune",
    "vector_prune",
    "channel_prune",
    "unit_norms",
]
