"""Pruning masks: the ``ind`` index sets SAMO consumes.

The paper (Section III) defines ``ind = U_i ind_i`` where ``ind_i`` are the
indices of the *unpruned* parameters of layer ``i``, stored as flattened
(one-dimensional-view) 32-bit integers — that flattening is one of SAMO's
two index-memory optimizations. :class:`MaskSet` is exactly that object,
keyed by parameter name, plus the utilities every pruning algorithm needs:
construction from boolean masks or scores, sparsity accounting, mask
application, and the Hamming mask distance used by Early-Bird Tickets.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Mapping

import numpy as np

from ..tensor.module import Module, Parameter

__all__ = ["MaskSet", "prunable_parameters"]

INDEX_DTYPE = np.int32  # "32-bit is sufficient for even the largest models"


def prunable_parameters(model: Module) -> "OrderedDict[str, Parameter]":
    """Named parameters eligible for pruning (weight matrices/filters)."""
    return OrderedDict((n, p) for n, p in model.named_parameters() if p.prunable)


class MaskSet:
    """Per-layer sets of unpruned (kept) flattened indices.

    Invariants (property-tested):
      * indices are sorted, unique, within ``[0, size)`` of their tensor;
      * dtype is int32 (the paper's storage choice);
      * ``shapes[name]`` records the original N-d shape so masks can be
        expanded back.
    """

    def __init__(
        self,
        indices: Mapping[str, np.ndarray],
        shapes: Mapping[str, tuple[int, ...]],
    ):
        self.indices: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.shapes: "OrderedDict[str, tuple[int, ...]]" = OrderedDict(
            (k, tuple(v)) for k, v in shapes.items()
        )
        for name, idx in indices.items():
            if name not in self.shapes:
                raise KeyError(f"index set {name!r} has no recorded shape")
            arr = np.asarray(idx, dtype=INDEX_DTYPE)
            size = int(np.prod(self.shapes[name]))
            if arr.ndim != 1:
                raise ValueError(f"{name}: indices must be 1-D (flattened view)")
            if arr.size and (arr.min() < 0 or arr.max() >= size):
                raise ValueError(f"{name}: index out of range for size {size}")
            arr = np.unique(arr)  # sorted + deduplicated
            self.indices[name] = arr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bool_masks(cls, masks: Mapping[str, np.ndarray]) -> "MaskSet":
        """Build from boolean keep-masks of the original tensor shapes."""
        indices, shapes = {}, {}
        for name, m in masks.items():
            m = np.asarray(m, dtype=bool)
            shapes[name] = m.shape
            indices[name] = np.flatnonzero(m.reshape(-1)).astype(INDEX_DTYPE)
        return cls(indices, shapes)

    @classmethod
    def from_scores(
        cls,
        scores: Mapping[str, np.ndarray],
        sparsity: float,
        scope: str = "global",
        absolute: bool = True,
    ) -> "MaskSet":
        """Keep the top-(1-sparsity) fraction of parameters by score.

        ``scope='global'`` applies one threshold across all layers (the
        standard magnitude-pruning choice); ``scope='layer'`` prunes each
        layer to the target sparsity independently. With ``absolute=True``
        (the magnitude-pruning default) scores are ranked by ``|s|``;
        pass ``absolute=False`` for signed saliencies — e.g. iterative
        pruning pins already-pruned positions at ``-inf`` so they can
        never be re-admitted.
        """
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")

        def rank(s: np.ndarray) -> np.ndarray:
            s = np.abs(s) if absolute else np.asarray(s, dtype=np.float64)
            return s.reshape(-1)

        indices, shapes = {}, {}
        if scope == "global":
            flat_all = np.concatenate([rank(s) for s in scores.values()])
            k_prune = int(round(sparsity * flat_all.size))
            if k_prune == 0:
                thresh = -np.inf
            else:
                thresh = np.partition(flat_all, k_prune - 1)[k_prune - 1]
            for name, s in scores.items():
                shapes[name] = s.shape
                keep = rank(s) > thresh
                # Ties at the threshold are handled globally below via the
                # exact top-k fallback, keeping global counts exact.
                indices[name] = np.flatnonzero(keep).astype(INDEX_DTYPE)
            kept = sum(v.size for v in indices.values())
            want_keep = flat_all.size - k_prune
            if kept != want_keep:
                # Ties at the threshold: fall back to exact global argpartition.
                order = np.argsort(flat_all, kind="stable")
                keep_global = np.zeros(flat_all.size, dtype=bool)
                keep_global[order[k_prune:]] = True
                off = 0
                for name, s in scores.items():
                    n = s.size
                    shapes[name] = s.shape
                    indices[name] = np.flatnonzero(keep_global[off : off + n]).astype(INDEX_DTYPE)
                    off += n
        elif scope == "layer":
            for name, s in scores.items():
                shapes[name] = s.shape
                flat = rank(s)
                k_prune = int(round(sparsity * flat.size))
                order = np.argsort(flat, kind="stable")
                keep = np.sort(order[k_prune:])
                indices[name] = keep.astype(INDEX_DTYPE)
        else:
            raise ValueError(f"scope must be 'global' or 'layer', got {scope!r}")
        return cls(indices, shapes)

    @classmethod
    def dense(cls, model: Module) -> "MaskSet":
        """All-kept mask over a model's prunable parameters."""
        indices, shapes = {}, {}
        for name, p in prunable_parameters(model).items():
            shapes[name] = p.data.shape
            indices[name] = np.arange(p.data.size, dtype=INDEX_DTYPE)
        return cls(indices, shapes)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def total_size(self) -> int:
        """Total elements covered by this mask set."""
        return sum(int(np.prod(s)) for s in self.shapes.values())

    def total_kept(self) -> int:
        """Total unpruned elements."""
        return sum(v.size for v in self.indices.values())

    @property
    def sparsity(self) -> float:
        """Fraction pruned, ``p`` in the paper's equations."""
        n = self.total_size()
        return 1.0 - self.total_kept() / n if n else 0.0

    def layer_sparsity(self, name: str) -> float:
        size = int(np.prod(self.shapes[name]))
        return 1.0 - self.indices[name].size / size if size else 0.0

    def __contains__(self, name: str) -> bool:
        return name in self.indices

    def __iter__(self) -> Iterable[str]:
        return iter(self.indices)

    def __len__(self) -> int:
        return len(self.indices)

    # ------------------------------------------------------------------
    # mask algebra
    # ------------------------------------------------------------------
    def bool_mask(self, name: str) -> np.ndarray:
        """Boolean keep-mask in the original tensor shape."""
        size = int(np.prod(self.shapes[name]))
        m = np.zeros(size, dtype=bool)
        m[self.indices[name]] = True
        return m.reshape(self.shapes[name])

    def apply(self, model: Module) -> None:
        """Zero out pruned entries of the model's parameters, in place.

        Written with ``np.where`` rather than a flat-view assignment:
        gradients/parameters may be non-contiguous (e.g. produced through a
        transpose), where ``reshape(-1)`` would silently copy.
        """
        params = dict(model.named_parameters())
        for name in self.indices:
            p = params[name]
            if p.data.shape != self.shapes[name]:
                raise ValueError(
                    f"{name}: model shape {p.data.shape} != mask shape {self.shapes[name]}"
                )
            keep = self.bool_mask(name)
            p.data[...] = np.where(keep, p.data, 0.0)

    def mask_gradients(self, model: Module) -> None:
        """Zero out gradients of pruned entries (dense-baseline training)."""
        params = dict(model.named_parameters())
        for name in self.indices:
            p = params[name]
            if p.grad is None:
                continue
            keep = self.bool_mask(name)
            p.grad[...] = np.where(keep, p.grad, 0.0)

    def distance(self, other: "MaskSet") -> float:
        """Normalised Hamming distance between two mask sets.

        This is the convergence metric of Early-Bird Tickets (You et al.):
        the fraction of positions whose kept/pruned status differs.
        """
        if set(self.shapes) != set(other.shapes):
            raise ValueError("mask sets cover different parameters")
        diff = 0
        total = 0
        for name in self.indices:
            if self.shapes[name] != other.shapes[name]:
                raise ValueError(f"{name}: shape mismatch")
            size = int(np.prod(self.shapes[name]))
            a = np.zeros(size, dtype=bool)
            b = np.zeros(size, dtype=bool)
            a[self.indices[name]] = True
            b[other.indices[name]] = True
            diff += int(np.count_nonzero(a ^ b))
            total += size
        return diff / total if total else 0.0

    def intersect(self, other: "MaskSet") -> "MaskSet":
        """Elementwise AND of two mask sets (used by iterative pruning)."""
        indices = {
            name: np.intersect1d(self.indices[name], other.indices[name])
            for name in self.indices
        }
        return MaskSet(indices, self.shapes)

    def __repr__(self) -> str:
        return (
            f"MaskSet(layers={len(self)}, kept={self.total_kept()}, "
            f"sparsity={self.sparsity:.4f})"
        )
