"""SNIP: single-shot connection-sensitivity pruning at initialisation.

Lee et al.'s SNIP is the other major prune-at-init family the paper's
related work gestures at (Section II-B cites several follow-ups to the
lottery ticket hypothesis; SNIP is the canonical saliency-based one).
The saliency of a connection is ``|g * w|`` — the first-order estimate of
how much the loss changes if the connection is removed — computed from a
single minibatch *before training*, which makes it the cheapest source of
``ind`` sets for SAMO.

The returned :class:`~repro.pruning.masks.MaskSet` plugs into exactly the
same pipeline as Early-Bird / magnitude masks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..tensor.module import Module
from ..tensor.tensor import Tensor
from .magnitude import prunable_parameters
from .masks import MaskSet

__all__ = ["snip_scores", "snip_prune"]


def snip_scores(
    model: Module,
    loss_fn: Callable[[Module], Tensor],
    n_batches: int = 1,
) -> dict[str, np.ndarray]:
    """Connection sensitivities ``|dL/dw * w|`` per prunable parameter.

    Parameters
    ----------
    model:
        Network at (or near) initialisation.
    loss_fn:
        Callable running one minibatch through ``model`` and returning the
        scalar loss Tensor. Called ``n_batches`` times; saliencies are
        accumulated (more batches -> lower-variance scores).
    """
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    params = prunable_parameters(model)
    acc = {name: np.zeros_like(p.data, dtype=np.float64) for name, p in params.items()}
    for _ in range(n_batches):
        model.zero_grad()
        loss = loss_fn(model)
        if loss.data.size != 1:
            raise ValueError("loss_fn must return a scalar loss Tensor")
        loss.backward()
        for name, p in params.items():
            if p.grad is None:
                raise RuntimeError(
                    f"{name} received no gradient — is it used by loss_fn?"
                )
            acc[name] += np.abs(p.grad.astype(np.float64) * p.data)
    model.zero_grad()
    return {name: a.astype(np.float32) for name, a in acc.items()}


def snip_prune(
    model: Module,
    loss_fn: Callable[[Module], Tensor],
    sparsity: float,
    n_batches: int = 1,
    scope: str = "global",
) -> MaskSet:
    """Prune to ``sparsity`` by SNIP connection sensitivity.

    Keeps the top-(1-sparsity) connections by ``|g * w|``, globally by
    default (the paper setting for SNIP). The model is not modified.
    """
    scores = snip_scores(model, loss_fn, n_batches)
    return MaskSet.from_scores(scores, sparsity, scope=scope)
