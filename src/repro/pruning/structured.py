"""Structured pruning: block, column-vector and channel granularity.

The paper's unstructured pipeline (magnitude / Early-Bird masks consumed
by SAMO) is granularity-agnostic — SAMO only sees flattened keep indices.
Structured pruning produces masks whose kept sets are unions of whole
blocks, column vectors (Chen et al.) or output channels, which is the
regime where sparse *compute* kernels become competitive (Section II-C).
Producing them as ordinary :class:`~repro.pruning.masks.MaskSet` objects
means every downstream system (SAMO state, sparse collectives, the
trainer) works unchanged; the ablation bench quantifies the accuracy-of-
granularity vs kernel-speed trade-off the paper navigates.

Scoring follows the standard structured-magnitude recipe: each unit
(block / vector / channel) is ranked by its L2 norm, and the top units
are kept to meet the target sparsity, globally across layers or per
layer.
"""

from __future__ import annotations

import numpy as np

from ..tensor.module import Module
from .magnitude import prunable_parameters
from .masks import MaskSet

__all__ = ["block_prune", "vector_prune", "channel_prune", "unit_norms"]


def _keep_units(norms: np.ndarray, sparsity: float) -> np.ndarray:
    """Boolean keep-mask over units: top-(1-sparsity) by norm, exact count."""
    n = norms.size
    k_prune = int(round(sparsity * n))
    order = np.argsort(norms.reshape(-1), kind="stable")
    keep = np.zeros(n, dtype=bool)
    keep[order[k_prune:]] = True
    return keep.reshape(norms.shape)


def unit_norms(w: np.ndarray, unit_shape: tuple[int, int]) -> np.ndarray:
    """L2 norm of every (bh x bw) tile of a 2-D weight matrix."""
    bh, bw = unit_shape
    if w.ndim != 2 or w.shape[0] % bh or w.shape[1] % bw:
        raise ValueError(f"weight {w.shape} not tileable by {unit_shape}")
    gr, gc = w.shape[0] // bh, w.shape[1] // bw
    tiles = w.reshape(gr, bh, gc, bw).transpose(0, 2, 1, 3)
    return np.sqrt((tiles.astype(np.float64) ** 2).sum(axis=(2, 3)))


def _expand_keep(keep: np.ndarray, unit_shape: tuple[int, int]) -> np.ndarray:
    """Block-grid boolean mask -> element boolean mask of the full matrix."""
    bh, bw = unit_shape
    return np.kron(keep, np.ones((bh, bw), dtype=bool))


def block_prune(
    model: Module,
    sparsity: float,
    block_shape: tuple[int, int] = (4, 4),
    scope: str = "global",
) -> MaskSet:
    """Prune whole (bh x bw) blocks of every 2-D prunable weight.

    Non-2-D or non-tileable parameters fall back to unstructured
    magnitude ranking at the same sparsity so the mask still covers every
    prunable tensor (SAMO requires full coverage).
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    masks: dict[str, np.ndarray] = {}
    tileable: dict[str, np.ndarray] = {}
    for name, p in prunable_parameters(model).items():
        w = p.data
        bh, bw = block_shape
        if w.ndim == 2 and w.shape[0] % bh == 0 and w.shape[1] % bw == 0:
            tileable[name] = unit_norms(w, block_shape)
        else:
            k_prune = int(round(sparsity * w.size))
            order = np.argsort(np.abs(w).reshape(-1), kind="stable")
            keep = np.zeros(w.size, dtype=bool)
            keep[order[k_prune:]] = True
            masks[name] = keep.reshape(w.shape)

    if scope == "global" and tileable:
        all_norms = np.concatenate([v.reshape(-1) for v in tileable.values()])
        keep_flat = _keep_units(all_norms, sparsity)
        off = 0
        for name, norms in tileable.items():
            n = norms.size
            keep = keep_flat[off : off + n].reshape(norms.shape)
            off += n
            masks[name] = _expand_keep(keep, block_shape)
    else:
        for name, norms in tileable.items():
            keep = _keep_units(norms, sparsity)
            masks[name] = _expand_keep(keep, block_shape)

    params = dict(prunable_parameters(model))
    return MaskSet.from_bool_masks(
        {name: masks[name].reshape(params[name].data.shape) for name in masks}
    )


def vector_prune(
    model: Module,
    sparsity: float,
    v: int = 4,
    scope: str = "global",
) -> MaskSet:
    """Chen et al. column-vector pruning: (v x 1) blocks of 2-D weights."""
    return block_prune(model, sparsity, block_shape=(v, 1), scope=scope)


def channel_prune(model: Module, sparsity: float) -> MaskSet:
    """Prune whole output channels (rows of 2-D weights, filters of 4-D).

    Channel granularity is the coarsest structure — pruned units map to
    dense row removals, so even cuBLAS benefits directly (smaller GEMM).
    Ranked per layer: removing channels globally would unbalance layer
    widths.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    masks: dict[str, np.ndarray] = {}
    for name, p in prunable_parameters(model).items():
        w = p.data
        flat = w.reshape(w.shape[0], -1)
        norms = np.sqrt((flat.astype(np.float64) ** 2).sum(axis=1))
        keep_rows = _keep_units(norms, sparsity)
        masks[name] = np.broadcast_to(
            keep_rows.reshape((w.shape[0],) + (1,) * (w.ndim - 1)), w.shape
        ).copy()
    return MaskSet.from_bool_masks(masks)
