"""Early-Bird Tickets (You et al., ICLR 2020) — the paper's pruning method.

You et al. observe that the winning-ticket mask emerges *early* in training:
the magnitude-pruning mask computed at successive epochs stops changing long
before convergence. Their algorithm draws a mask every epoch, keeps a FIFO
of the last ``window`` masks, and declares the ticket "drawn" when the
maximum pairwise Hamming distance within the window drops below ``epsilon``
(0.1 in the paper). Training then restarts/continues on the pruned network.

:class:`EarlyBirdPruner` implements exactly that protocol against any
:class:`~repro.tensor.Module`. It is deliberately training-loop agnostic:
call :meth:`observe` once per epoch (or per eval interval) and check
:attr:`converged`.
"""

from __future__ import annotations

from collections import deque

from ..tensor.module import Module
from .magnitude import magnitude_prune
from .masks import MaskSet

__all__ = ["EarlyBirdPruner"]


class EarlyBirdPruner:
    """Detects mask convergence during training and emits the final ticket.

    Parameters
    ----------
    sparsity:
        Target pruning fraction ``p`` (the paper uses 0.9).
    epsilon:
        Mask-distance convergence threshold (You et al. use 0.1).
    window:
        FIFO length of retained masks (You et al. use 5).
    scope:
        ``'global'`` or ``'layer'`` magnitude thresholding.
    """

    def __init__(
        self,
        sparsity: float = 0.9,
        epsilon: float = 0.1,
        window: int = 5,
        scope: str = "global",
    ):
        if not 0.0 < sparsity < 1.0:
            raise ValueError(f"sparsity must be in (0,1), got {sparsity}")
        if window < 2:
            raise ValueError("window must be >= 2")
        self.sparsity = sparsity
        self.epsilon = epsilon
        self.window = window
        self.scope = scope
        self._fifo: deque[MaskSet] = deque(maxlen=window)
        self.distance_history: list[float] = []
        self.converged: bool = False
        self.epochs_observed: int = 0

    def observe(self, model: Module) -> MaskSet:
        """Draw this epoch's magnitude mask; update convergence state.

        Returns the freshly drawn mask (the current ticket candidate).
        """
        mask = magnitude_prune(model, self.sparsity, scope=self.scope)
        if self._fifo:
            d = mask.distance(self._fifo[-1])
            self.distance_history.append(d)
        self._fifo.append(mask)
        self.epochs_observed += 1
        if len(self._fifo) == self.window:
            max_d = max(
                self._fifo[i].distance(self._fifo[j])
                for i in range(len(self._fifo))
                for j in range(i + 1, len(self._fifo))
            )
            if max_d < self.epsilon:
                self.converged = True
        return mask

    @property
    def ticket(self) -> MaskSet:
        """The most recent mask (the early-bird ticket once converged)."""
        if not self._fifo:
            raise RuntimeError("observe() has not been called yet")
        return self._fifo[-1]

    def __repr__(self) -> str:
        return (
            f"EarlyBirdPruner(p={self.sparsity}, eps={self.epsilon}, "
            f"epochs={self.epochs_observed}, converged={self.converged})"
        )
