"""Random pruning — the control baseline.

Random masks at matched sparsity exercise the identical SAMO storage and
communication paths as learned tickets (SAMO only consumes indices), so the
performance experiments use random masks at paper-scale where no training
run exists to derive a real ticket from.
"""

from __future__ import annotations

import numpy as np

from ..rng import resolve_rng
from ..tensor.module import Module
from .masks import MaskSet, prunable_parameters

__all__ = ["random_prune", "random_mask_for_shapes"]


def random_prune(
    model: Module,
    sparsity: float,
    rng: np.random.Generator | int | None = None,
) -> MaskSet:
    """Uniform random keep-mask at the target sparsity over a model.

    ``rng`` is a generator, an integer seed, or ``None`` (fresh
    entropy); two calls with the same seed draw identical masks.
    """
    rng = resolve_rng(rng)
    shapes = {name: p.data.shape for name, p in prunable_parameters(model).items()}
    return random_mask_for_shapes(shapes, sparsity, rng)


def random_mask_for_shapes(
    shapes: dict[str, tuple[int, ...]],
    sparsity: float,
    rng: np.random.Generator | int | None = None,
) -> MaskSet:
    """Uniform random keep-mask for arbitrary named shapes.

    Each layer keeps exactly ``round((1-p) * size)`` elements, so the global
    sparsity is within one element per layer of the request — the guarantee
    the property tests pin down. ``rng`` accepts a generator or a seed.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0,1), got {sparsity}")
    rng = resolve_rng(rng)
    indices = {}
    for name, shape in shapes.items():
        size = int(np.prod(shape))
        keep = size - int(round(sparsity * size))
        idx = rng.choice(size, size=keep, replace=False)
        indices[name] = np.sort(idx).astype(np.int32)
    return MaskSet(indices, shapes)
