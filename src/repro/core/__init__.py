"""SAMO — Sparsity-aware Memory Optimization (the paper's contribution).

Public surface:

* :func:`compress` / :func:`expand` — the storage primitives;
* :class:`SAMOTrainingState` — compressed model state + training phases;
* :class:`SAMOOptimizer` — trainer-facing facade;
* :mod:`repro.core.memory_model` — Eqs. 1-5 and the Figure 2 curve;
* :class:`SAMOConfig` — configuration.
"""

from .compression import compress, compress_into, expand, expand_into
from .config import SAMOConfig
from .indexing import flatten_indices, index_bytes, unflatten_indices, validate_flat_indices
from .memory_model import (
    BREAK_EVEN_SPARSITY,
    MemoryBreakdown,
    dense_model_state_bytes,
    memory_savings_bytes,
    memory_savings_percent,
    samo_breakdown,
    samo_model_state_bytes,
)
from .model_state import CompressedEntry, DenseEntry, SAMOTrainingState
from .samo_optimizer import SAMOOptimizer
from .serialization import checkpoint_nbytes, load_state, save_state

__all__ = [
    "compress",
    "compress_into",
    "expand",
    "expand_into",
    "flatten_indices",
    "unflatten_indices",
    "validate_flat_indices",
    "index_bytes",
    "SAMOConfig",
    "SAMOTrainingState",
    "SAMOOptimizer",
    "CompressedEntry",
    "DenseEntry",
    "BREAK_EVEN_SPARSITY",
    "MemoryBreakdown",
    "dense_model_state_bytes",
    "samo_model_state_bytes",
    "samo_breakdown",
    "memory_savings_bytes",
    "memory_savings_percent",
    "save_state",
    "load_state",
    "checkpoint_nbytes",
]
