"""Analytical memory model of SAMO (paper Section III-D, Figure 2).

With Adam and mixed precision, default model-state memory is

    M_default = 20·φ bytes         (2+2+4+4+8 per parameter)

and with SAMO at pruning fraction ``p`` (keep fraction ``f = 1-p``):

    M_SAMO = 18·f·φ  (compressed ∇θ16, θ32, ∇θ32, os)
           +  4·f·φ  (shared int32 index)
           +  2·φ    (uncompressed θ16)
           +  2·f·φ  (temporary compressed fp16 copy in the down-cast)
           = 24·f·φ + 2·φ = M_default − (24p − 6)·φ        (Eqs. 1–5)

Break-even is p = 0.25; at p ∈ [0.8, 0.9] savings are 66–78%.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "dense_model_state_bytes",
    "samo_model_state_bytes",
    "samo_breakdown",
    "memory_savings_bytes",
    "memory_savings_percent",
    "BREAK_EVEN_SPARSITY",
    "MemoryBreakdown",
]

#: Sparsity at which SAMO's storage equals default mixed precision (Fig. 2).
BREAK_EVEN_SPARSITY = 0.25

#: bytes per parameter of each dense mixed-precision model-state component
_DENSE_COMPONENTS = {
    "theta16": 2,
    "grad16": 2,
    "theta32": 4,
    "grad32": 4,
    "optimizer_states": 8,  # Adam: two fp32 moments
}


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-component model-state bytes."""

    theta16: int
    grad16: int
    theta32: int
    grad32: int
    optimizer_states: int
    index: int
    downcast_temp: int

    @property
    def total(self) -> int:
        return (
            self.theta16
            + self.grad16
            + self.theta32
            + self.grad32
            + self.optimizer_states
            + self.index
            + self.downcast_temp
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "theta16": self.theta16,
            "grad16": self.grad16,
            "theta32": self.theta32,
            "grad32": self.grad32,
            "optimizer_states": self.optimizer_states,
            "index": self.index,
            "downcast_temp": self.downcast_temp,
            "total": self.total,
        }


def dense_model_state_bytes(phi: int, optimizer_state_bytes_per_param: int = 8) -> int:
    """``M_default``: mixed-precision model state without SAMO.

    ``optimizer_state_bytes_per_param`` is 8 for Adam/AdamW (two fp32
    moments) and 4 for SGD with momentum (one fp32 buffer).
    """
    per_param = 2 + 2 + 4 + 4 + optimizer_state_bytes_per_param
    return per_param * int(phi)


def samo_breakdown(
    phi: int, sparsity: float, optimizer_state_bytes_per_param: int = 8
) -> MemoryBreakdown:
    """Component-wise ``M_SAMO`` at pruning fraction ``sparsity``."""
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0,1], got {sparsity}")
    f = 1.0 - sparsity
    nnz = round(f * phi)
    return MemoryBreakdown(
        theta16=2 * phi,  # kept dense for cuBLAS/cuDNN-style kernels
        grad16=2 * nnz,
        theta32=4 * nnz,
        grad32=4 * nnz,
        optimizer_states=optimizer_state_bytes_per_param * nnz,
        index=4 * nnz,
        downcast_temp=2 * nnz,
    )


def samo_model_state_bytes(
    phi: int, sparsity: float, optimizer_state_bytes_per_param: int = 8
) -> int:
    """``M_SAMO = 24·f·φ + 2·φ`` (with Adam's 8 bytes of state)."""
    return samo_breakdown(phi, sparsity, optimizer_state_bytes_per_param).total


def memory_savings_bytes(phi: int, sparsity: float) -> int:
    """Absolute savings ``(24p − 6)·φ`` (Adam, Eq. 5). Negative below
    break-even: SAMO *costs* memory for insufficiently pruned networks."""
    return dense_model_state_bytes(phi) - samo_model_state_bytes(phi, sparsity)


def memory_savings_percent(sparsity: float) -> float:
    """Percentage savings vs default mixed precision (the Figure 2 curve)."""
    phi = 10**9  # cancels out; any large value avoids rounding artefacts
    return 100.0 * memory_savings_bytes(phi, sparsity) / dense_model_state_bytes(phi)
