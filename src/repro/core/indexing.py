"""Flattened one-dimensional index views (paper Section III-B).

SAMO stores the non-zero indices of every N-dimensional state tensor as
indices into a hypothetical 1-D view, saving N× index memory relative to
COO coordinate tuples: for a 2x2 tensor with non-zeros at [(0,0), (1,1)],
the 1-D view stores just [0, 3].

These helpers convert between N-d coordinates and the flat view and verify
the invariants the rest of SAMO relies on (sorted, unique, in-range).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "flatten_indices",
    "unflatten_indices",
    "validate_flat_indices",
    "index_bytes",
]

INDEX_DTYPE = np.int32


def flatten_indices(coords: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Convert ``(nnz, ndim)`` coordinate rows to sorted flat int32 indices.

    Equivalent to ``np.ravel_multi_index`` plus SAMO's storage conventions.
    """
    coords = np.asarray(coords)
    if coords.ndim == 1:
        coords = coords[:, None]
    if coords.shape[1] != len(shape):
        raise ValueError(
            f"coordinate arity {coords.shape[1]} != tensor ndim {len(shape)}"
        )
    flat = np.ravel_multi_index(tuple(coords.T), shape)
    return np.sort(flat).astype(INDEX_DTYPE)


def unflatten_indices(flat: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Convert flat indices back to ``(nnz, ndim)`` coordinate rows."""
    flat = np.asarray(flat)
    return np.stack(np.unravel_index(flat, shape), axis=1)


def validate_flat_indices(flat: np.ndarray, size: int) -> np.ndarray:
    """Check SAMO's index invariants; returns the validated int32 array.

    Raises ``ValueError`` on unsorted, duplicated, or out-of-range entries.
    """
    flat = np.asarray(flat)
    if flat.ndim != 1:
        raise ValueError("flat index array must be 1-D")
    if flat.dtype != INDEX_DTYPE:
        flat = flat.astype(INDEX_DTYPE)
    if flat.size:
        if flat[0] < 0 or flat[-1] >= size:
            raise ValueError(f"index out of range for size {size}")
        d = np.diff(flat)
        if np.any(d < 0):
            raise ValueError("indices must be sorted ascending")
        if np.any(d == 0):
            raise ValueError("indices must be unique")
    return flat


def index_bytes(nnz: int) -> int:
    """Bytes spent on the shared index tensor: one int32 per kept value.

    This is the ``4·f·φ`` term of the paper's Eq. 1.
    """
    return 4 * int(nnz)
