"""Trainer-facing facade over :class:`SAMOTrainingState`.

Presents the same ``zero_grad / step`` protocol as the dense optimizers in
:mod:`repro.optim`, plus the compressed-gradient views that data-parallel
training all-reduces (paper Section IV-A: "directly invoking AxoNN's
all-reduce calls on the compressed tensor").
"""

from __future__ import annotations

import numpy as np

from ..pruning.masks import MaskSet
from ..tensor.module import Module
from .config import SAMOConfig
from .model_state import SAMOTrainingState

__all__ = ["SAMOOptimizer"]


class SAMOOptimizer:
    """Drop-in optimizer that owns a SAMO training state.

    Typical loop::

        opt = SAMOOptimizer(model, mask, SAMOConfig(optimizer="adamw", lr=3e-4))
        loss = model.loss(x, y)
        loss.backward()
        opt.compress_gradients()   # per the paper: right after backward
        opt.step()
    """

    def __init__(self, model: Module, mask: MaskSet, config: SAMOConfig | None = None):
        self.state = SAMOTrainingState(model, mask, config)
        self.config = self.state.config
        self.lr = self.config.lr

    # -- optimizer protocol ---------------------------------------------------
    def set_lr(self, lr: float) -> None:
        self.lr = float(lr)

    def zero_grad(self) -> None:
        self.state.zero_grad()

    def compress_gradients(self) -> None:
        """Compress dense grads into shared-index fp16 storage (backward phase)."""
        self.state.compress_gradients()

    def step(self, loss_scale: float = 1.0) -> bool:
        """Run the SAMO optimizer step; False means fp16 overflow (skipped)."""
        return self.state.step(lr=self.lr, loss_scale=loss_scale)

    @property
    def step_count(self) -> int:
        return self.state.step_count

    # -- communication hooks ----------------------------------------------------
    def compressed_gradient_views(self) -> list[tuple[str, np.ndarray]]:
        """(name, fp16 compressed gradient) pairs for sparse all-reduce.

        Only gradients that exist (post ``compress_gradients``) are
        returned; buffers are the live storage, so an in-place all-reduce
        updates SAMO state directly.
        """
        out = []
        for e in self.state.compressed:
            if e.grad16_c is not None:
                out.append((e.name, e.grad16_c))
        for d in self.state.dense:
            if d.grad16 is not None:
                out.append((d.name, d.grad16))
        return out

    def gradient_message_bytes(self) -> int:
        """Bytes a data-parallel all-reduce must move per rank with SAMO."""
        return sum(g.nbytes for _, g in self.compressed_gradient_views())

    def average_gradients(self, world_size: int) -> None:
        """Divide stored gradients by ``world_size`` (post all-reduce)."""
        for _, g in self.compressed_gradient_views():
            g32 = g.astype(np.float32) / world_size
            g[...] = g32.astype(g.dtype)

    def __repr__(self) -> str:
        return f"SAMOOptimizer({self.state!r}, lr={self.lr})"
