"""Compression and expansion primitives (paper Sections III-B, III-C).

``compress`` gathers the kept values of a dense tensor into a contiguous
1-D buffer using the shared flat index; ``expand`` is the paper's inverse
"expansion" operation — scatter the compressed values back into a dense
zero-filled tensor. Both are single fancy-indexing operations, i.e. the
dense-kernel-friendly moves the paper's design requires.
"""

from __future__ import annotations

import numpy as np

from .indexing import validate_flat_indices

__all__ = ["compress", "expand", "expand_into", "compress_into"]


def compress(dense: np.ndarray, ind: np.ndarray, out_dtype=None) -> np.ndarray:
    """Gather kept values: ``dense.reshape(-1)[ind]``.

    Parameters
    ----------
    dense:
        Any N-d array.
    ind:
        Sorted, unique flat indices into the 1-D view of ``dense``.
    out_dtype:
        Optional dtype conversion fused into the gather (e.g. fp32 -> fp16
        when producing ``∇θ16`` from a fresh dense gradient).
    """
    ind = validate_flat_indices(ind, dense.size)
    vals = dense.reshape(-1)[ind]
    if out_dtype is not None and vals.dtype != np.dtype(out_dtype):
        # fp32 -> fp16 overflow to inf is *intended* mixed-precision
        # behaviour: the loss scaler detects it and skips the step.
        with np.errstate(over="ignore"):
            vals = vals.astype(out_dtype)
    return vals


def compress_into(dense: np.ndarray, ind: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Gather into a preallocated buffer (avoids allocation in hot loops)."""
    ind = validate_flat_indices(ind, dense.size)
    np.take(dense.reshape(-1), ind, out=out if out.dtype == dense.dtype else None)
    if out.dtype != dense.dtype:
        out[...] = dense.reshape(-1)[ind]
    return out


def expand(
    values: np.ndarray,
    ind: np.ndarray,
    shape: tuple[int, ...],
    out_dtype=None,
) -> np.ndarray:
    """Scatter compressed values into a dense zero tensor of ``shape``.

    The paper's "expansion" operator: the inverse of :func:`compress` on
    the kept positions, with zeros at every pruned position.
    """
    size = int(np.prod(shape))
    ind = validate_flat_indices(ind, size)
    if values.shape != ind.shape:
        raise ValueError(f"values shape {values.shape} != index shape {ind.shape}")
    dtype = out_dtype or values.dtype
    dense = np.zeros(size, dtype=dtype)
    dense[ind] = values
    return dense.reshape(shape)


def expand_into(values: np.ndarray, ind: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Scatter into a preallocated dense tensor (zeroed first)."""
    ind = validate_flat_indices(ind, out.size)
    flat = out.reshape(-1)
    flat[...] = 0
    flat[ind] = values
    return out
