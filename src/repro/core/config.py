"""SAMO configuration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SAMOConfig"]


@dataclass(frozen=True)
class SAMOConfig:
    """Knobs of the SAMO training state.

    Attributes
    ----------
    optimizer:
        ``'adam' | 'adamw' | 'sgd'`` — which update kernel the compressed
        optimizer step runs.
    lr, betas, eps, weight_decay, momentum, nesterov:
        Hyper-parameters forwarded to the kernel.
    compress_nonprunable:
        SAMO only compresses states of pruned (prunable) tensors; biases
        and norm parameters always stay dense. Kept as an explicit flag to
        document the behaviour.
    warn_below_break_even:
        Emit a warning when the mask sparsity is below 0.25, where SAMO
        *increases* memory (paper Fig. 2).
    """

    optimizer: str = "adam"
    lr: float = 1e-3
    betas: tuple[float, float] = (0.9, 0.999)
    eps: float = 1e-8
    weight_decay: float = 0.0
    momentum: float = 0.9
    nesterov: bool = False
    compress_nonprunable: bool = False
    warn_below_break_even: bool = True

    def __post_init__(self):
        if self.optimizer not in ("adam", "adamw", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.compress_nonprunable:
            raise ValueError(
                "compress_nonprunable is documented-only: SAMO keeps "
                "non-prunable tensors dense by design"
            )

    @property
    def optimizer_state_slots(self) -> int:
        """fp32 state arrays per parameter (2 for Adam/AdamW, 1 for SGD)."""
        return 2 if self.optimizer in ("adam", "adamw") else 1
