"""Compressed model state (paper Sections III-A to III-C).

SAMO keeps the half-precision parameters ``θ16`` dense (so forward and
backward run on fast dense kernels) and stores every other model-state
tensor — ``θ32``, ``∇θ16``, ``∇θ32`` and the optimizer states ``os`` —
compressed to the unpruned positions, all sharing one flattened int32
index per layer.

:class:`SAMOTrainingState` owns this storage for a model + mask pair and
implements the three training phases:

* **forward** — nothing to do: ``θ16`` lives (quantised to the fp16 grid)
  in each ``Parameter.data``, so the model's normal ``forward`` already
  computes with half-precision weights on dense kernels;
* **backward** — :meth:`compress_gradients` converts each freshly produced
  dense gradient into compressed fp16 storage and frees the dense buffer,
  layer by layer;
* **optimizer step** — :meth:`step` up-scales ``∇θ16 → ∇θ32`` on the
  compressed buffers, runs the (dense, elementwise) optimizer kernel on the
  compressed fp32 state, and re-materialises ``θ16`` via a compressed
  fp16 copy of ``θ32`` followed by the *expand* operation.

Non-prunable tensors (biases, normalisation affine parameters) follow the
ordinary mixed-precision path with dense fp32 masters.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..optim.kernels import adam_kernel, sgd_momentum_kernel
from ..pruning.masks import MaskSet
from ..tensor.module import Module, Parameter
from .compression import compress, expand
from .config import SAMOConfig
from .memory_model import BREAK_EVEN_SPARSITY

__all__ = ["SAMOTrainingState", "CompressedEntry", "DenseEntry"]


@dataclass
class CompressedEntry:
    """SAMO storage for one pruned (prunable) parameter tensor."""

    name: str
    param: Parameter
    shape: tuple[int, ...]
    ind: np.ndarray  # shared int32 flat index (sorted, unique)
    theta32_c: np.ndarray  # fp32 master values, compressed
    grad16_c: np.ndarray | None = None  # fp16 gradient, compressed
    opt_state_c: list[np.ndarray] = field(default_factory=list)  # fp32, compressed

    @property
    def nnz(self) -> int:
        return int(self.ind.size)


@dataclass
class DenseEntry:
    """Ordinary mixed-precision storage for a non-prunable tensor."""

    name: str
    param: Parameter
    theta32: np.ndarray  # fp32 master, dense
    grad16: np.ndarray | None = None  # fp16 gradient, dense
    opt_state: list[np.ndarray] = field(default_factory=list)


class SAMOTrainingState:
    """Owns compressed model state and the SAMO training phases.

    Parameters
    ----------
    model:
        The network. Its prunable parameters must be covered by ``mask``.
        On construction the mask is applied (pruned weights zeroed), all
        parameter data is quantised to the fp16 grid (this *is* ``θ16``),
        and compressed fp32 masters are gathered.
    mask:
        Keep-index sets from a pruning algorithm.
    config:
        Optimizer selection and hyper-parameters.
    """

    def __init__(self, model: Module, mask: MaskSet, config: SAMOConfig | None = None):
        self.model = model
        self.mask = mask
        self.config = config or SAMOConfig()
        if (
            self.config.warn_below_break_even
            and mask.sparsity < BREAK_EVEN_SPARSITY
        ):
            warnings.warn(
                f"mask sparsity {mask.sparsity:.3f} is below SAMO's break-even "
                f"point {BREAK_EVEN_SPARSITY}; memory use will increase",
                stacklevel=2,
            )
        self.compressed: list[CompressedEntry] = []
        self.dense: list[DenseEntry] = []
        self.step_count = 0
        n_slots = self.config.optimizer_state_slots

        mask.apply(model)  # zero pruned weights before gathering masters
        for name, p in model.named_parameters():
            if name in mask:
                ind = mask.indices[name]
                theta32_c = p.data.reshape(-1)[ind].astype(np.float32)
                entry = CompressedEntry(
                    name=name,
                    param=p,
                    shape=p.data.shape,
                    ind=ind,
                    theta32_c=theta32_c,
                    opt_state_c=[np.zeros(ind.size, dtype=np.float32) for _ in range(n_slots)],
                )
                self.compressed.append(entry)
                # θ16: dense, fp16-quantised, pruned positions exactly zero.
                p.data[...] = expand(
                    theta32_c.astype(np.float16), ind, entry.shape, out_dtype=np.float16
                ).astype(np.float32)
            else:
                self.dense.append(
                    DenseEntry(
                        name=name,
                        param=p,
                        theta32=p.data.astype(np.float32, copy=True),
                        opt_state=[np.zeros_like(p.data, dtype=np.float32) for _ in range(n_slots)],
                    )
                )
                p.data[...] = p.data.astype(np.float16).astype(np.float32)

    # ------------------------------------------------------------------
    # backward phase
    # ------------------------------------------------------------------
    def compress_gradients(self) -> None:
        """Compress every parameter's dense gradient into fp16 storage.

        Mirrors the paper's per-layer compression during the backward pass:
        each dense gradient buffer is freed as soon as its compressed copy
        exists, so at most one layer's dense gradient is alive at a time.
        Gradients accumulate across calls (microbatching).
        """
        for e in self.compressed:
            if e.param.grad is None:
                continue
            g_c = compress(e.param.grad, e.ind, out_dtype=np.float16)
            if e.grad16_c is None:
                e.grad16_c = g_c
            else:
                e.grad16_c = (e.grad16_c.astype(np.float32) + g_c.astype(np.float32)).astype(np.float16)
            e.param.grad = None  # free the dense buffer immediately
        for d in self.dense:
            if d.param.grad is None:
                continue
            with np.errstate(over="ignore"):  # inf -> scaler skips the step
                g16 = d.param.grad.astype(np.float16)
            if d.grad16 is None:
                d.grad16 = g16
            else:
                d.grad16 = (d.grad16.astype(np.float32) + g16.astype(np.float32)).astype(np.float16)
            d.param.grad = None

    def has_gradient_overflow(self) -> bool:
        """True when any stored fp16 gradient contains inf/nan."""
        for e in self.compressed:
            if e.grad16_c is not None and not np.all(np.isfinite(e.grad16_c)):
                return True
        for d in self.dense:
            if d.grad16 is not None and not np.all(np.isfinite(d.grad16)):
                return True
        return False

    def zero_grad(self) -> None:
        """Drop stored gradients (dense and compressed)."""
        for e in self.compressed:
            e.grad16_c = None
        for d in self.dense:
            d.grad16 = None
        self.model.zero_grad()

    def clip_gradients(self, max_norm: float, loss_scale: float = 1.0) -> float:
        """Global-norm clip of the stored (compressed) fp16 gradients.

        Pruned positions are exactly zero, so the norm over compressed
        values equals the norm of the masked dense gradient — clipping
        here is bitwise-equivalent to clipping in the dense baseline.
        Returns the pre-clip unscaled norm.
        """
        from ..optim.grad_clip import clip_stored_norm

        arrays = [e.grad16_c for e in self.compressed] + [d.grad16 for d in self.dense]
        return clip_stored_norm(arrays, max_norm, loss_scale)

    # ------------------------------------------------------------------
    # optimizer phase
    # ------------------------------------------------------------------
    def step(self, lr: float | None = None, loss_scale: float = 1.0) -> bool:
        """Run the SAMO optimizer step. Returns False on fp16 overflow.

        Phases per the paper's Section III-C:

        1. up-scale ``∇θ16 → ∇θ32`` directly on the compressed buffers
           (and divide out the loss scale);
        2. run the optimizer kernel on compressed fp32 state — valid
           because every state tensor shares the same index;
        3. down-cast: make a compressed fp16 copy of ``θ32`` and *expand*
           it into the dense ``θ16`` (zeros at pruned positions).
        """
        if self.has_gradient_overflow():
            self.zero_grad()
            return False
        self.step_count += 1
        cfg = self.config
        lr = cfg.lr if lr is None else lr
        inv_scale = 1.0 / float(loss_scale)

        for e in self.compressed:
            if e.grad16_c is None:
                continue
            grad32_c = e.grad16_c.astype(np.float32) * inv_scale  # phase 1
            self._apply_kernel(e.theta32_c, grad32_c, e.opt_state_c, lr)  # phase 2
            theta16_c = e.theta32_c.astype(np.float16)  # temp compressed copy
            e.param.data[...] = expand(
                theta16_c, e.ind, e.shape, out_dtype=np.float16
            ).astype(np.float32)  # phase 3: expand
            e.grad16_c = None

        for d in self.dense:
            if d.grad16 is None:
                continue
            grad32 = d.grad16.astype(np.float32) * inv_scale
            self._apply_kernel(d.theta32, grad32, d.opt_state, lr)
            d.param.data[...] = d.theta32.astype(np.float16).astype(np.float32)
            d.grad16 = None
        return True

    def _apply_kernel(
        self,
        theta32: np.ndarray,
        grad32: np.ndarray,
        state: list[np.ndarray],
        lr: float,
    ) -> None:
        cfg = self.config
        if cfg.optimizer in ("adam", "adamw"):
            adam_kernel(
                theta32,
                grad32,
                state[0],
                state[1],
                step=self.step_count,
                lr=lr,
                beta1=cfg.betas[0],
                beta2=cfg.betas[1],
                eps=cfg.eps,
                weight_decay=cfg.weight_decay,
                decoupled=cfg.optimizer == "adamw",
            )
        else:
            sgd_momentum_kernel(
                theta32,
                grad32,
                state[0],
                lr=lr,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                nesterov=cfg.nesterov,
                first_step=self.step_count == 1,
            )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def measured_bytes(self) -> dict[str, int]:
        """Model-state bytes as actually stored, by component.

        ``θ16`` counts 2 bytes per element (its storage precision — the
        fp32 compute container on this CPU substrate is an implementation
        detail, see ``repro.tensor.precision``). Everything else is the
        literal ``nbytes`` of the backing arrays. ``downcast_temp`` is the
        transient compressed fp16 copy made in phase 3.
        """
        out = {
            "theta16": 0,
            "grad16": 0,
            "theta32": 0,
            "grad32": 0,
            "optimizer_states": 0,
            "index": 0,
            "downcast_temp": 0,
        }
        for e in self.compressed:
            out["theta16"] += 2 * int(np.prod(e.shape))
            out["grad16"] += 2 * e.nnz
            out["theta32"] += e.theta32_c.nbytes
            out["grad32"] += 4 * e.nnz
            out["optimizer_states"] += sum(s.nbytes for s in e.opt_state_c)
            out["index"] += e.ind.nbytes
            out["downcast_temp"] += 2 * e.nnz
        for d in self.dense:
            n = d.theta32.size
            out["theta16"] += 2 * n
            out["grad16"] += 2 * n
            out["theta32"] += d.theta32.nbytes
            out["grad32"] += 4 * n
            out["optimizer_states"] += sum(s.nbytes for s in d.opt_state)
        out["total"] = sum(v for k, v in out.items() if k != "total")
        return out

    def consistency_check(self) -> None:
        """Verify storage invariants (used by tests and after loading).

        * dense ``θ16`` equals expand(compress fp16 of ``θ32``);
        * pruned positions of every parameter are exactly zero.
        """
        for e in self.compressed:
            dense16 = expand(
                e.theta32_c.astype(np.float16), e.ind, e.shape, out_dtype=np.float16
            ).astype(np.float32)
            if not np.array_equal(dense16, e.param.data):
                raise AssertionError(f"{e.name}: θ16 inconsistent with θ32")
            keep = np.zeros(int(np.prod(e.shape)), dtype=bool)
            keep[e.ind] = True
            if np.any(e.param.data.reshape(-1)[~keep] != 0.0):
                raise AssertionError(f"{e.name}: non-zero values at pruned positions")

    def __repr__(self) -> str:
        return (
            f"SAMOTrainingState(compressed={len(self.compressed)}, "
            f"dense={len(self.dense)}, sparsity={self.mask.sparsity:.3f}, "
            f"optimizer={self.config.optimizer!r})"
        )
