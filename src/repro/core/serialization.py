"""Checkpointing of SAMO training state (save / load / resume).

Large-model training jobs checkpoint constantly; a SAMO checkpoint must
round-trip the *compressed* storage exactly — shared indices, compressed
fp32 masters, compressed optimizer states and the step counter — so that
resumed training is bit-identical to uninterrupted training. Notably the
dense ``θ16`` is **not** stored: it is a pure function of ``θ32`` and
``ind`` (phase 3 of the optimizer step) and is re-expanded on load, which
keeps the checkpoint at the compressed size — the on-disk counterpart of
the paper's in-memory savings.

Format: a single ``.npz`` (zip of ``.npy`` arrays) plus a small JSON
header for config/metadata. No pickling — arrays only — so checkpoints
are portable and safe to load.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from ..pruning.masks import MaskSet
from ..tensor.module import Module
from .compression import expand
from .config import SAMOConfig
from .model_state import SAMOTrainingState

__all__ = ["save_state", "load_state", "checkpoint_nbytes"]

FORMAT_VERSION = 1


def _config_dict(cfg: SAMOConfig) -> dict:
    return {
        "optimizer": cfg.optimizer,
        "lr": cfg.lr,
        "betas": list(cfg.betas),
        "eps": cfg.eps,
        "weight_decay": cfg.weight_decay,
        "momentum": cfg.momentum,
        "nesterov": cfg.nesterov,
    }


def _config_from_dict(d: dict) -> SAMOConfig:
    return SAMOConfig(
        optimizer=d["optimizer"],
        lr=d["lr"],
        betas=tuple(d["betas"]),
        eps=d["eps"],
        weight_decay=d["weight_decay"],
        momentum=d["momentum"],
        nesterov=d["nesterov"],
        warn_below_break_even=False,  # sparsity was validated at save time
    )


def save_state(state: SAMOTrainingState, path: str | os.PathLike) -> int:
    """Write ``state`` to ``path`` (.npz). Returns bytes written.

    Pending (un-stepped) gradients are deliberately not saved — standard
    checkpointing semantics save at step boundaries.
    """
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {}
    header = {
        "version": FORMAT_VERSION,
        "step_count": state.step_count,
        "config": _config_dict(state.config),
        "compressed": [],
        "dense": [],
    }
    for i, e in enumerate(state.compressed):
        key = f"c{i}"
        header["compressed"].append(
            {"name": e.name, "shape": list(e.shape), "slots": len(e.opt_state_c)}
        )
        arrays[f"{key}_ind"] = e.ind
        arrays[f"{key}_theta32"] = e.theta32_c
        for s, slot in enumerate(e.opt_state_c):
            arrays[f"{key}_os{s}"] = slot
    for i, d in enumerate(state.dense):
        key = f"d{i}"
        header["dense"].append(
            {"name": d.name, "shape": list(d.theta32.shape), "slots": len(d.opt_state)}
        )
        arrays[f"{key}_theta32"] = d.theta32
        for s, slot in enumerate(d.opt_state):
            arrays[f"{key}_os{s}"] = slot
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    ).copy()
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    return path.stat().st_size


def load_state(model: Module, path: str | os.PathLike) -> SAMOTrainingState:
    """Rebuild a :class:`SAMOTrainingState` for ``model`` from ``path``.

    ``model``'s parameter names and shapes must match the checkpoint; its
    parameter *values* are overwritten (``θ16`` is re-expanded from the
    stored compressed ``θ32``). Resumed training continues bit-identically.
    """
    with np.load(path) as z:
        header = json.loads(bytes(z["header"]).decode("utf-8"))
        if header["version"] != FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {header['version']}")
        cfg = _config_from_dict(header["config"])

        indices = {
            meta["name"]: z[f"c{i}_ind"]
            for i, meta in enumerate(header["compressed"])
        }
        shapes = {
            meta["name"]: tuple(meta["shape"])
            for meta in header["compressed"]
        }
        mask = MaskSet(indices, shapes)

        params = dict(model.named_parameters())
        missing = set(indices) - set(params)
        if missing:
            raise KeyError(f"checkpoint parameters not in model: {sorted(missing)}")
        for name, shape in shapes.items():
            if tuple(params[name].data.shape) != shape:
                raise ValueError(
                    f"{name}: model shape {params[name].data.shape} != "
                    f"checkpoint shape {shape}"
                )

        state = SAMOTrainingState(model, mask, cfg)
        state.step_count = int(header["step_count"])

        by_name = {e.name: e for e in state.compressed}
        for i, meta in enumerate(header["compressed"]):
            e = by_name[meta["name"]]
            e.theta32_c = z[f"c{i}_theta32"].copy()
            e.opt_state_c = [z[f"c{i}_os{s}"].copy() for s in range(meta["slots"])]
            # Re-materialise dense θ16 from the restored master (phase 3).
            e.param.data[...] = expand(
                e.theta32_c.astype(np.float16), e.ind, e.shape, out_dtype=np.float16
            ).astype(np.float32)

        dense_by_name = {d.name: d for d in state.dense}
        saved_dense = {meta["name"] for meta in header["dense"]}
        extra = set(dense_by_name) - saved_dense
        if extra:
            raise KeyError(f"model has dense parameters missing from checkpoint: {sorted(extra)}")
        for i, meta in enumerate(header["dense"]):
            if meta["name"] not in dense_by_name:
                raise KeyError(f"checkpoint dense parameter not in model: {meta['name']}")
            d = dense_by_name[meta["name"]]
            d.theta32 = z[f"d{i}_theta32"].copy()
            d.opt_state = [z[f"d{i}_os{s}"].copy() for s in range(meta["slots"])]
            d.param.data[...] = d.theta32.astype(np.float16).astype(np.float32)

    state.consistency_check()
    return state


def checkpoint_nbytes(state: SAMOTrainingState) -> int:
    """Bytes a checkpoint of ``state`` stores (uncompressed-by-zip).

    θ32 + optimizer states + shared index for compressed entries, θ32 +
    optimizer states for dense ones. θ16 and gradients are derived /
    transient and cost nothing on disk.
    """
    n = 0
    for e in state.compressed:
        n += e.ind.nbytes + e.theta32_c.nbytes + sum(s.nbytes for s in e.opt_state_c)
    for d in state.dense:
        n += d.theta32.nbytes + sum(s.nbytes for s in d.opt_state)
    return n
