"""Metrics: counters, gauges and histograms in a swappable registry.

A :class:`MetricsRegistry` hands out get-or-create instruments keyed on
``(name, labels)`` — ``registry.counter("planner.cache.hits")``,
``registry.histogram("estimator.evaluate_seconds",
labels={"fidelity": "sim"})`` — and renders them as a flat JSON-ready
snapshot or a ``prometheus``-style text dump. Instruments are
thread-safe (the planner evaluates candidates from a thread pool).

The process-wide default is :data:`NULL_REGISTRY`, whose instruments
are shared no-op singletons: code may call
``OBS.metrics.counter(...).inc()`` unconditionally without paying more
than two cheap calls when observability is off. A real registry is
installed per :class:`~repro.api.Session` (always, so
``Session.metrics()`` works without tracing) or process-wide through
:func:`repro.obs.enable`.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "escape_label_value",
    "render_label_key",
]


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside ``k="v"``; anything else (including
    a scenario name like ``ring"straggler``) passes through. Escaping
    here — where the instrument key is built — keeps the key canonical
    *and* directly emittable, and makes raw-vs-escaped values that
    would collide into distinct instruments.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def render_label_key(name: str, labels: dict | None) -> str:
    """Canonical ``name{k="v",...}`` rendering (sorted keys, escaped values)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{escape_label_value(labels[k])}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def snapshot(self):
        return self.value


class Gauge:
    """Last-set value."""

    kind = "gauge"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, v: float) -> None:
        with self._lock:
            self.value = v

    def snapshot(self):
        return self.value


class Histogram:
    """Observation distribution with exact quantiles.

    Keeps every observation (planner runs observe hundreds of values,
    not millions), so :meth:`percentile` is exact — the p50/p99 latency
    numbers the ROADMAP's planning-as-a-service phase benchmarks.
    """

    kind = "histogram"
    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        with self._lock:
            self.values.append(v)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, p: float) -> float:
        """Exact percentile by nearest-rank (``p`` in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self.values:
                return 0.0
            ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict:
        with self._lock:
            vals = list(self.values)
        if not vals:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": len(vals),
            "sum": sum(vals),
            "min": min(vals),
            "max": max(vals),
            "mean": sum(vals) / len(vals),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create instrument store keyed on ``(name, labels)``."""

    enabled = True

    def __init__(self):
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: dict | None):
        key = render_label_key(name, labels)
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = self._instruments[key] = cls(key)
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric {key!r} already registered as {inst.kind}, "
                    f"not {cls.kind}"
                )
        return inst

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, labels: dict | None = None) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Flat JSON-ready mapping of every instrument, sorted by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in items}

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition of the current state.

        Counters/gauges emit one sample each; histograms emit
        ``_count``/``_sum`` plus quantile samples — enough for a human
        or a scraper, without claiming full exposition-format fidelity.
        """
        lines: list[str] = []
        with self._lock:
            items = sorted(self._instruments.items())
        for name, inst in items:
            if inst.kind == "histogram":
                s = inst.snapshot()
                base, labels = _split_labels(name)
                lines.append(f"{base}_count{labels} {s['count']}")
                lines.append(f"{base}_sum{labels} {_fmt(s['sum'])}")
                for q in ("p50", "p99"):
                    qlabels = _merge_label(labels, "quantile", q[1:])
                    lines.append(f"{base}{qlabels} {_fmt(s[q])}")
            else:
                lines.append(f"{name} {_fmt(inst.snapshot())}")
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)


def _split_labels(key: str) -> tuple[str, str]:
    i = key.find("{")
    return (key, "") if i < 0 else (key[:i], key[i:])


def _merge_label(labels: str, k: str, v: str) -> str:
    extra = f'{k}="{v}"'
    if not labels:
        return f"{{{extra}}}"
    return labels[:-1] + "," + extra + "}"


def _fmt(v) -> str:
    if isinstance(v, float) and v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v) if not isinstance(v, float) else f"{v:.9g}"


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    kind = "null"
    __slots__ = ()
    value = 0
    values: tuple = ()
    count = 0
    total = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def snapshot(self):
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled default: hands out shared no-op instruments."""

    enabled = False

    def counter(self, name: str, labels: dict | None = None):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, labels: dict | None = None):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, labels: dict | None = None):
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {}

    def render_prometheus(self) -> str:
        return ""

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: the process-wide disabled default
NULL_REGISTRY = NullRegistry()
