"""Span tracing: the timeline half of the observability layer.

A :class:`Span` is one named interval on one named *track* — a stage's
forward task, a link occupancy window, an allreduce bucket, a planner
call. Spans live in either of two clock domains:

* ``"virtual"`` — simulated seconds on the event-engine timeline
  (:class:`~repro.cluster.events.EventLoop` time), recorded with
  explicit start/end via :meth:`Tracer.record`;
* ``"wall"`` — real seconds since the tracer's epoch, recorded by the
  :meth:`Tracer.span` context manager around live code (planner
  evaluations, session calls).

The default tracer is :data:`NULL_TRACER` (``enabled = False``), whose
methods are no-ops — instrumented hot paths gate on ``enabled`` so the
disabled overhead is one attribute check. Install a real tracer through
:func:`repro.obs.observed` / :func:`repro.obs.enable`; export collected
spans with :func:`repro.obs.export.write_chrome_trace`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

CLOCKS = ("virtual", "wall")


@dataclass(frozen=True)
class Span:
    """One named interval on one track.

    ``attrs`` is a sorted tuple of ``(key, value)`` pairs rather than a
    dict so spans are hashable and two identical runs produce *equal*
    span sequences (the determinism tests compare them directly).
    """

    name: str
    category: str
    track: str
    start: float
    end: float
    clock: str = "virtual"
    attrs: tuple = ()

    def __post_init__(self):
        if self.clock not in CLOCKS:
            raise ValueError(f"unknown clock {self.clock!r}; choose from {CLOCKS}")
        if self.end < self.start:
            raise ValueError(
                f"span {self.name!r} ends before it starts "
                f"({self.end} < {self.start})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans; thread-safe; deterministic given deterministic input.

    ``group(prefix)`` hands out per-tracer sequence-numbered track
    prefixes (``"pipeline#0"``, ``"pipeline#1"``, ...) so repeated engine
    runs inside one trace — e.g. every data-parallel replica's chain —
    land on distinct tracks instead of overwriting each other's
    timeline.
    """

    enabled = True

    def __init__(self):
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._groups: dict[str, int] = {}
        #: wall-clock epoch: :meth:`span` timestamps are relative to this
        self.epoch = time.perf_counter()

    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        category: str = "",
        track: str = "main",
        clock: str = "virtual",
        **attrs,
    ) -> Span:
        """Record a span with explicit timestamps (the virtual-time path)."""
        span = Span(
            name=name,
            category=category,
            track=track,
            start=start,
            end=end,
            clock=clock,
            attrs=tuple(sorted(attrs.items())),
        )
        with self._lock:
            self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, *, category: str = "", track: str = "session", **attrs):
        """Wall-clock span around a code block (relative to the epoch)."""
        start = time.perf_counter() - self.epoch
        try:
            yield
        finally:
            end = time.perf_counter() - self.epoch
            self.record(
                name, start, end, category=category, track=track, clock="wall", **attrs
            )

    def group(self, prefix: str) -> str:
        """Next sequence-numbered track prefix for ``prefix``."""
        with self._lock:
            n = self._groups.get(prefix, 0)
            self._groups[prefix] = n + 1
        return f"{prefix}#{n}"

    # ------------------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self._groups.clear()

    def __len__(self) -> int:
        return len(self.spans)

    def by_category(self) -> dict[str, int]:
        """Span counts per category (the CLI summary)."""
        out: dict[str, int] = {}
        for s in self.spans:
            out[s.category] = out.get(s.category, 0) + 1
        return dict(sorted(out.items()))

    def tracks(self) -> list[str]:
        """Distinct track names in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.track)
        return list(seen)

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans)} spans, {len(self.tracks())} tracks)"


class _NullSpanContext:
    """Reusable no-op context manager (allocation-free)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CTX = _NullSpanContext()


class NullTracer:
    """The disabled default: every method is a no-op.

    ``enabled = False`` is the one attribute hot paths check; nothing
    else is ever called on the null tracer in a disabled run, so the
    instrumentation cost is ~zero.
    """

    enabled = False
    spans: tuple = ()

    def record(self, name, start, end, **kwargs):
        return None

    def span(self, name, **kwargs):
        return _NULL_CTX

    def group(self, prefix: str) -> str:
        return prefix

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def by_category(self) -> dict:
        return {}

    def tracks(self) -> list:
        return []

    def __repr__(self) -> str:
        return "NullTracer()"


#: the process-wide disabled default
NULL_TRACER = NullTracer()
