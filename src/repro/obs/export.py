"""Exporters: Chrome ``trace_event`` JSON and flat metrics dumps.

:func:`write_chrome_trace` turns collected :class:`~repro.obs.Span`
records into the Chrome trace-event format (the JSON that
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load):

* each span track becomes a named thread (``thread_name`` metadata
  events) so stages, links and allreduce buckets render as separate
  swimlanes;
* virtual-time spans and wall-clock spans land in two separate
  processes (``pid`` 1/2) — the two clock domains share a file but
  never a timeline;
* spans are emitted as ``B``/``E`` begin/end pairs. Within one track
  the emitter lays overlapping spans out into spill lanes (``track``,
  ``track (2)``, ...) so every lane nests properly — a hard format
  requirement ``ph: "X"`` events would sidestep but duration events
  make checkable.

:func:`validate_chrome_trace` is the structural checker the tests and
``benchmarks/check_trace.py`` share: every ``B`` has a matching ``E``,
per-track timestamps are monotone, durations are non-negative.
"""

from __future__ import annotations

import json

from .tracer import Span

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: seconds -> Chrome microseconds
TIME_SCALE = 1e6
#: process ids per clock domain (virtual timeline first)
_CLOCK_PID = {"virtual": 1, "wall": 2}
_PID_NAME = {1: "virtual time (event engine)", 2: "wall clock"}


def _lane_layout(spans: list[Span]) -> list[tuple[int, Span]]:
    """Assign each span of one track to a lane with proper nesting.

    Spans are processed in ``(start, -end)`` order; a span goes to the
    first lane where it either starts after everything open has closed
    or nests inside the innermost open span. Partial overlaps — legal
    for spans, illegal for ``B``/``E`` events — spill to a fresh lane.
    """
    ordered = sorted(spans, key=lambda s: (s.start, -s.end, s.name))
    lanes: list[list[Span]] = []  # per-lane stack of open spans
    out: list[tuple[int, Span]] = []
    for s in ordered:
        placed = False
        for lane_id, stack in enumerate(lanes):
            while stack and stack[-1].end <= s.start:
                stack.pop()
            if not stack or s.end <= stack[-1].end:
                stack.append(s)
                out.append((lane_id, s))
                placed = True
                break
        if not placed:
            lanes.append([s])
            out.append((len(lanes) - 1, s))
    return out


def chrome_trace_events(spans) -> list[dict]:
    """Render spans as a Chrome ``traceEvents`` list (B/E pairs)."""
    by_track: dict[tuple[int, str], list[Span]] = {}
    for s in spans:
        pid = _CLOCK_PID[s.clock]
        by_track.setdefault((pid, s.track), []).append(s)

    events: list[dict] = []
    used_pids = sorted({pid for pid, _ in by_track})
    for pid in used_pids:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": _PID_NAME[pid]},
        })

    # stable tids: tracks sorted by name within each process, spill
    # lanes directly after their parent track
    tid = 0
    for (pid, track) in sorted(by_track, key=lambda k: (k[0], k[1])):
        layout = _lane_layout(by_track[(pid, track)])
        n_lanes = max(lane for lane, _ in layout) + 1
        lane_tids = []
        for lane in range(n_lanes):
            tid += 1
            lane_tids.append(tid)
            lane_name = track if lane == 0 else f"{track} ({lane + 1})"
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": lane_name},
            })
            events.append({
                "ph": "M", "name": "thread_sort_index", "pid": pid, "tid": tid,
                "args": {"sort_index": tid},
            })
        # emit B/E per lane via a nesting stack
        per_lane: dict[int, list[Span]] = {}
        for lane, s in layout:
            per_lane.setdefault(lane, []).append(s)
        for lane, lane_spans in sorted(per_lane.items()):
            stack: list[Span] = []
            for s in lane_spans:  # already (start, -end) ordered
                while stack and stack[-1].end <= s.start:
                    closed = stack.pop()
                    events.append(_event("E", closed, pid, lane_tids[lane]))
                events.append(_event("B", s, pid, lane_tids[lane]))
                stack.append(s)
            while stack:
                closed = stack.pop()
                events.append(_event("E", closed, pid, lane_tids[lane]))
    return events


def _event(ph: str, span: Span, pid: int, tid: int) -> dict:
    ev = {
        "ph": ph,
        "name": span.name,
        "cat": span.category or "span",
        "pid": pid,
        "tid": tid,
        "ts": round((span.start if ph == "B" else span.end) * TIME_SCALE, 3),
    }
    if ph == "B" and span.attrs:
        ev["args"] = dict(span.attrs)
    return ev


def write_chrome_trace(path, spans) -> dict:
    """Write a Chrome/Perfetto-loadable trace file; returns a summary."""
    events = chrome_trace_events(spans)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    with open(path, "w") as fh:
        json.dump(doc, fh)
    tracks = sorted({
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    })
    return {
        "path": str(path),
        "events": sum(1 for e in events if e["ph"] in ("B", "E")),
        "tracks": tracks,
    }


def validate_chrome_trace(doc) -> list[str]:
    """Structural errors in a Chrome trace document (empty list = valid).

    Checks the properties the exporter guarantees: every ``B`` closes
    with an ``E`` on the same ``(pid, tid)``, per-track timestamps are
    monotone non-decreasing in emission order, and no event carries a
    negative timestamp. Accepts the dict form (``{"traceEvents": [...]}``)
    or a bare event list.
    """
    events = doc.get("traceEvents") if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    errors: list[str] = []
    stacks: dict[tuple, list[str]] = {}
    last_ts: dict[tuple, float] = {}
    n_be = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph not in ("B", "E"):
            errors.append(f"event {i}: unsupported phase {ph!r}")
            continue
        n_be += 1
        key = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {i}: bad timestamp {ts!r}")
            continue
        if key in last_ts and ts < last_ts[key]:
            errors.append(
                f"event {i}: track {key} timestamp regressed "
                f"({ts} < {last_ts[key]})"
            )
        last_ts[key] = ts
        stack = stacks.setdefault(key, [])
        if ph == "B":
            stack.append(ev.get("name", ""))
        else:
            if not stack:
                errors.append(f"event {i}: E with no open B on track {key}")
            elif stack[-1] != ev.get("name", ""):
                errors.append(
                    f"event {i}: E for {ev.get('name')!r} closes "
                    f"{stack[-1]!r} on track {key}"
                )
                stack.pop()
            else:
                stack.pop()
    for key, stack in stacks.items():
        for name in stack:
            errors.append(f"track {key}: B {name!r} never closed")
    if n_be == 0:
        errors.append("trace contains no B/E events")
    return errors
