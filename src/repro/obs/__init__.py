"""`repro.obs` — span tracing, metrics, and trace export.

The runtime state is one process-wide :data:`OBS` holder with two
swappable halves:

* ``OBS.tracer`` — a :class:`Tracer` collecting timeline spans, or the
  no-op :data:`~repro.obs.tracer.NULL_TRACER` (the default);
* ``OBS.metrics`` — a :class:`MetricsRegistry`, or the no-op
  :data:`~repro.obs.metrics.NULL_REGISTRY` (the default).

Hot paths gate span emission on ``OBS.enabled`` — a single attribute
read when disabled, so every pre-existing golden number stays
byte-identical (``benchmarks/bench_obs_overhead.py`` pins the cost).
Metrics calls go through the null registry's shared no-op instruments
and need no gating.

Three ways to turn it on:

* :func:`enable` / :func:`disable` — process-wide, for scripts;
* :func:`observed` — a context manager that installs a tracer and/or
  registry and restores the previous state on exit (nestable; this is
  what :class:`~repro.api.Session` uses around each operation);
* ``Session(trace_to="out.json")`` / ``repro trace --chrome out.json``
  — the high-level wiring.
"""

from __future__ import annotations

from contextlib import contextmanager

from .export import chrome_trace_events, validate_chrome_trace, write_chrome_trace
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    render_label_key,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "OBS",
    "Observability",
    "enable",
    "disable",
    "observed",
    # tracer
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "render_label_key",
    # export
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
]


class Observability:
    """Holder for the installed tracer + metrics registry.

    ``enabled`` mirrors ``tracer.enabled`` and is the one flag the
    virtual-time hot paths (event loop, pipeline simulator) check before
    doing any span bookkeeping. A metrics-only install (what every
    ``Session`` does) keeps ``enabled`` False: counters are cheap enough
    to leave ungated, span emission is not.
    """

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(self):
        self.tracer = NULL_TRACER
        self.metrics = NULL_REGISTRY
        self.enabled = False

    def install(self, tracer=None, metrics=None) -> tuple:
        """Swap in new halves; returns the previous ``(tracer, metrics)``."""
        prev = (self.tracer, self.metrics)
        if tracer is not None:
            self.tracer = tracer
            self.enabled = bool(getattr(tracer, "enabled", False))
        if metrics is not None:
            self.metrics = metrics
        return prev

    def restore(self, prev: tuple) -> None:
        tracer, metrics = prev
        self.tracer = tracer
        self.metrics = metrics
        self.enabled = bool(getattr(tracer, "enabled", False))

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Observability({state}, {self.tracer!r}, {len(self.metrics)} metrics)"


#: the process-wide observability state (swappable, defaults to no-ops)
OBS = Observability()


def enable(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
    """Install a real tracer + registry process-wide; returns ``(tracer, metrics)``."""
    tracer = tracer if tracer is not None else Tracer()
    metrics = metrics if metrics is not None else MetricsRegistry()
    OBS.install(tracer, metrics)
    return tracer, metrics


def disable() -> None:
    """Back to the no-op defaults."""
    OBS.install(NULL_TRACER, NULL_REGISTRY)


@contextmanager
def observed(tracer=None, metrics=None):
    """Install tracer/metrics for the duration of a block, then restore.

    Nestable — ``Session.robust_plan`` wraps per-scenario ``plan`` calls
    that each install the same session registry; the inner exit restores
    the outer state, not the global default. Yields the :data:`OBS`
    holder so callers can read ``OBS.tracer`` / ``OBS.metrics`` inside.
    """
    prev = OBS.install(tracer, metrics)
    try:
        yield OBS
    finally:
        OBS.restore(prev)
