"""Framework batch-time simulators: AxoNN and its variants.

:func:`simulate_batch` is the single engine; the ``framework`` argument
selects storage mode, compute kernel class, schedule penalties, and
communication payloads:

* ``axonn``        — dense hybrid data + inter-layer parallelism with
  asynchronous message-driven pipelining (Singh & Bhatele, IPDPS'22);
* ``axonn+samo``   — this paper: SAMO storage lets the partitioner pick a
  smaller ``G_inter``; gradients all-reduce compressed; the backward pays
  the gradient-compression overhead;
* ``deepspeed-3d`` — dense baseline with ZeRO-1 optimizer sharding and a
  synchronous pipeline (penalised p2p/bubble, per the paper's observed
  gap);
* ``sputnik``      — Gale et al.'s sparse kernels integrated into AxoNN:
  sparse storage (small ``G_inter``) but slow sparse compute.

The returned :class:`BatchBreakdown` carries the Figure 8 phases.
"""

from __future__ import annotations

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..cluster.device import ComputeKind, DeviceModel
from ..cluster.p2p import p2p_message_time, pipeline_message_bytes
from ..models.spec import ModelSpec
from .data_parallel import collective_time
from .partitioner import StorageMode, choose_g_inter, memory_per_gpu
from .perf_model import (
    BatchBreakdown,
    ParallelConfig,
    bubble_time,
    microbatches_per_gpu,
    transmission_time,
)
from .scenarios import (
    overlap_exposed_collective,
    simulate_hetero_pipeline,
    stage_payload_fractions,
)

__all__ = ["FRAMEWORKS", "simulate_batch", "strong_scaling"]

FRAMEWORKS = ("axonn", "axonn+samo", "deepspeed-3d", "sputnik")


def _framework_traits(framework: str) -> dict:
    # async_pipeline: whether the framework's message-driven asynchronous
    # schedule can hide bucketed data-parallel allreduces behind the drain
    # (overlap=True is a no-op for synchronous pipelines)
    if framework == "axonn":
        return dict(mode=StorageMode.DENSE, sparse_grads=False, compute=None,
                    p2p_penalty=1.0, bubble_penalty=1.0, compress_overhead=False,
                    async_pipeline=True)
    if framework == "axonn+samo":
        return dict(mode=StorageMode.SAMO, sparse_grads=True, compute=None,
                    p2p_penalty=1.0, bubble_penalty=1.0, compress_overhead=True,
                    async_pipeline=True)
    if framework == "deepspeed-3d":
        # ZeRO-1 shards optimizer state, but DeepSpeed-3D's model-parallel
        # footprint (Megatron intra-layer within a node + pipeline) ends up
        # needing the same model-parallel degree as AxoNN — so it
        # partitions like the dense mode and differs in schedule quality.
        return dict(mode=StorageMode.DENSE, sparse_grads=False, compute=None,
                    p2p_penalty=None, bubble_penalty=None, compress_overhead=False,
                    async_pipeline=False)
    if framework == "sputnik":
        return dict(mode=StorageMode.SPARSE_KERNEL, sparse_grads=True,
                    compute=ComputeKind.SPARSE_SPUTNIK,
                    p2p_penalty=1.0, bubble_penalty=1.0, compress_overhead=False,
                    async_pipeline=True)
    raise KeyError(f"unknown framework {framework!r}; choose from {FRAMEWORKS}")


def simulate_batch(
    spec: ModelSpec,
    n_gpus: int,
    framework: str = "axonn",
    sparsity: float = 0.9,
    mbs: int = 1,
    cal: SummitCalibration = SUMMIT,
    pipeline_fidelity: str | None = None,
    scenario=None,
    partition_mode: str = "flops",
    overlap: bool = False,
    placement: str = "block",
) -> BatchBreakdown:
    """Predict the batch-time breakdown of one training iteration.

    .. deprecated::
        Thin wrapper kept for the historical signature; prefer the
        :class:`repro.api.Session` facade —
        ``Session(Machine(cal=cal)).breakdown(Job(...), scenario=...)``.

    CNNs (``spec.family == 'cnn'``) run pure data parallel (they fit on one
    GPU, as in the paper's Figure 5); GPT models run the hybrid with
    ``G_inter`` chosen by the memory model.

    ``pipeline_fidelity='sim'`` replaces the closed-form Eq. 7/9 pipeline
    terms with the event-driven heterogeneous engine: per-stage times
    from the partitioner (``partition_mode="time"`` balances
    time-under-scenario instead of raw flops), per-link times from the
    topology for every data-parallel replica's chain (the batch pays the
    slowest replica), and an optional
    :class:`~repro.parallel.scenarios.ClusterScenario` (name or
    instance) degrading stages, links, or the data-parallel allreduce
    ring. Leaving ``pipeline_fidelity`` unset lets a scenario imply
    ``'sim'``; explicitly passing ``'analytic'`` with a scenario raises
    (the shared :func:`~repro.parallel.scenarios.resolve_fidelity`
    contract).

    ``overlap=True`` hides the bucketed data-parallel all-reduce behind
    the pipeline drain on the event timeline
    (:func:`~repro.parallel.scenarios.overlap_exposed_collective`);
    ``placement="best"`` prices the batch at the optimized replica
    placement instead of the block layout. Both need the event engine
    (they imply ``'sim'`` when the fidelity is unset) and both default
    to off, leaving the additive block-layout numbers untouched.
    """
    _framework_traits(framework)  # legacy KeyError for unknown frameworks
    from ..api.job import Job  # deferred: the api package builds on this module
    from ..api.machine import Machine
    from ..api.session import Session

    job = Job(
        model=spec.name,
        n_gpus=n_gpus,
        framework=framework,
        sparsity=sparsity,
        mbs=mbs,
        partition_mode=partition_mode,
        fidelity=pipeline_fidelity,
        overlap=overlap,
        placement=placement,
    )
    return Session(Machine(cal=cal)).breakdown(job, scenario=scenario, spec=spec)


def _gpt_decomposition(
    spec: ModelSpec,
    traits: dict,
    n_gpus: int,
    sparsity: float,
    mbs: int,
    cal: SummitCalibration,
) -> tuple[int, int, int, float, float]:
    """Hybrid decomposition + per-stage times of a GPT workload.

    Returns ``(g_inter, g_data, m, t_f, t_b)``: ``G_inter`` from the
    memory model, the per-microbatch per-stage forward time from the
    device model, and the checkpointed (recompute) backward at
    ``3 t_f``. Shared by the batch engine and
    :meth:`repro.api.Session.trace` so the two can never drift.
    """
    device = DeviceModel(cal)
    compute_kind = traits["compute"] or ComputeKind.DENSE_GEMM
    g_inter = choose_g_inter(spec, n_gpus, traits["mode"], sparsity, mbs, cal)
    g_data = n_gpus // g_inter
    m = microbatches_per_gpu(spec.batch_size, g_data, mbs)
    t_f = device.time(spec.fwd_flops_per_sample() * mbs, compute_kind) / g_inter
    return g_inter, g_data, m, t_f, 3.0 * t_f


def _breakdown_engine(
    spec: ModelSpec,
    *,
    n_gpus: int,
    framework: str,
    sparsity: float,
    mbs: int,
    cal: SummitCalibration,
    fidelity: str,
    scenario,
    partition_mode: str,
    overlap: bool = False,
    placement: str = "block",
) -> BatchBreakdown:
    """The batch-time engine behind :meth:`repro.api.Session.breakdown`.

    Takes an already-resolved (fidelity, scenario) pair — validation
    lives in :func:`~repro.parallel.scenarios.resolve_fidelity` — and
    computes the Figure-8 phases exactly as the historical
    ``simulate_batch`` did. With ``overlap=False`` and
    ``placement="block"`` (the defaults) every number is byte-identical
    to the additive engine; ``overlap=True`` replaces the collective
    phase with the event-timeline exposure and records the additive and
    hidden amounts in the notes.
    """
    pipeline_fidelity = fidelity
    if pipeline_fidelity not in ("analytic", "sim"):
        raise ValueError(
            f"unknown pipeline_fidelity {pipeline_fidelity!r}; "
            "choose 'analytic' or 'sim'"
        )
    if pipeline_fidelity == "analytic" and (overlap or placement != "block"):
        raise ValueError(
            "overlap and placement optimization need the event-driven "
            "engine; use fidelity='sim'"
        )
    if pipeline_fidelity == "analytic" and partition_mode != "flops":
        raise ValueError(
            "time-balanced partitioning needs the event-driven engine; "
            "use fidelity='sim'"
        )
    traits = _framework_traits(framework)
    device = DeviceModel(cal)
    is_cnn = spec.family == "cnn"
    if is_cnn and framework == "sputnik":
        raise ValueError("Sputnik does not support sparse convolutions (paper Sec. V-B)")

    # ----- decomposition ---------------------------------------------------
    # fwd + bwd(2x) + checkpoint recompute (1x) = 4x fwd for transformers;
    # CNNs in the paper do not checkpoint (they fit easily): 3x.
    bwd_factor = 2.0 if is_cnn else 3.0
    if is_cnn:
        # pure DP: every GPU computes B/G samples, no microbatch pipeline
        if spec.batch_size % n_gpus:
            raise ValueError(f"batch {spec.batch_size} not divisible by {n_gpus} GPUs")
        g_inter, g_data, m = 1, n_gpus, 1
        samples_per_gpu = spec.batch_size // n_gpus
        t_f = t_b = 0.0
    else:
        g_inter, g_data, m, t_f, t_b = _gpt_decomposition(
            spec, traits, n_gpus, sparsity, mbs, cal
        )
        samples_per_gpu = m * mbs

    config = ParallelConfig(n_gpus=n_gpus, g_inter=g_inter, g_data=g_data, mbs=mbs, microbatches=m)

    # ----- compute ---------------------------------------------------------
    fwd_flops_sample = spec.fwd_flops_per_sample()
    if is_cnn:
        hint = spec.efficiency_hint
        eff_max = hint.get("eff_max", cal.conv_efficiency)
        half = hint.get("half_batch", cal.conv_half_batch)
        eff = eff_max * samples_per_gpu / (samples_per_gpu + half)
        compute = (1.0 + bwd_factor) * fwd_flops_sample * samples_per_gpu / (
            device.peak_flops * eff
        )
    else:
        compute = m * (t_f + t_b)
    backward_compute = compute * bwd_factor / (1.0 + bwd_factor)

    overhead = 0.0
    if traits["compress_overhead"]:
        # SAMO compresses gradients layer-by-layer in every backward pass.
        # The cost is a gather over the stage's parameters per microbatch
        # (not a flops-proportional term); the per-parameter constant is
        # calibrated against the paper's 8-12%-of-batch observation.
        stage_params = spec.param_count / g_inter
        overhead = cal.samo_compress_cost_per_param * stage_params * m
    compute_total = compute + overhead

    # ----- point-to-point + bubble -----------------------------------------
    trace = None
    if is_cnn or (g_inter <= 1 and scenario is None and not overlap):
        # (a scenario still hits single-stage configs: data-parallel sync
        # waits for the straggler replica — and overlap needs the schedule
        # trace even for one stage; both are priced by the sim branch)
        p2p = 0.0
        bubble = 0.0
    elif pipeline_fidelity == "sim":
        # Event-driven heterogeneous engine. Everything the schedule
        # exposes beyond the ideal uniform compute — message waits,
        # straggler overhang, warmup/drain — lands in the bubble phase
        # (p2p is folded in), so compute + bubble = makespan.
        trace = simulate_hetero_pipeline(
            spec,
            g_inter=g_inter,
            m=m,
            mbs=mbs,
            t_f_model=t_f * g_inter,
            t_b_model=t_b * g_inter,
            n_gpus=n_gpus,
            cal=cal,
            scenario=scenario,
            blocking_sends=framework == "deepspeed-3d",
            partition_mode=partition_mode,
            placement=placement,
        )
        p2p = 0.0
        bubble = max(trace.makespan - m * (t_f + t_b), 0.0)
    else:
        boundary_elems = max(
            spec.layers[i].activation_out_elems for i in range(spec.num_layers - 1)
        )
        msg_bytes = pipeline_message_bytes(mbs, boundary_elems)
        t_msg = p2p_message_time(msg_bytes, cal=cal)
        p2p = transmission_time(spec.batch_size, g_data, mbs, t_msg, g_inter)
        bubble = bubble_time(g_inter, t_f * g_inter, t_b * g_inter)
        p2p_penalty = (
            traits["p2p_penalty"] if traits["p2p_penalty"] is not None else cal.deepspeed_p2p_penalty
        )
        bubble_penalty = (
            traits["bubble_penalty"] if traits["bubble_penalty"] is not None else cal.deepspeed_bubble_penalty
        )
        p2p *= p2p_penalty
        bubble *= bubble_penalty

    # ----- collective -------------------------------------------------------
    # pure-DP CNN runs get the DDP-style fractional overlap; hybrid runs
    # get the event-timeline overlap below (when overlap=True)
    dp_overlap = cal.dp_overlap_fraction if is_cnn else 0.0
    coll = collective_time(
        spec,
        g_inter,
        g_data,
        sparse=traits["sparse_grads"],
        sparsity=sparsity,
        overlap_with_backward=dp_overlap,
        backward_compute_time=backward_compute,
        cal=cal,
        scenario=scenario,
    )

    notes = {
        "t_f": t_f,
        "t_b": t_b,
        "overhead": overhead,
        "mode": traits["mode"],
        "pipeline_fidelity": pipeline_fidelity,
    }
    if overlap and trace is not None and traits["async_pipeline"]:
        # Overlap-aware fidelity: the bucketed data-parallel all-reduce
        # contends with the drain on the event timeline instead of being
        # charged additively after it; each stage rings its actual
        # parameter share of the payload, not the uniform 1/G shard.
        report = overlap_exposed_collective(
            trace, coll,
            stage_fractions=stage_payload_fractions(
                spec, g_inter, partition_mode, scenario
            ),
        )
        notes["overlap"] = True
        notes["collective_additive"] = report.additive
        notes["collective_hidden"] = report.hidden
        coll = report.exposed
    elif overlap:
        # synchronous pipelines (deepspeed-3d) and CNNs keep the additive
        # path: there is no asynchronous drain to hide behind
        notes["overlap"] = False

    other = cal.other_fraction * compute
    mem = memory_per_gpu(spec, g_inter, traits["mode"], sparsity, mbs, g_data=g_data, cal=cal)

    return BatchBreakdown(
        framework=framework,
        model=spec.name,
        config=config,
        compute=compute_total,
        p2p=p2p,
        bubble=bubble,
        collective=coll,
        other=other,
        memory_per_gpu=mem,
        notes=notes,
    )


def strong_scaling(
    spec: ModelSpec,
    gpu_counts: list[int],
    frameworks: tuple[str, ...] = FRAMEWORKS,
    sparsity: float = 0.9,
    mbs: int = 1,
    cal: SummitCalibration = SUMMIT,
    pipeline_fidelity: str | None = None,
    scenario=None,
    partition_mode: str = "flops",
    overlap: bool = False,
    placement: str = "block",
) -> dict[str, list[BatchBreakdown]]:
    """Run :func:`simulate_batch` over a GPU-count sweep per framework."""
    out: dict[str, list[BatchBreakdown]] = {}
    for fw in frameworks:
        if spec.family == "cnn" and fw == "sputnik":
            continue
        out[fw] = [
            simulate_batch(
                spec, g, fw, sparsity=sparsity, mbs=mbs, cal=cal,
                pipeline_fidelity=pipeline_fidelity, scenario=scenario,
                partition_mode=partition_mode, overlap=overlap,
                placement=placement,
            )
            for g in gpu_counts
        ]
    return out
