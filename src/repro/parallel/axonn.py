"""Framework batch-time simulators: AxoNN and its variants.

:func:`simulate_batch` is the single engine; the ``framework`` argument
selects storage mode, compute kernel class, schedule penalties, and
communication payloads:

* ``axonn``        — dense hybrid data + inter-layer parallelism with
  asynchronous message-driven pipelining (Singh & Bhatele, IPDPS'22);
* ``axonn+samo``   — this paper: SAMO storage lets the partitioner pick a
  smaller ``G_inter``; gradients all-reduce compressed; the backward pays
  the gradient-compression overhead;
* ``deepspeed-3d`` — dense baseline with ZeRO-1 optimizer sharding and a
  synchronous pipeline (penalised p2p/bubble, per the paper's observed
  gap);
* ``sputnik``      — Gale et al.'s sparse kernels integrated into AxoNN:
  sparse storage (small ``G_inter``) but slow sparse compute.

The returned :class:`BatchBreakdown` carries the Figure 8 phases.
"""

from __future__ import annotations

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..cluster.device import ComputeKind, DeviceModel
from ..cluster.p2p import p2p_message_time, pipeline_message_bytes
from ..models.spec import ModelSpec
from .data_parallel import collective_time
from .partitioner import StorageMode, choose_g_inter, memory_per_gpu
from .perf_model import (
    BatchBreakdown,
    ParallelConfig,
    bubble_time,
    microbatches_per_gpu,
    transmission_time,
)
from .scenarios import get_scenario, simulate_hetero_pipeline

__all__ = ["FRAMEWORKS", "simulate_batch", "strong_scaling"]

FRAMEWORKS = ("axonn", "axonn+samo", "deepspeed-3d", "sputnik")


def _framework_traits(framework: str) -> dict:
    if framework == "axonn":
        return dict(mode=StorageMode.DENSE, sparse_grads=False, compute=None,
                    p2p_penalty=1.0, bubble_penalty=1.0, compress_overhead=False)
    if framework == "axonn+samo":
        return dict(mode=StorageMode.SAMO, sparse_grads=True, compute=None,
                    p2p_penalty=1.0, bubble_penalty=1.0, compress_overhead=True)
    if framework == "deepspeed-3d":
        # ZeRO-1 shards optimizer state, but DeepSpeed-3D's model-parallel
        # footprint (Megatron intra-layer within a node + pipeline) ends up
        # needing the same model-parallel degree as AxoNN — so it
        # partitions like the dense mode and differs in schedule quality.
        return dict(mode=StorageMode.DENSE, sparse_grads=False, compute=None,
                    p2p_penalty=None, bubble_penalty=None, compress_overhead=False)
    if framework == "sputnik":
        return dict(mode=StorageMode.SPARSE_KERNEL, sparse_grads=True,
                    compute=ComputeKind.SPARSE_SPUTNIK,
                    p2p_penalty=1.0, bubble_penalty=1.0, compress_overhead=False)
    raise KeyError(f"unknown framework {framework!r}; choose from {FRAMEWORKS}")


def simulate_batch(
    spec: ModelSpec,
    n_gpus: int,
    framework: str = "axonn",
    sparsity: float = 0.9,
    mbs: int = 1,
    cal: SummitCalibration = SUMMIT,
    pipeline_fidelity: str = "analytic",
    scenario=None,
    partition_mode: str = "flops",
) -> BatchBreakdown:
    """Predict the batch-time breakdown of one training iteration.

    CNNs (``spec.family == 'cnn'``) run pure data parallel (they fit on one
    GPU, as in the paper's Figure 5); GPT models run the hybrid with
    ``G_inter`` chosen by the memory model.

    ``pipeline_fidelity='sim'`` replaces the closed-form Eq. 7/9 pipeline
    terms with the event-driven heterogeneous engine: per-stage times
    from the partitioner (``partition_mode="time"`` balances
    time-under-scenario instead of raw flops), per-link times from the
    topology for every data-parallel replica's chain (the batch pays the
    slowest replica), and an optional
    :class:`~repro.parallel.scenarios.ClusterScenario` (name or
    instance — passing one implies ``'sim'``) degrading stages, links,
    or the data-parallel allreduce ring.
    """
    scenario = get_scenario(scenario)
    if scenario is not None:
        pipeline_fidelity = "sim"
    if pipeline_fidelity not in ("analytic", "sim"):
        raise ValueError(
            f"unknown pipeline_fidelity {pipeline_fidelity!r}; "
            "choose 'analytic' or 'sim'"
        )
    traits = _framework_traits(framework)
    device = DeviceModel(cal)
    is_cnn = spec.family == "cnn"
    compute_kind = traits["compute"] or (ComputeKind.CONV if is_cnn else ComputeKind.DENSE_GEMM)
    if is_cnn and framework == "sputnik":
        raise ValueError("Sputnik does not support sparse convolutions (paper Sec. V-B)")

    # ----- decomposition ---------------------------------------------------
    if is_cnn:
        g_inter = 1
    else:
        g_inter = choose_g_inter(spec, n_gpus, traits["mode"], sparsity, mbs, cal)
    g_data = n_gpus // g_inter
    if is_cnn:
        # pure DP: every GPU computes B/G samples, no microbatch pipeline
        if spec.batch_size % n_gpus:
            raise ValueError(f"batch {spec.batch_size} not divisible by {n_gpus} GPUs")
        m = 1
        samples_per_gpu = spec.batch_size // n_gpus
    else:
        m = microbatches_per_gpu(spec.batch_size, g_data, mbs)
        samples_per_gpu = m * mbs

    config = ParallelConfig(n_gpus=n_gpus, g_inter=g_inter, g_data=g_data, mbs=mbs, microbatches=m)

    # ----- compute ---------------------------------------------------------
    fwd_flops_sample = spec.fwd_flops_per_sample()
    # fwd + bwd(2x) + checkpoint recompute (1x) = 4x fwd for transformers;
    # CNNs in the paper do not checkpoint (they fit easily): 3x.
    recompute = not is_cnn
    bwd_factor = 3.0 if recompute else 2.0
    if is_cnn:
        hint = spec.efficiency_hint
        eff_max = hint.get("eff_max", cal.conv_efficiency)
        half = hint.get("half_batch", cal.conv_half_batch)
        eff = eff_max * samples_per_gpu / (samples_per_gpu + half)
        compute = (1.0 + bwd_factor) * fwd_flops_sample * samples_per_gpu / (
            device.peak_flops * eff
        )
        t_f = t_b = 0.0
    else:
        t_f = device.time(fwd_flops_sample * mbs, compute_kind) / g_inter  # per mb per stage
        t_b = bwd_factor * t_f
        compute = m * (t_f + t_b)
    backward_compute = compute * bwd_factor / (1.0 + bwd_factor)

    overhead = 0.0
    if traits["compress_overhead"]:
        # SAMO compresses gradients layer-by-layer in every backward pass.
        # The cost is a gather over the stage's parameters per microbatch
        # (not a flops-proportional term); the per-parameter constant is
        # calibrated against the paper's 8-12%-of-batch observation.
        stage_params = spec.param_count / g_inter
        overhead = cal.samo_compress_cost_per_param * stage_params * m
    compute_total = compute + overhead

    # ----- point-to-point + bubble -----------------------------------------
    if g_inter <= 1 and scenario is None:
        # (a scenario still hits single-stage configs: data-parallel sync
        # waits for the straggler replica, priced by the sim branch below)
        p2p = 0.0
        bubble = 0.0
    elif pipeline_fidelity == "sim":
        # Event-driven heterogeneous engine. Everything the schedule
        # exposes beyond the ideal uniform compute — message waits,
        # straggler overhang, warmup/drain — lands in the bubble phase
        # (p2p is folded in), so compute + bubble = makespan.
        trace = simulate_hetero_pipeline(
            spec,
            g_inter=g_inter,
            m=m,
            mbs=mbs,
            t_f_model=t_f * g_inter,
            t_b_model=t_b * g_inter,
            n_gpus=n_gpus,
            cal=cal,
            scenario=scenario,
            blocking_sends=framework == "deepspeed-3d",
            partition_mode=partition_mode,
        )
        p2p = 0.0
        bubble = max(trace.makespan - m * (t_f + t_b), 0.0)
    else:
        boundary_elems = max(
            spec.layers[i].activation_out_elems for i in range(spec.num_layers - 1)
        )
        msg_bytes = pipeline_message_bytes(mbs, boundary_elems)
        t_msg = p2p_message_time(msg_bytes, cal=cal)
        p2p = transmission_time(spec.batch_size, g_data, mbs, t_msg, g_inter)
        bubble = bubble_time(g_inter, t_f * g_inter, t_b * g_inter)
        p2p_penalty = (
            traits["p2p_penalty"] if traits["p2p_penalty"] is not None else cal.deepspeed_p2p_penalty
        )
        bubble_penalty = (
            traits["bubble_penalty"] if traits["bubble_penalty"] is not None else cal.deepspeed_bubble_penalty
        )
        p2p *= p2p_penalty
        bubble *= bubble_penalty

    # ----- collective -------------------------------------------------------
    overlap = cal.dp_overlap_fraction if is_cnn else 0.0
    coll = collective_time(
        spec,
        g_inter,
        g_data,
        sparse=traits["sparse_grads"],
        sparsity=sparsity,
        overlap_with_backward=overlap,
        backward_compute_time=backward_compute,
        cal=cal,
        scenario=scenario,
    )

    other = cal.other_fraction * compute
    mem = memory_per_gpu(spec, g_inter, traits["mode"], sparsity, mbs, g_data=g_data, cal=cal)

    return BatchBreakdown(
        framework=framework,
        model=spec.name,
        config=config,
        compute=compute_total,
        p2p=p2p,
        bubble=bubble,
        collective=coll,
        other=other,
        memory_per_gpu=mem,
        notes={
            "t_f": t_f,
            "t_b": t_b,
            "overhead": overhead,
            "mode": traits["mode"],
            "pipeline_fidelity": pipeline_fidelity,
        },
    )


def strong_scaling(
    spec: ModelSpec,
    gpu_counts: list[int],
    frameworks: tuple[str, ...] = FRAMEWORKS,
    sparsity: float = 0.9,
    mbs: int = 1,
    cal: SummitCalibration = SUMMIT,
    pipeline_fidelity: str = "analytic",
    scenario=None,
    partition_mode: str = "flops",
) -> dict[str, list[BatchBreakdown]]:
    """Run :func:`simulate_batch` over a GPU-count sweep per framework."""
    out: dict[str, list[BatchBreakdown]] = {}
    for fw in frameworks:
        if spec.family == "cnn" and fw == "sputnik":
            continue
        out[fw] = [
            simulate_batch(
                spec, g, fw, sparsity=sparsity, mbs=mbs, cal=cal,
                pipeline_fidelity=pipeline_fidelity, scenario=scenario,
                partition_mode=partition_mode,
            )
            for g in gpu_counts
        ]
    return out
