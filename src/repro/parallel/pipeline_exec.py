"""Functional inter-layer (pipeline) parallel training over thread ranks.

The performance side of AxoNN's pipeline lives in
:mod:`repro.parallel.pipeline` (event simulation) and
:mod:`repro.parallel.axonn` (batch-time model). This module *executes* the
algorithm: each rank owns a contiguous stage of layers; activations flow
downstream with ``send``/``recv`` during the forward pass and activation
gradients flow upstream during the backward pass, microbatch by
microbatch, exactly as in the paper's Figure 3. Combined with
:class:`repro.comm.GridLayout` and the data-parallel sparse all-reduce it
forms a complete executable AxoNN+SAMO.

The stage boundary uses the autograd engine's ``backward(grad=...)``
entry point: the upstream gradient received from the next stage seeds the
local backward pass.
"""

from __future__ import annotations

import numpy as np

from ..comm.backend import Communicator
from ..core.config import SAMOConfig
from ..core.samo_optimizer import SAMOOptimizer
from ..pruning.masks import MaskSet
from ..tensor.module import Module
from ..tensor.tensor import Tensor
from ..train.mixed_precision import DenseMixedPrecisionState

__all__ = ["PipelineStageTrainer", "StageModule", "partition_module_list"]

TAG_ACT = 11
TAG_GRAD = 13


def partition_module_list(blocks: list[Module], n_stages: int) -> list[list[Module]]:
    """Split an ordered block list into ``n_stages`` contiguous stages of
    near-equal length (the runnable analogue of the flops partitioner)."""
    if n_stages < 1 or n_stages > len(blocks):
        raise ValueError(f"n_stages={n_stages} out of range for {len(blocks)} blocks")
    bounds = [round(i * len(blocks) / n_stages) for i in range(n_stages + 1)]
    return [blocks[bounds[i] : bounds[i + 1]] for i in range(n_stages)]


class StageModule(Module):
    """A pipeline stage: an ordered chain of blocks owned by one rank.

    Parameter names are ``b{i}.<name>``; compute pruning masks against an
    instance of this class so index names line up with the trainer's.

    ``checkpoint_segments > 0`` runs the chain through
    :func:`repro.tensor.checkpoint.checkpoint_sequential` — AxoNN trains
    with activation checkpointing on (paper Section II-E), and this is
    the executable composition of the two memory levers: SAMO compresses
    the model state while checkpointing bounds the activations each
    in-flight microbatch pins.
    """

    def __init__(self, blocks: list[Module], checkpoint_segments: int = 0):
        super().__init__()
        self._chain = []
        for i, b in enumerate(blocks):
            setattr(self, f"b{i}", b)
            self._chain.append(b)
        if checkpoint_segments < 0 or checkpoint_segments > max(len(blocks), 1):
            raise ValueError(
                f"checkpoint_segments={checkpoint_segments} out of range "
                f"[0, {len(blocks)}]"
            )
        self.checkpoint_segments = checkpoint_segments

    def forward(self, x: Tensor) -> Tensor:
        if self.checkpoint_segments:
            from ..tensor.checkpoint import checkpoint_sequential

            return checkpoint_sequential(self._chain, x, self.checkpoint_segments)
        for b in self._chain:
            x = b(x)
        return x


class PipelineStageTrainer:
    """One rank of an inter-layer parallel training run.

    Parameters
    ----------
    comm:
        Communicator over the pipeline group. Stage index == ``comm.rank``
        (use a dedicated sub-world per pipeline).
    blocks:
        The contiguous blocks this stage owns.
    head / loss_head:
        Only consulted on the first/last stage: ``head(batch_input)``
        produces the stage-0 input tensor (e.g. embedding lookup);
        ``loss_head(stage_output, targets)`` produces the scalar loss.
        Both may be ``None`` when the stage's blocks already include them.
    mask / samo_sparsity / config:
        With an explicit ``mask`` (named against :class:`StageModule`) or
        a ``samo_sparsity`` (stage-local magnitude pruning at that level),
        the stage trains through :class:`SAMOOptimizer` (compressed
        state); otherwise through the dense mixed-precision state.
    checkpoint_segments:
        When > 0, run the stage's blocks under activation checkpointing
        with that many segments (see :class:`StageModule`).
    """

    def __init__(
        self,
        comm: Communicator,
        blocks: list[Module],
        head=None,
        loss_head=None,
        mask: MaskSet | None = None,
        samo_sparsity: float | None = None,
        config: SAMOConfig | None = None,
        checkpoint_segments: int = 0,
    ):
        self.comm = comm
        self.stage = comm.rank
        self.n_stages = comm.size
        self.module = StageModule(blocks, checkpoint_segments=checkpoint_segments)
        self.head = head
        self.loss_head = loss_head
        config = config or SAMOConfig()
        if mask is None and samo_sparsity is not None:
            from ..pruning.magnitude import magnitude_prune

            mask = magnitude_prune(self.module, samo_sparsity)
        if mask is not None:
            self.optimizer = SAMOOptimizer(self.module, mask, config)
            self._state = self.optimizer.state
        else:
            self.optimizer = None
            self._state = DenseMixedPrecisionState(self.module, config)
        self.losses: list[float] = []
        #: optional callable(state) run after gradient accumulation and
        #: before the optimizer step — the data-parallel all-reduce hook
        #: (AxoNN synchronises gradients exactly at this point).
        self.grad_sync = None

    @property
    def is_first(self) -> bool:
        return self.stage == 0

    @property
    def is_last(self) -> bool:
        return self.stage == self.n_stages - 1

    # ------------------------------------------------------------------
    def _forward_microbatch(self, batch_input) -> tuple[Tensor, Tensor]:
        """Run this stage's forward; returns (stage_input, stage_output)."""
        if self.is_first:
            x = self.head(batch_input) if self.head is not None else batch_input
            if not isinstance(x, Tensor):
                x = Tensor(np.asarray(x, dtype=np.float32))
        else:
            act = self.comm.recv(self.stage - 1, tag=TAG_ACT)
            x = Tensor(act, requires_grad=True)
        out = self.module(x)
        if not self.is_last:
            self.comm.send(self.stage + 1, out.data, tag=TAG_ACT)
        return x, out

    def _backward_microbatch(self, x: Tensor, out: Tensor, targets) -> float | None:
        """Run this stage's backward; returns the loss on the last stage."""
        loss_val = None
        if self.is_last:
            loss = self.loss_head(out, targets) if self.loss_head is not None else out
            loss.backward()
            loss_val = loss.item()
        else:
            upstream = self.comm.recv(self.stage + 1, tag=TAG_GRAD)
            out.backward(upstream)
        if not self.is_first:
            self.comm.send(self.stage - 1, x.grad, tag=TAG_GRAD)
        return loss_val

    def train_step(self, microbatches: list, targets: list) -> float | None:
        """One batch = forward+backward over every microbatch, then step.

        ``microbatches[i]`` is the stage-0 input of microbatch ``i`` (only
        read on the first stage); ``targets[i]`` only on the last stage.
        Returns the mean microbatch loss on the last stage, None elsewhere.

        Gradients accumulate across microbatches (compressed, for SAMO
        stages) before one optimizer step — AxoNN's execution order.
        """
        if len(microbatches) != len(targets):
            raise ValueError("microbatches and targets must align")
        vals = []
        for mb, tgt in zip(microbatches, targets):
            x, out = self._forward_microbatch(mb)
            v = self._backward_microbatch(x, out, tgt)
            if v is not None:
                vals.append(v)
            self._state.compress_gradients()
        if self.grad_sync is not None:
            self.grad_sync(self._state)
        self._state.step()
        if self.is_last:
            mean = float(np.mean(vals))
            self.losses.append(mean)
            return mean
        return None
