"""Functional inter-layer (pipeline) parallel training over thread ranks.

The performance side of AxoNN's pipeline lives in
:mod:`repro.parallel.pipeline` (event simulation) and
:mod:`repro.parallel.axonn` (batch-time model). This module *executes* the
algorithm: each rank owns a contiguous stage of layers; activations flow
downstream with ``send``/``recv`` during the forward pass and activation
gradients flow upstream during the backward pass, microbatch by
microbatch, exactly as in the paper's Figure 3. Combined with
:class:`repro.comm.GridLayout` and the data-parallel sparse all-reduce it
forms a complete executable AxoNN+SAMO.

The stage boundary uses the autograd engine's ``backward(grad=...)``
entry point: the upstream gradient received from the next stage seeds the
local backward pass.
"""

from __future__ import annotations

import time

import numpy as np

from ..comm.backend import Communicator
from ..obs import OBS
from ..core.config import SAMOConfig
from ..core.samo_optimizer import SAMOOptimizer
from ..pruning.masks import MaskSet
from ..tensor.module import Module
from ..tensor.tensor import Tensor
from ..train.mixed_precision import DenseMixedPrecisionState

__all__ = [
    "PipelineStageTrainer",
    "StageModule",
    "partition_module_list",
    "BucketedGradSync",
]

TAG_ACT = 11
TAG_GRAD = 13


def partition_module_list(blocks: list[Module], n_stages: int) -> list[list[Module]]:
    """Split an ordered block list into ``n_stages`` contiguous stages of
    near-equal length (the runnable analogue of the flops partitioner)."""
    if n_stages < 1 or n_stages > len(blocks):
        raise ValueError(f"n_stages={n_stages} out of range for {len(blocks)} blocks")
    bounds = [round(i * len(blocks) / n_stages) for i in range(n_stages + 1)]
    return [blocks[bounds[i] : bounds[i + 1]] for i in range(n_stages)]


class StageModule(Module):
    """A pipeline stage: an ordered chain of blocks owned by one rank.

    Parameter names are ``b{i}.<name>``; compute pruning masks against an
    instance of this class so index names line up with the trainer's.

    ``checkpoint_segments > 0`` runs the chain through
    :func:`repro.tensor.checkpoint.checkpoint_sequential` — AxoNN trains
    with activation checkpointing on (paper Section II-E), and this is
    the executable composition of the two memory levers: SAMO compresses
    the model state while checkpointing bounds the activations each
    in-flight microbatch pins.
    """

    def __init__(self, blocks: list[Module], checkpoint_segments: int = 0):
        super().__init__()
        self._chain = []
        for i, b in enumerate(blocks):
            setattr(self, f"b{i}", b)
            self._chain.append(b)
        if checkpoint_segments < 0 or checkpoint_segments > max(len(blocks), 1):
            raise ValueError(
                f"checkpoint_segments={checkpoint_segments} out of range "
                f"[0, {len(blocks)}]"
            )
        self.checkpoint_segments = checkpoint_segments

    def forward(self, x: Tensor) -> Tensor:
        if self.checkpoint_segments:
            from ..tensor.checkpoint import checkpoint_sequential

            return checkpoint_sequential(self._chain, x, self.checkpoint_segments)
        for b in self._chain:
            x = b(x)
        return x


class BucketedGradSync:
    """Data-parallel gradient all-reduce in size-balanced buckets.

    The executable counterpart of the overlap cost model
    (:func:`repro.parallel.scenarios.overlap_exposed_collective`): instead
    of one monolithic all-reduce after the flush, the stage's gradient
    buffers are grouped into ``n_buckets`` roughly equal-byte buckets and
    each bucket is reduced as one concatenated message — the granularity
    that lets a real transport put bucket ``k`` on the wire while the
    backward pass still produces bucket ``k+1``. Summation happens in
    fp32 (matching the hand-written hooks in the examples, so results are
    bitwise-compatible with the per-tensor sync), then written back into
    the fp16 buffers in place.

    Works as the ``grad_sync`` hook of :class:`PipelineStageTrainer` for
    both state flavours: SAMO's compressed state (``state.compressed`` /
    ``state.dense`` entries) and the dense mixed-precision state
    (``state.grad16`` buffers).
    """

    def __init__(self, comm: Communicator, n_buckets: int = 4, average: bool = True):
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        self.comm = comm
        self.n_buckets = n_buckets
        self.average = average
        self.bytes_communicated = 0
        self.buckets_sent = 0
        #: per-bucket fp16 payload sizes, in reduction order — the
        #: measured fidelity prices each bucket's ring from these
        self.bucket_bytes: list[int] = []
        #: wall seconds spent inside all-reduce calls (includes the
        #: rendezvous wait of the bulk-synchronous backend)
        self.seconds = 0.0

    @staticmethod
    def _gradient_views(state) -> list[np.ndarray]:
        """The state's live fp16 gradient buffers, in production order."""
        views: list[np.ndarray] = []
        if hasattr(state, "compressed"):  # SAMO training state
            for e in state.compressed:
                if e.grad16_c is not None:
                    views.append(e.grad16_c)
            for d in state.dense:
                if d.grad16 is not None:
                    views.append(d.grad16)
        elif hasattr(state, "grad16"):  # dense mixed-precision state
            views.extend(g for g in state.grad16 if g is not None)
        else:
            raise TypeError(
                f"unsupported training state {type(state).__name__}; expected "
                "SAMO compressed state or DenseMixedPrecisionState"
            )
        return views

    def _buckets(self, views: list[np.ndarray]) -> list[list[np.ndarray]]:
        """Greedy contiguous split into <= n_buckets near-equal-byte runs."""
        total = sum(v.nbytes for v in views)
        target = max(total / self.n_buckets, 1)
        buckets: list[list[np.ndarray]] = [[]]
        filled = 0
        for v in views:
            if filled >= target and len(buckets) < self.n_buckets:
                buckets.append([])
                filled = 0
            buckets[-1].append(v)
            filled += v.nbytes
        return [b for b in buckets if b]

    def __call__(self, state) -> None:
        views = self._gradient_views(state)
        if not views:
            return
        for bucket in self._buckets(views):
            flat = np.concatenate([v.astype(np.float32).ravel() for v in bucket])
            nbytes = sum(v.nbytes for v in bucket)
            t0 = time.perf_counter()
            if OBS.enabled:
                with OBS.tracer.span(
                    "allreduce", category="exec.collective",
                    track=f"rank{self.comm.rank}", nbytes=nbytes,
                ):
                    total = self.comm.allreduce(flat)
            else:
                total = self.comm.allreduce(flat)
            self.seconds += time.perf_counter() - t0
            if self.average:
                total = total / self.comm.size
            offset = 0
            for v in bucket:
                v[...] = total[offset : offset + v.size].reshape(v.shape).astype(v.dtype)
                offset += v.size
            self.bytes_communicated += nbytes
            self.bucket_bytes.append(nbytes)
            self.buckets_sent += 1


class PipelineStageTrainer:
    """One rank of an inter-layer parallel training run.

    Parameters
    ----------
    comm:
        Communicator over the pipeline group. Stage index == ``comm.rank``
        (use a dedicated sub-world per pipeline).
    blocks:
        The contiguous blocks this stage owns.
    head / loss_head:
        Only consulted on the first/last stage: ``head(batch_input)``
        produces the stage-0 input tensor (e.g. embedding lookup);
        ``loss_head(stage_output, targets)`` produces the scalar loss.
        Both may be ``None`` when the stage's blocks already include them.
    mask / samo_sparsity / config:
        With an explicit ``mask`` (named against :class:`StageModule`) or
        a ``samo_sparsity`` (stage-local magnitude pruning at that level),
        the stage trains through :class:`SAMOOptimizer` (compressed
        state); otherwise through the dense mixed-precision state.
    checkpoint_segments:
        When > 0, run the stage's blocks under activation checkpointing
        with that many segments (see :class:`StageModule`).
    record_events:
        When True, every compute step and message this rank executes is
        appended to ``self.events`` in program order —
        ``("fwd",)``/``("bwd",)`` for microbatch compute and
        ``("send", peer, tag, nbytes)``/``("recv", peer, tag, nbytes)``
        for boundary messages. The measured fidelity replays this ledger
        under model-scale per-op costs
        (:func:`repro.autotune.measured.replay_events`).

    Per-phase wall clock accumulates in ``self.phase_seconds``
    (``forward``/``backward``/``p2p``), and each phase also emits a
    wall-clock span (categories ``exec.forward``, ``exec.backward``,
    ``exec.p2p``) when the process-wide tracer is enabled.
    """

    def __init__(
        self,
        comm: Communicator,
        blocks: list[Module],
        head=None,
        loss_head=None,
        mask: MaskSet | None = None,
        samo_sparsity: float | None = None,
        config: SAMOConfig | None = None,
        checkpoint_segments: int = 0,
        record_events: bool = False,
    ):
        self.comm = comm
        self.stage = comm.rank
        self.n_stages = comm.size
        self.module = StageModule(blocks, checkpoint_segments=checkpoint_segments)
        self.head = head
        self.loss_head = loss_head
        config = config or SAMOConfig()
        if mask is None and samo_sparsity is not None:
            from ..pruning.magnitude import magnitude_prune

            mask = magnitude_prune(self.module, samo_sparsity)
        if mask is not None:
            self.optimizer = SAMOOptimizer(self.module, mask, config)
            self._state = self.optimizer.state
        else:
            self.optimizer = None
            self._state = DenseMixedPrecisionState(self.module, config)
        self.losses: list[float] = []
        #: optional callable(state) run after gradient accumulation and
        #: before the optimizer step — the data-parallel all-reduce hook
        #: (AxoNN synchronises gradients exactly at this point).
        self.grad_sync = None
        self.record_events = record_events
        #: per-rank event ledger (only appended to when ``record_events``)
        self.events: list[tuple] = []
        #: wall seconds per phase, accumulated across train steps
        self.phase_seconds = {"forward": 0.0, "backward": 0.0, "p2p": 0.0}

    @property
    def is_first(self) -> bool:
        return self.stage == 0

    @property
    def is_last(self) -> bool:
        return self.stage == self.n_stages - 1

    # ------------------------------------------------------------------
    def _send(self, peer: int, payload: np.ndarray, tag: int) -> None:
        t0 = time.perf_counter()
        if OBS.enabled:
            with OBS.tracer.span(
                "send", category="exec.p2p", track=f"rank{self.stage}",
                peer=peer, tag=tag,
            ):
                self.comm.send(peer, payload, tag=tag)
        else:
            self.comm.send(peer, payload, tag=tag)
        self.phase_seconds["p2p"] += time.perf_counter() - t0
        if self.record_events:
            self.events.append(("send", peer, tag, payload.nbytes))

    def _recv(self, peer: int, tag: int) -> np.ndarray:
        t0 = time.perf_counter()
        if OBS.enabled:
            with OBS.tracer.span(
                "recv", category="exec.p2p", track=f"rank{self.stage}",
                peer=peer, tag=tag,
            ):
                payload = self.comm.recv(peer, tag=tag)
        else:
            payload = self.comm.recv(peer, tag=tag)
        self.phase_seconds["p2p"] += time.perf_counter() - t0
        if self.record_events:
            self.events.append(("recv", peer, tag, payload.nbytes))
        return payload

    def _forward_microbatch(self, batch_input) -> tuple[Tensor, Tensor]:
        """Run this stage's forward; returns (stage_input, stage_output)."""
        if self.is_first:
            x = self.head(batch_input) if self.head is not None else batch_input
            if not isinstance(x, Tensor):
                x = Tensor(np.asarray(x, dtype=np.float32))
        else:
            act = self._recv(self.stage - 1, tag=TAG_ACT)
            x = Tensor(act, requires_grad=True)
        t0 = time.perf_counter()
        if OBS.enabled:
            with OBS.tracer.span(
                "forward", category="exec.forward", track=f"rank{self.stage}"
            ):
                out = self.module(x)
        else:
            out = self.module(x)
        self.phase_seconds["forward"] += time.perf_counter() - t0
        if self.record_events:
            self.events.append(("fwd",))
        if not self.is_last:
            self._send(self.stage + 1, out.data, tag=TAG_ACT)
        return x, out

    def _backward_microbatch(self, x: Tensor, out: Tensor, targets) -> float | None:
        """Run this stage's backward; returns the loss on the last stage."""
        loss_val = None
        upstream = None
        if not self.is_last:
            upstream = self._recv(self.stage + 1, tag=TAG_GRAD)
        t0 = time.perf_counter()
        if OBS.enabled:
            with OBS.tracer.span(
                "backward", category="exec.backward", track=f"rank{self.stage}"
            ):
                loss_val = self._run_backward(x, out, targets, upstream)
        else:
            loss_val = self._run_backward(x, out, targets, upstream)
        self.phase_seconds["backward"] += time.perf_counter() - t0
        if self.record_events:
            self.events.append(("bwd",))
        if not self.is_first:
            self._send(self.stage - 1, x.grad, tag=TAG_GRAD)
        return loss_val

    def _run_backward(self, x, out, targets, upstream) -> float | None:
        if self.is_last:
            loss = self.loss_head(out, targets) if self.loss_head is not None else out
            loss.backward()
            return loss.item()
        out.backward(upstream)
        return None

    def train_step(
        self, microbatches: list, targets: list, schedule: str = "sequential"
    ) -> float | None:
        """One batch = forward+backward over every microbatch, then step.

        ``microbatches[i]`` is the stage-0 input of microbatch ``i`` (only
        read on the first stage); ``targets[i]`` only on the last stage.
        Returns the mean microbatch loss on the last stage, None elsewhere.

        Gradients accumulate across microbatches (compressed, for SAMO
        stages) before one optimizer step — AxoNN's execution order.

        ``schedule`` picks the microbatch interleaving; both orders are
        numerically identical (same per-microbatch graphs, same gradient
        accumulation), they differ only in pipeline concurrency:

        * ``"sequential"`` — microbatch ``i`` completes its full
          forward *and* backward before ``i+1`` starts (the historical
          order; no inter-stage concurrency, every stage but one idles).
        * ``"gpipe"`` — all forwards first, then all backwards: stage
          ``s`` starts forward ``i+1`` as soon as it has sent forward
          ``i`` downstream, so the per-rank busy/idle structure realizes
          Eq. 7's ``(g-1)(t_f + t_b)`` warmup/drain bubble — the order
          the measured fidelity executes.
        """
        if len(microbatches) != len(targets):
            raise ValueError("microbatches and targets must align")
        if schedule not in ("sequential", "gpipe"):
            raise ValueError(
                f"unknown schedule {schedule!r}; choose 'sequential' or 'gpipe'"
            )
        vals = []
        if schedule == "gpipe":
            saved = [self._forward_microbatch(mb) for mb in microbatches]
            for (x, out), tgt in zip(saved, targets):
                v = self._backward_microbatch(x, out, tgt)
                if v is not None:
                    vals.append(v)
                self._state.compress_gradients()
        else:
            for mb, tgt in zip(microbatches, targets):
                x, out = self._forward_microbatch(mb)
                v = self._backward_microbatch(x, out, tgt)
                if v is not None:
                    vals.append(v)
                self._state.compress_gradients()
        if self.grad_sync is not None:
            self.grad_sync(self._state)
        self._state.step()
        if self.is_last:
            mean = float(np.mean(vals))
            self.losses.append(mean)
            return mean
        return None
