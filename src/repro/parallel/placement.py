"""Replica placement optimizer for the multi-replica pipeline pricing.

PR 3 made the batch pay the *slowest* data-parallel replica's chain:
:func:`repro.parallel.simulate_hetero_pipeline` prices every replica's
stage chain from the cluster topology, and a chain that straddles a node
boundary pays InfiniBand hops its all-NVLink siblings do not. The ranks
hosting each chain were fixed, though — AxoNN's contiguous block layout
(:meth:`repro.cluster.Topology.replica_pipeline_ranks`). This module
*optimizes* that assignment: a greedy node-packing construction followed
by local swaps, minimizing the slowest replica's chain makespan under the
active :class:`~repro.parallel.scenarios.ClusterScenario`.

The returned placement is **never worse than the default block layout**:
the optimizer evaluates the block layout first and only keeps its own
assignment when it strictly improves the objective. Chain times come
from the same event-driven engine (and the same scenario transforms) the
batch model uses, so "better here" means "better in the batch price".

:meth:`repro.api.Session.place` and the ``repro place`` CLI expose the
optimizer directly; ``placement="best"`` on a :class:`~repro.api.Job`
(or ``--placement best`` on the planner) makes ``breakdown``/``plan``/
``robust_plan`` price every candidate at its optimized placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..cluster.topology import Topology
from ..models.spec import ModelSpec
from .pipeline import simulate_pipeline

__all__ = [
    "Placement",
    "PlacementResult",
    "block_placement",
    "optimize_placement",
    "place_replicas",
]


@dataclass(frozen=True)
class Placement:
    """One assignment of pipeline-stage ranks to every replica.

    ``replicas[r][s]`` is the rank rooting stage ``s`` of replica ``r``
    (for ``g_tensor > 1`` the stage occupies the ``g_tensor`` consecutive
    ranks starting there, exactly like
    :meth:`~repro.cluster.Topology.replica_pipeline_ranks`). Replicas
    must not share ranks.
    """

    replicas: tuple

    def __post_init__(self):
        object.__setattr__(
            self, "replicas", tuple(tuple(int(r) for r in chain) for chain in self.replicas)
        )
        if not self.replicas:
            raise ValueError("a placement needs at least one replica")
        depth = len(self.replicas[0])
        seen: set[int] = set()
        for chain in self.replicas:
            if len(chain) != depth:
                raise ValueError(
                    f"ragged placement: chains of length {depth} and {len(chain)}"
                )
            for r in chain:
                if r in seen:
                    raise ValueError(f"rank {r} assigned to two replicas")
                seen.add(r)

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def g_inter(self) -> int:
        return len(self.replicas[0])

    def describe(self) -> str:
        return "; ".join(
            f"r{i}: {','.join(str(x) for x in chain)}"
            for i, chain in enumerate(self.replicas)
        )

    def to_dict(self) -> dict:
        return {"replicas": [list(chain) for chain in self.replicas]}

    @classmethod
    def from_dict(cls, data: dict) -> "Placement":
        return cls(tuple(tuple(chain) for chain in data["replicas"]))


@dataclass
class PlacementResult:
    """Outcome of one placement optimization.

    ``makespan`` is the slowest replica's chain time under the chosen
    placement; ``default_makespan`` is the same objective under the block
    layout. The invariant ``makespan <= default_makespan`` always holds —
    when greedy + swaps cannot beat the block layout, the block layout
    *is* the returned placement.
    """

    placement: Placement
    chain_times: tuple
    makespan: float
    default_placement: Placement
    default_chain_times: tuple
    default_makespan: float
    swaps: int = 0
    evaluations: int = 0
    #: full-fidelity chain traces from the final verdict, keyed by the
    #: (scenario-scaled) link-time profile — a cache handed back so the
    #: caller pricing the placed chains need not re-simulate them; not
    #: part of the serialized result
    traces: dict | None = None

    @property
    def improvement_pct(self) -> float:
        """Makespan reduction over the block layout, in percent."""
        if self.default_makespan <= 0:
            return 0.0
        return (1.0 - self.makespan / self.default_makespan) * 100.0

    @property
    def is_default(self) -> bool:
        return self.placement == self.default_placement

    def to_dict(self) -> dict:
        return {
            "placement": self.placement.to_dict(),
            "chain_times": list(self.chain_times),
            "makespan": self.makespan,
            "default_placement": self.default_placement.to_dict(),
            "default_chain_times": list(self.default_chain_times),
            "default_makespan": self.default_makespan,
            "improvement_pct": self.improvement_pct,
            "swaps": self.swaps,
            "evaluations": self.evaluations,
        }


def block_placement(
    topo: Topology, n_replicas: int, g_inter: int, g_tensor: int = 1
) -> Placement:
    """AxoNN's default contiguous block layout as a :class:`Placement`."""
    return Placement(
        tuple(
            tuple(topo.replica_pipeline_ranks(r, g_inter, g_tensor))
            for r in range(n_replicas)
        )
    )


def _unit_nodes(topo: Topology, g_tensor: int) -> list[int]:
    """Node of each stage-slot unit (``g_tensor`` consecutive ranks)."""
    n_units = topo.n_gpus // g_tensor
    return [topo.node_of(u * g_tensor) for u in range(n_units)]


def _greedy_placement(
    topo: Topology, n_replicas: int, g_inter: int, g_tensor: int
) -> Placement:
    """Node-aware construction: fill whole chains into single nodes
    first (best-fit, so large free pools survive for later chains), then
    compose the leftovers, largest fragment first, so each straddling
    chain crosses as few node boundaries as possible."""
    unit_node = _unit_nodes(topo, g_tensor)
    free: dict[int, list[int]] = {}
    for u, node in enumerate(unit_node):
        free.setdefault(node, []).append(u)

    chains: list[list[int]] = []
    for _ in range(n_replicas):
        fits = [n for n, units in free.items() if len(units) >= g_inter]
        if fits:
            # best fit: the node whose free pool is closest to the chain size
            node = min(fits, key=lambda n: (len(free[n]), n))
            units = [free[node].pop(0) for _ in range(g_inter)]
        else:
            units = []
            while len(units) < g_inter:
                # largest fragment first keeps the crossing count minimal
                node = max(free, key=lambda n: (len(free[n]), -n))
                take = min(g_inter - len(units), len(free[node]))
                units.extend(free[node].pop(0) for _ in range(take))
                if not free[node]:
                    del free[node]
        chains.append(units)
        free = {n: u for n, u in free.items() if u}
    return Placement(tuple(tuple(u * g_tensor for u in chain) for chain in chains))


def optimize_placement(
    topo: Topology,
    *,
    g_inter: int,
    g_tensor: int = 1,
    n_replicas: int,
    chain_time,
    final_chain_time=None,
    swap_sweeps: int = 2,
) -> PlacementResult:
    """Greedy construction + local swaps over a caller-supplied objective.

    ``chain_time(ranks: tuple[int, ...]) -> float`` prices one replica's
    chain during the *search* (the caller memoizes; :func:`place_replicas`
    builds it from the event engine at a reduced microbatch count — the
    schedule shape, not its length, is what ranks placements). The
    objective is the maximum chain time over all replicas — the
    synchronous data-parallel step waits for the slowest.

    Local search swaps the ranks of two stage slots (within or across
    replicas) and keeps a swap when the slowest chain strictly improves;
    ``swap_sweeps`` bounds the number of full passes.

    ``final_chain_time`` (default: ``chain_time``) prices the *reported*
    numbers: the search's best candidate and the block layout are both
    re-evaluated under it, and the block layout is returned whenever the
    candidate cannot beat it — the never-worse guarantee holds at full
    fidelity even when the search ran on the surrogate.
    """
    if swap_sweeps < 0:
        raise ValueError(f"swap_sweeps must be non-negative, got {swap_sweeps}")
    if final_chain_time is None:
        final_chain_time = chain_time
    evaluations = 0
    memo: dict[tuple, float] = {}

    def cost(chain: tuple) -> float:
        nonlocal evaluations
        if chain not in memo:
            memo[chain] = chain_time(chain)
            evaluations += 1
        return memo[chain]

    default = block_placement(topo, n_replicas, g_inter, g_tensor)

    chains = [list(c) for c in _greedy_placement(topo, n_replicas, g_inter, g_tensor).replicas]
    swaps = 0
    current = [cost(tuple(c)) for c in chains]
    for _ in range(swap_sweeps):
        improved = False
        worst = max(current)
        # A swap touches two replicas, so it can lower the max only if it
        # involves every currently-slowest replica — restricting one end
        # to the slowest set loses no improving move and prunes the pair
        # space from O((R*S)^2) to O(S * R*S).
        slow_slots = [
            (r, s)
            for r in range(len(chains))
            if current[r] >= worst * (1.0 - 1e-12)
            for s in range(g_inter)
        ]
        all_slots = [(r, s) for r in range(len(chains)) for s in range(g_inter)]
        for r1, s1 in slow_slots:
            for r2, s2 in all_slots:
                if (r1, s1) == (r2, s2):
                    continue
                a, b = chains[r1][s1], chains[r2][s2]
                if a == b or topo.same_node(a, b):
                    continue  # same-node swaps cannot change any link class
                chains[r1][s1], chains[r2][s2] = b, a
                try:
                    t1 = cost(tuple(chains[r1]))
                    t2 = cost(tuple(chains[r2])) if r2 != r1 else t1
                except ValueError:
                    # adjacent duplicate ranks: an invalid chain, undo
                    chains[r1][s1], chains[r2][s2] = a, b
                    continue
                rest = max(
                    (current[r] for r in range(len(chains)) if r not in (r1, r2)),
                    default=0.0,
                )
                if max(t1, t2, rest) < worst * (1.0 - 1e-12):
                    current[r1], current[r2] = t1, t2
                    worst = max(t1, t2, rest)
                    swaps += 1
                    improved = True
                else:
                    chains[r1][s1], chains[r2][s2] = a, b
        if not improved:
            break

    candidate = Placement(tuple(tuple(c) for c in chains))
    # final verdict at full fidelity: the candidate must beat the block
    # layout on the real objective or the block layout is returned
    default_times = tuple(final_chain_time(c) for c in default.replicas)
    default_make = max(default_times)
    candidate_times = tuple(final_chain_time(c) for c in candidate.replicas)
    if max(candidate_times) < default_make * (1.0 - 1e-12):
        placement, times = candidate, candidate_times
    else:
        placement, times = default, default_times
    return PlacementResult(
        placement=placement,
        chain_times=times,
        makespan=max(times),
        default_placement=default,
        default_chain_times=default_times,
        default_makespan=default_make,
        swaps=swaps,
        evaluations=evaluations,
    )


def place_replicas(
    spec: ModelSpec,
    *,
    g_inter: int,
    m: int,
    mbs: int,
    t_f_model: float,
    t_b_model: float,
    n_gpus: int | None = None,
    g_tensor: int = 1,
    cal: SummitCalibration = SUMMIT,
    scenario=None,
    blocking_sends: bool = False,
    partition_mode: str = "flops",
    swap_sweeps: int = 2,
    search_microbatches: int | None = None,
) -> PlacementResult:
    """Optimize the replica placement of one workload's pipeline.

    Takes the same model- and topology-derived inputs as
    :func:`~repro.parallel.scenarios.simulate_hetero_pipeline` (shared
    through one helper, so the optimizer's chain times are exactly the
    ones the batch model would pay) and returns the best placement found
    — never worse than the default block layout.

    ``search_microbatches`` truncates the batch *during the swap search
    only* (the planner's hot path passes a few pipeline-depths of
    microbatches; a 1F1B schedule's shape is developed by then). The
    final default-vs-candidate verdict always runs at the full ``m``, so
    the never-worse guarantee is at full fidelity either way.
    """
    from .scenarios import _chain_inputs, _topology, get_scenario

    scenario = get_scenario(scenario)
    t_f_stages, t_b_stages, cut_payloads, contention = _chain_inputs(
        spec, g_inter, mbs, t_f_model, t_b_model, partition_mode, scenario
    )
    mpd = g_inter * g_tensor
    topo = _topology(n_gpus or mpd, cal)
    n_replicas = max(topo.n_gpus // mpd, 1)

    search_m = m if search_microbatches is None else max(1, min(m, search_microbatches))

    def _chain_time_at(n_microbatches: int):
        trace_memo: dict[tuple, object] = {}

        def chain_time(ranks: tuple) -> float:
            profile = tuple(topo.pipeline_link_times(list(ranks), cut_payloads))
            if scenario is not None:
                profile = tuple(scenario.scale_link_times(list(profile)))
            if profile not in trace_memo:
                trace_memo[profile] = simulate_pipeline(
                    g_inter,
                    n_microbatches,
                    t_f_stage=t_f_stages,
                    t_b_stage=t_b_stages,
                    msg_time=list(profile) if profile else 0.0,
                    blocking_sends=blocking_sends,
                    link_contention=contention,
                )
            return trace_memo[profile].makespan

        chain_time.traces = trace_memo
        return chain_time

    full = _chain_time_at(m)
    result = optimize_placement(
        topo,
        g_inter=g_inter,
        g_tensor=g_tensor,
        n_replicas=n_replicas,
        chain_time=_chain_time_at(search_m) if search_m < m else full,
        final_chain_time=full,
        swap_sweeps=swap_sweeps,
    )
    # hand the full-m verdict traces back so callers pricing the placed
    # chains (simulate_hetero_pipeline) need not re-run the event engine
    result.traces = full.traces
    return result
