"""Layer partitioning and ``G_inter`` selection.

SAMO's performance story (paper Section IV-B) is: memory savings let the
framework *deploy one model copy on fewer GPUs* — a smaller ``G_inter`` —
so more of the machine does data parallelism. This module implements both
halves: per-GPU memory accounting under each storage mode, and the choice
of the smallest feasible power-of-two ``G_inter``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..core.memory_model import dense_model_state_bytes, samo_model_state_bytes
from ..models.spec import ModelSpec

__all__ = [
    "StorageMode",
    "model_state_bytes",
    "activation_bytes_per_gpu",
    "memory_per_gpu",
    "choose_g_inter",
    "balanced_partition",
    "PartitionPlan",
]


class StorageMode(str, enum.Enum):
    """How model state is stored on device.

    A ``str`` enum: members compare equal to their plain string values, so
    callers that pass ``"dense"`` (the historical API) keep working, and
    members serialise naturally in reports and cache keys.
    """

    DENSE = "dense"  # default mixed precision (AxoNN, DeepSpeed fwd state)
    SAMO = "samo"  # compressed shared-index storage
    SPARSE_KERNEL = "sparse_kernel"  # Sputnik: CSR weights, compressed states
    ZERO1 = "zero1"  # DeepSpeed ZeRO-1: optimizer states sharded over G_data

    def __str__(self) -> str:  # "dense", not "StorageMode.DENSE"
        return self.value


def model_state_bytes(
    spec: ModelSpec,
    mode: str | StorageMode,
    sparsity: float = 0.9,
    g_data: int = 1,
) -> int:
    """Total model-state bytes of one model replica under ``mode``.

    * DENSE: the paper's ``20 φ``.
    * SAMO: ``24 f φ_p + 2 φ`` — only prunable parameters compress;
      non-prunable (biases, norms) stay dense at 20 bytes each.
    * SPARSE_KERNEL: like SAMO but weights also sparse (CSR values+index,
      ~6 bytes/nnz) instead of the dense 2-byte θ16.
    * ZERO1: dense θ/∇ in both precisions (12 φ) + Adam states sharded
      across the data-parallel group (8 φ / G_data).
    """
    try:
        mode = StorageMode(mode)
    except ValueError:
        valid = ", ".join(m.value for m in StorageMode)
        raise ValueError(
            f"unknown storage mode {mode!r}; valid modes: {valid}"
        ) from None
    phi = spec.param_count
    phi_p = spec.prunable_count
    phi_np = phi - phi_p
    f = 1.0 - sparsity
    if mode == StorageMode.DENSE:
        return dense_model_state_bytes(phi)
    if mode == StorageMode.SAMO:
        return samo_model_state_bytes(phi_p, sparsity) + dense_model_state_bytes(phi_np)
    if mode == StorageMode.SPARSE_KERNEL:
        nnz = round(f * phi_p)
        # CSR weights (2B fp16 values + 4B col index) + compressed
        # grads/masters/states + dense non-prunables.
        sparse_weights = 6 * nnz
        compressed_rest = (2 + 4 + 4 + 8) * nnz + 4 * nnz
        return sparse_weights + compressed_rest + dense_model_state_bytes(phi_np)
    # mode is a validated StorageMode member at this point
    assert mode == StorageMode.ZERO1
    return 12 * phi + (8 * phi) // max(g_data, 1)


def activation_bytes_per_gpu(spec: ModelSpec, mbs: int) -> int:
    """Checkpointed activation bytes per GPU (half precision).

    With activation checkpointing each layer retains only its input per
    in-flight microbatch; a stage holds ``layers/G_inter`` layers but up to
    ``G_inter`` in-flight microbatches, so the product is independent of
    ``G_inter``: the full per-sample checkpoint footprint times ``mbs``.
    """
    ckpt_elems = sum(l.activation_checkpoint_elems for l in spec.layers)
    return 2 * ckpt_elems * mbs


def memory_per_gpu(
    spec: ModelSpec,
    g_inter: int,
    mode: str,
    sparsity: float = 0.9,
    mbs: int = 1,
    g_data: int = 1,
    cal: SummitCalibration = SUMMIT,
) -> int:
    """Per-GPU bytes: state shard + activations + framework overhead."""
    state = model_state_bytes(spec, mode, sparsity, g_data=g_data)
    return (
        state // g_inter
        + activation_bytes_per_gpu(spec, mbs)
        + cal.framework_overhead_bytes
    )


def choose_g_inter(
    spec: ModelSpec,
    n_gpus: int,
    mode: str,
    sparsity: float = 0.9,
    mbs: int = 1,
    cal: SummitCalibration = SUMMIT,
) -> int:
    """Smallest feasible power-of-two ``G_inter`` (paper Section IV-B).

    Feasible means: the per-GPU footprint fits in device memory, ``G_inter``
    divides ``n_gpus``, there are at least as many schedulable layers as
    stages, and each pipeline still receives at least one microbatch
    (``G_data <= B / mbs``).
    """
    g = 1
    while g <= n_gpus:
        g_data = n_gpus // g
        ok = (
            n_gpus % g == 0
            and g <= spec.num_layers
            and spec.batch_size % (g_data * mbs) == 0
            and spec.batch_size // (g_data * mbs) >= 1
            and memory_per_gpu(spec, g, mode, sparsity, mbs, g_data=g_data, cal=cal)
            <= cal.gpu_memory_bytes
        )
        if ok:
            return g
        g *= 2
    raise RuntimeError(
        f"{spec.name}: no feasible G_inter on {n_gpus} GPUs in mode {mode!r} "
        f"(model too large for the machine)"
    )


@dataclass
class PartitionPlan:
    """Contiguous layer ranges assigned to each pipeline stage."""

    boundaries: list[int]  # len G_inter+1; stage i = layers[b[i]:b[i+1]]
    stage_flops: list[float]  # fwd flops per sample per stage
    #: balancing objective the plan was built under ("flops" or "time")
    mode: str = "flops"
    #: per-stage slowdown rates the "time" objective balanced against
    #: (None for flops balancing / uniform rates)
    stage_rates: tuple[float, ...] | None = None
    #: parameters assigned to each stage (None on hand-built plans that
    #: predate the field; fractions then fall back to uniform)
    stage_params: list[int] | None = None

    @property
    def n_stages(self) -> int:
        return len(self.boundaries) - 1

    @property
    def layer_counts(self) -> list[int]:
        """Layers assigned to each stage."""
        return [b - a for a, b in zip(self.boundaries, self.boundaries[1:])]

    @property
    def imbalance(self) -> float:
        """max/mean stage flops (1.0 = perfectly balanced)."""
        mean = sum(self.stage_flops) / len(self.stage_flops)
        return max(self.stage_flops) / mean if mean > 0 else 1.0

    @property
    def flop_fractions(self) -> list[float]:
        """Each stage's share of the model's forward flops (sums to 1)."""
        total = sum(self.stage_flops)
        if total <= 0:
            return [1.0 / self.n_stages] * self.n_stages
        return [f / total for f in self.stage_flops]

    @property
    def param_fractions(self) -> list[float]:
        """Each stage's share of the model's parameters (sums to 1).

        This is the stage's share of the data-parallel gradient payload:
        stage ``s`` all-reduces the gradients of *its* layers' parameters
        among the replicas, not a uniform ``1/G_inter`` shard.
        """
        if self.stage_params is None or sum(self.stage_params) <= 0:
            return [1.0 / self.n_stages] * self.n_stages
        total = sum(self.stage_params)
        return [p / total for p in self.stage_params]

    def stage_times(self, t_f_model: float, t_b_model: float) -> tuple[list[float], list[float]]:
        """Split whole-model fwd/bwd times into per-stage times by flops.

        This is what the heterogeneous pipeline engine consumes instead
        of the uniform ``t / G_inter`` split: a stage that carries 30% of
        the model's flops takes 30% of the model's compute time.
        """
        fr = self.flop_fractions
        return [t_f_model * f for f in fr], [t_b_model * f for f in fr]


def balanced_partition(
    spec: ModelSpec,
    g_inter: int,
    mode: str = "flops",
    stage_rates: "list[float] | tuple[float, ...] | None" = None,
) -> PartitionPlan:
    """Split layers into ``g_inter`` contiguous stages balancing load.

    Greedy prefix-target sweep (the classic linear partition heuristic):
    cut when accumulated flops reach the running per-stage target. The
    final stage absorbs any remainder.

    ``mode="flops"`` (the paper's setting) equalises raw forward flops.
    ``mode="time"`` equalises *time-under-scenario*: ``stage_rates``
    gives each stage's relative slowdown (e.g. 1.5 for a throttled GPU,
    from ``ClusterScenario.scale_stage_times([1.0]*g)``), and the sweep
    targets equal ``rate_i x stage_flops_i`` instead — a slow stage
    receives proportionally fewer layers so the schedule's bottleneck
    drops. Uniform (or absent) rates reduce time mode to flops mode.
    """
    if g_inter < 1 or g_inter > spec.num_layers:
        raise ValueError(
            f"g_inter={g_inter} out of range [1, {spec.num_layers}] for {spec.name}"
        )
    if mode not in ("flops", "time"):
        raise ValueError(f"unknown partition mode {mode!r}; choose 'flops' or 'time'")
    if stage_rates is not None:
        if mode != "time":
            raise ValueError("stage_rates only apply to mode='time'")
        stage_rates = tuple(float(r) for r in stage_rates)
        if len(stage_rates) != g_inter:
            raise ValueError(
                f"stage_rates has {len(stage_rates)} entries for {g_inter} stages"
            )
        if any(r <= 0 for r in stage_rates):
            raise ValueError(f"stage_rates must be positive, got {stage_rates}")
    # A stage slowed by rate r should carry 1/r of the flops a nominal
    # stage does; inverse rates weight the per-stage targets.
    inv = [1.0 / r for r in (stage_rates or (1.0,) * g_inter)]
    flops = [l.fwd_flops_per_sample for l in spec.layers]
    total = sum(flops)
    boundaries = [0]
    acc = 0.0
    done = 0.0
    for i, f in enumerate(flops):
        stage = len(boundaries) - 1
        remaining_stages = g_inter - stage
        remaining_layers = len(flops) - i
        if remaining_stages == 0:
            break
        acc += f
        target = (total - done) * inv[stage] / sum(inv[stage:])
        # cut when the stage met its target, or we must cut to leave one
        # layer per remaining stage
        must_cut = remaining_layers - 1 < remaining_stages - 1
        if (acc >= target and remaining_stages > 1) or must_cut:
            boundaries.append(i + 1)
            done += acc
            acc = 0.0
    boundaries.append(len(flops))
    # Deduplicate in pathological cases and validate.
    if len(boundaries) != g_inter + 1 or len(set(boundaries)) != len(boundaries):
        # Fallback: equal layer counts.
        step = len(flops) / g_inter
        boundaries = [round(i * step) for i in range(g_inter)] + [len(flops)]
    stage_flops = [
        sum(flops[boundaries[i] : boundaries[i + 1]]) for i in range(g_inter)
    ]
    stage_params = [
        sum(l.param_count for l in spec.layers[boundaries[i] : boundaries[i + 1]])
        for i in range(g_inter)
    ]
    return PartitionPlan(
        boundaries=boundaries,
        stage_flops=stage_flops,
        mode=mode,
        stage_rates=stage_rates,
        stage_params=stage_params,
    )
