"""Heterogeneity scenarios for the pipeline simulation engine.

The paper's performance model (Eqs. 6-11) assumes uniform stages on
identical GPUs joined by one flat message cost. Real clusters are not
that kind: a GPU can run slow (thermal throttling, a bad HBM stack), a
link can run slow (a congested InfiniBand switch), a flops-balanced
partition can still be skewed (layers don't divide evenly), and messages
can contend for a shared link. A :class:`PipelineScenario` packages one
such deviation as a transform on the per-stage compute times and
per-link message times that :func:`repro.parallel.simulate_pipeline`
consumes; :data:`SCENARIOS` holds the named presets the CLI exposes.

:func:`simulate_hetero_pipeline` is the bridge used by the batch model
and the autotuner's ``sim`` fidelity: it derives *actual* per-stage
times from the flops partitioner (instead of the uniform ``t/G_inter``
split), prices each stage-boundary link from the cluster topology
(NVLink inside a node, calibrated InfiniBand across nodes) with the
payload of the actual cut, applies the scenario, and runs the engine.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..cluster.p2p import pipeline_message_bytes
from ..cluster.topology import Topology
from ..models.spec import ModelSpec
from .partitioner import PartitionPlan, balanced_partition
from .perf_model import bubble_time
from .pipeline import PipelineTrace, simulate_pipeline

__all__ = [
    "PipelineScenario",
    "SCENARIOS",
    "get_scenario",
    "simulate_hetero_pipeline",
    "run_scenario",
]


@dataclass(frozen=True)
class PipelineScenario:
    """One named deviation from the uniform/identical-GPU assumption.

    Frozen and hashable so it can participate in planner cache keys.
    Stage/link indices are resolved modulo the actual pipeline depth, so
    one preset applies at any ``G_inter``.
    """

    name: str
    description: str = ""
    #: multiply one stage's compute times (a throttled/straggler GPU)
    straggler_stage: int | None = None
    straggler_factor: float = 1.0
    #: multiply one link's message time (a congested switch / slow hop)
    slow_link: int | None = None
    slow_link_factor: float = 1.0
    #: linear compute ramp across stages: stage i is scaled by
    #: ``1 + skew * (2i/(G-1) - 1)`` (front stages lighter, back heavier;
    #: mean load preserved) — a skewed-partition stand-in when no real
    #: flops partition is in play
    compute_skew: float = 0.0
    #: serialize messages sharing a stage-boundary link (half-duplex)
    link_contention: bool = False
    #: message time the CLI uses when the user gives none (presets that
    #: exercise links need a non-zero base to bite)
    base_msg_time: float = 0.0

    def scale_stage_times(self, times: list[float]) -> list[float]:
        g = len(times)
        out = list(times)
        if self.compute_skew and g > 1:
            ramp = [1.0 + self.compute_skew * (2.0 * i / (g - 1) - 1.0) for i in range(g)]
            out = [t * r for t, r in zip(out, ramp)]
        if self.straggler_stage is not None and g > 0:
            i = self.straggler_stage % g
            out[i] *= self.straggler_factor
        return out

    def scale_link_times(self, times: list[float]) -> list[float]:
        out = list(times)
        if self.slow_link is not None and out:
            i = self.slow_link % len(out)
            out[i] *= self.slow_link_factor
        return out


#: Named presets (the ``repro simulate --preset`` choices).
SCENARIOS: dict[str, PipelineScenario] = {
    s.name: s
    for s in (
        PipelineScenario(
            "uniform",
            "identical stages, free messages — must reproduce Eq. 6-7 exactly",
        ),
        PipelineScenario(
            "straggler",
            "last-stage GPU throttled to 1.5x compute time",
            straggler_stage=-1,
            straggler_factor=1.5,
        ),
        PipelineScenario(
            "slow-link",
            "one congested inter-stage link at 4x message time",
            slow_link=1,
            slow_link_factor=4.0,
            base_msg_time=0.25,
        ),
        PipelineScenario(
            "skewed",
            "linearly skewed stage loads (back stages 1.4x the front)",
            compute_skew=0.4,
        ),
        PipelineScenario(
            "contention",
            "messages serialize on shared half-duplex links",
            link_contention=True,
            base_msg_time=0.6,
        ),
    )
}


def get_scenario(scenario: "str | PipelineScenario | None") -> PipelineScenario | None:
    """Resolve a scenario given by name, instance, or None."""
    if scenario is None or isinstance(scenario, PipelineScenario):
        return scenario
    try:
        return SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; presets: {sorted(SCENARIOS)}"
        ) from None


@functools.lru_cache(maxsize=64)
def _topology(n_gpus: int, cal: SummitCalibration) -> Topology:
    """Topologies are pure in (n_gpus, cal); reuse them across the
    planner's hundreds of candidate evaluations."""
    return Topology(n_gpus, cal)


#: Partition memo. ModelSpec is not hashable (mutable layer list), so the
#: key is the same name+shape signature the autotune evaluation cache
#: uses to identify specs. Cardinality is (models x pipeline depths) —
#: tiny — and concurrent planner threads at worst recompute a pure value.
_partition_memo: dict[tuple, PartitionPlan] = {}


def _partition(spec: ModelSpec, g_inter: int) -> PartitionPlan:
    key = (spec.name, spec.param_count, spec.batch_size, spec.num_layers, g_inter)
    plan = _partition_memo.get(key)
    if plan is None:
        plan = _partition_memo[key] = balanced_partition(spec, g_inter)
    return plan


def simulate_hetero_pipeline(
    spec: ModelSpec,
    *,
    g_inter: int,
    m: int,
    mbs: int,
    t_f_model: float,
    t_b_model: float,
    n_gpus: int | None = None,
    g_tensor: int = 1,
    cal: SummitCalibration = SUMMIT,
    scenario: "str | PipelineScenario | None" = None,
    blocking_sends: bool = False,
) -> PipelineTrace:
    """Run the Figure-3 engine with model- and topology-derived inputs.

    Per-stage compute times come from the flops partitioner's actual
    stage loads (``balanced_partition``), per-link message times from the
    cluster topology with each cut's real activation payload (stage ``i``
    of a replica sits on rank ``i * g_tensor``, so hops inside a node run
    at NVLink class and hops across nodes at the calibrated cross-node
    cost), and the scenario transform is applied on top.
    """
    scenario = get_scenario(scenario)
    plan = _partition(spec, g_inter)
    t_f_stages, t_b_stages = plan.stage_times(t_f_model, t_b_model)

    if g_inter > 1:
        cut_payloads = [
            pipeline_message_bytes(mbs, spec.stage_boundary_message_elems(b))
            for b in plan.boundaries[1:-1]
        ]
        topo = _topology(n_gpus or g_inter * g_tensor, cal)
        stage_ranks = [s * g_tensor for s in range(g_inter)]
        link_times = topo.pipeline_link_times(stage_ranks, cut_payloads)
    else:
        link_times = []

    contention = False
    if scenario is not None:
        t_f_stages = scenario.scale_stage_times(t_f_stages)
        t_b_stages = scenario.scale_stage_times(t_b_stages)
        link_times = scenario.scale_link_times(link_times)
        contention = scenario.link_contention

    return simulate_pipeline(
        g_inter,
        m,
        t_f_stage=t_f_stages,
        t_b_stage=t_b_stages,
        msg_time=link_times if link_times else 0.0,
        blocking_sends=blocking_sends,
        link_contention=contention,
    )


def run_scenario(
    scenario: "str | PipelineScenario",
    g_inter: int = 4,
    n_microbatches: int = 8,
    t_f: float = 1.0,
    t_b: float = 2.0,
    msg_time: float | None = None,
    prefer_backward: bool = True,
) -> tuple[PipelineTrace, dict]:
    """Run one preset on a synthetic uniform baseline (the CLI path).

    ``t_f``/``t_b`` are the *uniform per-stage* baseline times the
    scenario deviates from; ``msg_time`` defaults to the preset's
    recommended base. Returns the trace plus a summary dict with the
    uniform-limit Eq. 6-7 reference for comparison.
    """
    sc = get_scenario(scenario)
    base_msg = sc.base_msg_time if msg_time is None else msg_time
    t_f_stages = sc.scale_stage_times([t_f] * g_inter)
    t_b_stages = sc.scale_stage_times([t_b] * g_inter)
    link_times = sc.scale_link_times([base_msg] * max(g_inter - 1, 0))
    trace = simulate_pipeline(
        g_inter,
        n_microbatches,
        t_f_stage=t_f_stages,
        t_b_stage=t_b_stages,
        msg_time=link_times if link_times else 0.0,
        prefer_backward=prefer_backward,
        link_contention=sc.link_contention,
    )
    eq7 = bubble_time(g_inter, t_f * g_inter, t_b * g_inter)
    summary = {
        "scenario": sc.name,
        "description": sc.description,
        "g_inter": g_inter,
        "n_microbatches": n_microbatches,
        "makespan": trace.makespan,
        "mean_idle": trace.mean_idle_time(),
        "max_idle": trace.max_idle_time(),
        "eq7_bubble": eq7,
        "t_f_stages": t_f_stages,
        "t_b_stages": t_b_stages,
        "link_times": link_times,
    }
    return trace, summary
