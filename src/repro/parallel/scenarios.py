"""Heterogeneity scenarios for the cluster-level cost model.

The paper's performance model (Eqs. 6-11) assumes uniform stages on
identical GPUs joined by one flat message cost, and prices every
data-parallel allreduce at pristine-ring bandwidth. Real clusters are not
that kind: a GPU can run slow (thermal throttling, a bad HBM stack), a
link can run slow (a congested InfiniBand switch), a flops-balanced
partition can still be skewed (layers don't divide evenly), messages can
contend for a shared link, and the collective phase degrades too — a
slow ring link paces every synchronized allreduce step, a stalling rank
delays the whole group, and cross-node rings lose bandwidth to fabric
congestion. A :class:`ClusterScenario` packages one such deviation as a
transform on the per-stage compute times and per-link message times that
:func:`repro.parallel.simulate_pipeline` consumes **plus** the
multipliers the ring-collective cost models apply
(:func:`repro.cluster.collectives.ring_allreduce_time` and friends take
an optional ``scenario``); :data:`SCENARIOS` holds the named presets the
CLI exposes. With every knob at its neutral value the scenario is the
identity transform and the analytic Eqs. 4-7 costs are reproduced
exactly (``tests/test_scenario_consistency.py``).

:func:`simulate_hetero_pipeline` is the bridge used by the batch model
and the autotuner's ``sim`` fidelity: it derives *actual* per-stage
times from the partitioner (flops-balanced by default, or
time-under-scenario balanced with ``partition_mode="time"``), prices
**every data-parallel replica's** stage chain from the cluster topology
(NVLink inside a node, calibrated InfiniBand across nodes) with the
payload of the actual cut, applies the scenario, and reports the
slowest replica's schedule — the one a synchronous data-parallel step
waits for.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..cluster.collectives import (
    allreduce_time,
    resolve_allreduce_algo,
    ring_allreduce_time,
)
from ..cluster.events import EventLoop, SerialResource
from ..cluster.p2p import pipeline_message_bytes
from ..cluster.topology import Topology
from ..models.spec import ModelSpec
from ..obs import OBS
from .partitioner import PartitionPlan, balanced_partition
from .perf_model import bubble_time
from .pipeline import PipelineTrace, simulate_pipeline

__all__ = [
    "ClusterScenario",
    "PipelineScenario",
    "SCENARIOS",
    "get_scenario",
    "resolve_fidelity",
    "OverlapReport",
    "overlap_exposed_collective",
    "stage_payload_fractions",
    "simulate_hetero_pipeline",
    "compare_partition_modes",
    "run_scenario",
]

PLACEMENTS = ("block", "best")


@dataclass(frozen=True)
class ClusterScenario:
    """One named deviation from the uniform/identical-GPU assumption.

    Covers both phases of a hybrid-parallel batch: the **pipeline**
    knobs transform per-stage compute times and per-link message times,
    and the **collective** knobs degrade the data-parallel ring
    collectives (the cost models in :mod:`repro.cluster.collectives`
    consult them through :meth:`collective_beta_multiplier` and
    :meth:`collective_stall_factor`). Frozen and hashable so it can
    participate in planner cache keys. Stage/link indices are resolved
    modulo the actual pipeline depth, so one preset applies at any
    ``G_inter``.
    """

    name: str
    description: str = ""
    # -- pipeline phase ------------------------------------------------
    #: multiply one stage's compute times (a throttled/straggler GPU)
    straggler_stage: int | None = None
    straggler_factor: float = 1.0
    #: multiply one link's message time (a congested switch / slow hop)
    slow_link: int | None = None
    slow_link_factor: float = 1.0
    #: linear compute ramp across stages: stage i is scaled by
    #: ``1 + skew * (2i/(G-1) - 1)`` (front stages lighter, back heavier;
    #: mean load preserved) — a skewed-partition stand-in when no real
    #: flops partition is in play
    compute_skew: float = 0.0
    #: serialize messages sharing a stage-boundary link (half-duplex)
    link_contention: bool = False
    #: message time the CLI uses when the user gives none (presets that
    #: exercise links need a non-zero base to bite)
    base_msg_time: float = 0.0
    # -- collective phase ----------------------------------------------
    #: per-link bandwidth multipliers for the data-parallel ring,
    #: resolved cyclically over the group's links; every synchronized
    #: ring step moves one chunk over every link at once, so the whole
    #: collective runs at the *slowest* link's pace
    ring_link_multipliers: tuple[float, ...] = ()
    #: a rank that stalls each allreduce step it takes part in; since
    #: ring steps are synchronized, any group containing it stretches by
    #: ``coll_straggler_factor`` (groups that pass their ranks and do
    #: not contain it are unaffected; rank-blind call sites
    #: conservatively assume membership)
    coll_straggler_rank: int | None = None
    coll_straggler_factor: float = 1.0
    #: ring bandwidth multiplier applied only when the group spans
    #: nodes (0.5 = the degraded/halved cross-node ring option)
    cross_node_bw_multiplier: float = 1.0
    #: which all-reduce schedule the collective phase is priced under —
    #: any name in :func:`repro.cluster.collectives.allreduce_algos`
    #: ("ring" is the flat NCCL baseline; "hierarchical" is the two-level
    #: reduce-scatter → cross-node ring → all-gather schedule)
    coll_algo: str = "ring"

    def __post_init__(self):
        if not isinstance(self.ring_link_multipliers, tuple):
            object.__setattr__(
                self, "ring_link_multipliers", tuple(self.ring_link_multipliers)
            )
        for knob in (
            "straggler_factor",
            "slow_link_factor",
            "coll_straggler_factor",
            "cross_node_bw_multiplier",
        ):
            if getattr(self, knob) <= 0:
                raise ValueError(f"{knob} must be positive, got {getattr(self, knob)}")
        if any(m <= 0 for m in self.ring_link_multipliers):
            raise ValueError(
                f"ring_link_multipliers must be positive, got {self.ring_link_multipliers}"
            )
        if self.coll_straggler_rank is not None and self.coll_straggler_rank < 0:
            raise ValueError(
                f"coll_straggler_rank must be non-negative, got {self.coll_straggler_rank}"
            )
        resolve_allreduce_algo(self.coll_algo)  # unknown algos raise here

    # -- pipeline transforms -------------------------------------------
    def scale_stage_times(self, times: list[float]) -> list[float]:
        g = len(times)
        out = list(times)
        if self.compute_skew and g > 1:
            ramp = [1.0 + self.compute_skew * (2.0 * i / (g - 1) - 1.0) for i in range(g)]
            out = [t * r for t, r in zip(out, ramp)]
        if self.straggler_stage is not None and g > 0:
            i = self.straggler_stage % g
            out[i] *= self.straggler_factor
        return out

    def scale_link_times(self, times: list[float]) -> list[float]:
        out = list(times)
        if self.slow_link is not None and out:
            i = self.slow_link % len(out)
            out[i] *= self.slow_link_factor
        return out

    # -- collective transforms -----------------------------------------
    def collective_beta_multiplier(
        self, group_size: int, spans_nodes: bool = True
    ) -> float:
        """Multiplier on the ring's effective per-rank bandwidth.

        A ring over ``group_size`` ranks has ``group_size`` links and
        every synchronized step uses all of them at once, so the slowest
        (smallest-multiplier) link paces the whole collective.
        """
        m = 1.0
        if self.ring_link_multipliers and group_size > 1:
            k = len(self.ring_link_multipliers)
            m *= min(self.ring_link_multipliers[i % k] for i in range(group_size))
        if spans_nodes:
            m *= self.cross_node_bw_multiplier
        return m

    def collective_stall_factor(
        self, group_size: int, ranks: "list[int] | None" = None
    ) -> float:
        """Group-wide stretch from a rank that stalls its ring steps.

        With ``ranks`` the stall applies only when the straggler is a
        member of the group; without them the caller cannot rule the
        straggler out, so membership is assumed (data-parallel groups
        typically cover the whole machine).
        """
        if self.coll_straggler_rank is None or group_size <= 1:
            return 1.0
        if ranks is not None and self.coll_straggler_rank not in ranks:
            return 1.0
        return self.coll_straggler_factor

    @property
    def degrades_collectives(self) -> bool:
        """True when any collective-phase knob is non-neutral.

        A non-default ``coll_algo`` counts: it prices the collective under
        a different schedule, so the scenario must not be canonicalised
        away as the pristine machine.
        """
        return (
            (bool(self.ring_link_multipliers) and min(self.ring_link_multipliers) != 1.0)
            or (
                self.coll_straggler_rank is not None
                and self.coll_straggler_factor != 1.0
            )
            or self.cross_node_bw_multiplier != 1.0
            or self.coll_algo != "ring"
        )

    @property
    def degrades_pipeline(self) -> bool:
        """True when any pipeline-phase knob is non-neutral.

        The closed-form analytic estimators cannot price these knobs
        (they need the event engine's per-stage schedule), so the batch
        estimator consults this to reject scenarios it would silently
        under-price — the collective knobs alone stay fair game for the
        closed form.
        """
        return (
            (self.straggler_stage is not None and self.straggler_factor != 1.0)
            or (self.slow_link is not None and self.slow_link_factor != 1.0)
            or self.compute_skew != 0.0
            or self.link_contention
        )

    @property
    def is_neutral(self) -> bool:
        """True when every knob is the identity transform.

        A neutral scenario prices every phase exactly like no scenario at
        all (``base_msg_time`` is only a CLI default, not a transform), so
        callers may canonicalise it to ``None`` — :class:`ScenarioSet`
        does, which is what makes a neutral-only robust plan bit-identical
        to a plain one.
        """
        return not self.degrades_pipeline and not self.degrades_collectives

    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "straggler_stage": self.straggler_stage,
            "straggler_factor": self.straggler_factor,
            "slow_link": self.slow_link,
            "slow_link_factor": self.slow_link_factor,
            "compute_skew": self.compute_skew,
            "link_contention": self.link_contention,
            "base_msg_time": self.base_msg_time,
            "ring_link_multipliers": list(self.ring_link_multipliers),
            "coll_straggler_rank": self.coll_straggler_rank,
            "coll_straggler_factor": self.coll_straggler_factor,
            "cross_node_bw_multiplier": self.cross_node_bw_multiplier,
            "coll_algo": self.coll_algo,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterScenario":
        return cls(**data)


#: Backwards-compatible alias: PR 2 introduced the pipeline-only
#: scenario under this name; the collective knobs extended it in place.
PipelineScenario = ClusterScenario


#: Named presets (the ``repro simulate --preset`` choices).
SCENARIOS: dict[str, ClusterScenario] = {
    s.name: s
    for s in (
        ClusterScenario(
            "uniform",
            "identical stages, free messages, pristine rings — must reproduce Eq. 4-7 exactly",
        ),
        ClusterScenario(
            "straggler",
            "last-stage GPU throttled to 1.5x compute time",
            straggler_stage=-1,
            straggler_factor=1.5,
        ),
        ClusterScenario(
            "slow-link",
            "one congested inter-stage link at 4x message time",
            slow_link=1,
            slow_link_factor=4.0,
            base_msg_time=0.25,
        ),
        ClusterScenario(
            "skewed",
            "linearly skewed stage loads (back stages 1.4x the front)",
            compute_skew=0.4,
        ),
        ClusterScenario(
            "contention",
            "messages serialize on shared half-duplex links",
            link_contention=True,
            base_msg_time=0.6,
        ),
        ClusterScenario(
            "degraded-ring",
            "cross-node allreduce rings run at half bandwidth",
            cross_node_bw_multiplier=0.5,
        ),
        ClusterScenario(
            "ring-straggler",
            "one data-parallel rank stalls every allreduce step to 1.75x",
            coll_straggler_rank=0,
            coll_straggler_factor=1.75,
        ),
        ClusterScenario(
            "slow-ring-link",
            "one quarter-bandwidth ring link paces the whole allreduce",
            ring_link_multipliers=(0.25, 1.0, 1.0, 1.0),
        ),
        ClusterScenario(
            "degraded",
            "straggler GPU plus halved cross-node rings (compound outage)",
            straggler_stage=-1,
            straggler_factor=1.5,
            cross_node_bw_multiplier=0.5,
        ),
        ClusterScenario(
            "hierarchical",
            "two-level allreduce: NVLink reduce-scatter, cross-node ring, NVLink allgather",
            coll_algo="hierarchical",
        ),
        ClusterScenario(
            "hierarchical-degraded",
            "two-level allreduce on a fabric with halved cross-node bandwidth",
            coll_algo="hierarchical",
            cross_node_bw_multiplier=0.5,
        ),
    )
}


def get_scenario(scenario: "str | ClusterScenario | None") -> ClusterScenario | None:
    """Resolve a scenario given by name, instance, or None."""
    if scenario is None or isinstance(scenario, ClusterScenario):
        return scenario
    try:
        return SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; presets: {sorted(SCENARIOS)}"
        ) from None


def resolve_fidelity(
    fidelity: "str | None",
    scenario: "str | ClusterScenario | None",
    default: str = "analytic",
    overlap: bool = False,
    placement: str = "block",
) -> "tuple[str, ClusterScenario | None]":
    """The one fidelity/scenario validation every entry point shares.

    ``fidelity=None`` means the caller left it unspecified: a scenario —
    or any other knob only the event engine can honour
    (``overlap=True``, ``placement="best"``) — then implies the
    event-driven ``"sim"`` engine, and otherwise it falls back to
    ``default``. An *explicit* ``"analytic"`` together with one of those
    knobs is a contradiction — the closed form cannot price degraded
    machines, comm/compute overlap, or optimized placements — and raises
    instead of being silently rewritten (``simulate_batch`` used to flip
    it while ``make_estimator`` raised; now both come here).
    """
    if placement not in PLACEMENTS:
        raise ValueError(
            f"unknown placement {placement!r}; choose from {PLACEMENTS}"
        )
    scenario = get_scenario(scenario)
    needs_engine = scenario is not None or overlap or placement == "best"
    if fidelity is None:
        return ("sim" if needs_engine else default), scenario
    if fidelity == "analytic":
        if scenario is not None:
            raise ValueError(
                "heterogeneity scenarios need the event-driven engine; "
                "use fidelity='sim'"
            )
        if overlap:
            raise ValueError(
                "allreduce/drain overlap needs the event-driven engine; "
                "use fidelity='sim'"
            )
        if placement == "best":
            raise ValueError(
                "placement optimization needs the event-driven engine; "
                "use fidelity='sim'"
            )
    return fidelity, scenario


@functools.lru_cache(maxsize=64)
def _topology(n_gpus: int, cal: SummitCalibration) -> Topology:
    """Topologies are pure in (n_gpus, cal); reuse them across the
    planner's hundreds of candidate evaluations."""
    return Topology(n_gpus, cal)


#: Partition memo. ModelSpec is not hashable (mutable layer list), so the
#: key is the same name+shape signature the autotune evaluation cache
#: uses to identify specs, plus the partition mode and (for time mode)
#: the scenario's per-stage rate vector. Cardinality is (models x
#: pipeline depths x rate vectors) — tiny — and concurrent planner
#: threads at worst recompute a pure value.
_partition_memo: dict[tuple, PartitionPlan] = {}


def _partition(
    spec: ModelSpec,
    g_inter: int,
    mode: str = "flops",
    stage_rates: tuple[float, ...] | None = None,
) -> PartitionPlan:
    key = (
        spec.name,
        spec.param_count,
        spec.batch_size,
        spec.num_layers,
        g_inter,
        mode,
        stage_rates,
    )
    plan = _partition_memo.get(key)
    if plan is None:
        plan = _partition_memo[key] = balanced_partition(
            spec, g_inter, mode=mode, stage_rates=stage_rates
        )
    return plan


def stage_payload_fractions(
    spec: ModelSpec,
    g_inter: int,
    partition_mode: str = "flops",
    scenario: "ClusterScenario | None" = None,
) -> tuple[float, ...]:
    """Each stage's share of the data-parallel gradient payload.

    Resolved from the same memoised :class:`PartitionPlan` the pipeline
    engines run on (including the time-balanced plan under a scenario),
    so the overlap model's per-stage all-reduce payloads can never
    disagree with the schedule that produced the trace. Stage ``s``'s
    share is its raw parameter fraction — sparse modes prune every stage
    at the same rate in this model, so parameter shares and compressed
    payload shares coincide.
    """
    stage_rates = None
    if partition_mode == "time" and scenario is not None:
        stage_rates = tuple(scenario.scale_stage_times([1.0] * g_inter))
    plan = _partition(spec, g_inter, partition_mode, stage_rates)
    return tuple(plan.param_fractions)


# ---------------------------------------------------------------------------
# allreduce/drain overlap
# ---------------------------------------------------------------------------

#: default bucket count for the overlapped data-parallel all-reduce
OVERLAP_BUCKETS = 8


@dataclass(frozen=True)
class OverlapReport:
    """Event-timeline accounting of an overlapped data-parallel all-reduce.

    ``additive`` is what the additive model charges (the full collective
    serialized after the pipeline flush); ``exposed`` is what the event
    timeline leaves visible beyond the pipeline makespan; ``hidden`` is
    their difference. ``hideable_window`` is the engine's hiding budget
    ``D`` — the span from the earliest moment any gradient bucket can be
    final (the start of the earliest stage's last backward task) to the
    pipeline makespan — so with uniform stage payloads ``max(0, additive
    - hideable_window) <= exposed < additive`` always holds (with >= 2
    buckets and non-zero backward time; one bucket degenerates to the
    additive sum). With per-stage payload fractions a param-heavy stage
    can push ``exposed`` past the uniform ``additive`` charge (``hidden``
    goes negative) — the accounting identity ``exposed + hidden ==
    additive`` holds either way.
    """

    additive: float
    exposed: float
    hidden: float
    hideable_window: float
    finish: float
    n_buckets: int
    per_stage_exposed: tuple[float, ...]


def overlap_exposed_collective(
    trace: PipelineTrace,
    comm_time: float,
    n_buckets: int = OVERLAP_BUCKETS,
    stage_fractions: "tuple[float, ...] | None" = None,
) -> OverlapReport:
    """Exposed data-parallel all-reduce time when overlapped with the drain.

    AxoNN hides bucketed gradient all-reduces behind pipeline compute:
    stage ``s``'s gradients are final once its *last* backward microbatch
    has passed over them, which happens while downstream work is still
    draining. This function replays that on the event timeline of a
    finished pipeline schedule:

    * stage ``s``'s payload splits into ``n_buckets`` buckets; the
      backward sweeps the stage's layers in reverse, so bucket ``j``
      becomes final ``(j+1)/K`` of the way through the stage's last
      backward task;
    * each stage's data-parallel ring is a FIFO
      :class:`~repro.cluster.events.SerialResource`; for stages below the
      top the ring's NIC is first occupied by the stage's final upstream
      gradient message — the all-reduce *contends with the pipeline
      drain* on the cross-node link instead of teleporting past it;
    * every bucket costs ``comm_time / K`` (the one-shot collective split
      evenly — NCCL pipelines bucketed collectives, so the per-bucket
      latency overhead is not re-charged).

    The exposed time is whatever the last bucket leaves sticking out past
    the pipeline makespan, floored at zero. ``n_buckets=1`` (gradients
    only final at the very end, sent as one message) reproduces the
    additive sum exactly; more buckets hide more, but never more than the
    ``hideable_window`` documented on :class:`OverlapReport`.

    ``stage_fractions`` refines the uniform-shard assumption: stage
    ``s``'s all-reduce busy time scales to ``comm_time * fractions[s] *
    g`` (each stage rings its *own* gradient payload — ``comm_time`` is
    priced for the uniform ``φ/G_inter`` shard, so the uniform fraction
    ``1/g`` reproduces the default exactly). Pass
    :func:`stage_payload_fractions` to weight each stage by its actual
    parameter share from the partition plan. ``additive`` keeps the
    uniform-shard charge (what the non-overlapped model bills), so a
    heavily skewed partition can in principle expose more than
    ``additive`` — the uniform additive model under-charges the heavy
    stage.
    """
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
    if comm_time < 0:
        raise ValueError(f"comm_time must be non-negative, got {comm_time}")
    g = trace.g_inter
    if stage_fractions is None:
        stage_comm = [comm_time] * g
    else:
        if len(stage_fractions) != g:
            raise ValueError(
                f"stage_fractions has {len(stage_fractions)} entries "
                f"for a {g}-stage trace"
            )
        if any(f < 0 for f in stage_fractions):
            raise ValueError(f"stage_fractions must be non-negative, got {stage_fractions}")
        stage_comm = [comm_time * f * g for f in stage_fractions]
    last_bwd = []
    for s in range(g):
        bwd = [t for t in trace.gpu_tasks(s) if t.kind == "B"]
        if not bwd:
            raise ValueError(f"stage {s} executed no backward tasks; not a full trace")
        last_bwd.append(max(bwd, key=lambda t: t.end))
    hideable = trace.makespan - min(t.start for t in last_bwd)
    if comm_time == 0.0:
        return OverlapReport(0.0, 0.0, 0.0, hideable, trace.makespan, n_buckets, (0.0,) * g)

    loop = EventLoop()
    finish = [0.0] * g
    rings: list[SerialResource] = []
    for s in range(g):
        last = last_bwd[s]
        ring = SerialResource(f"dp-ring/stage{s}", record=True)
        rings.append(ring)
        if s > 0 and trace.link_times:
            # the stage's final activation-gradient send to stage s-1 books
            # the NIC first: buckets queue behind the drain message
            ring.acquire(0.0, last.end + trace.link_times[s - 1], "drain")
        t_last = last.end - last.start
        bucket_cost = stage_comm[s] / n_buckets
        for j in range(n_buckets):
            ready = last.end - t_last * (n_buckets - 1 - j) / n_buckets

            def fire(ring=ring, s=s, j=j, bucket_cost=bucket_cost):
                _, end = ring.acquire(loop.now, bucket_cost, f"bucket{j}")
                finish[s] = max(finish[s], end)

            loop.at(ready, fire)
    loop.run()

    per_stage = tuple(max(0.0, f - trace.makespan) for f in finish)
    exposed = max(per_stage)
    if OBS.enabled:
        _emit_overlap_spans(rings, trace.makespan)
    return OverlapReport(
        additive=comm_time,
        exposed=exposed,
        hidden=comm_time - exposed,
        hideable_window=hideable,
        finish=max(finish),
        n_buckets=n_buckets,
        per_stage_exposed=per_stage,
    )


def _emit_overlap_spans(rings: "list[SerialResource]", makespan: float) -> None:
    """Emit each ring's booked windows as virtual-time spans.

    Hidden vs exposed is only known post-hoc (a bucket is *hidden* when
    its window closes before the pipeline makespan), so spans are built
    from the recorded windows after the run rather than inside
    ``acquire``. One track per stage ring, grouped so repeated overlap
    runs inside a trace stay distinct.
    """
    tracer = OBS.tracer
    grp = tracer.group("allreduce")
    hidden = exposed = 0
    for s, ring in enumerate(rings):
        track = f"{grp}/ring{s}"
        for start, end, label in ring.windows or ():
            if label == "drain":
                category = "allreduce.drain"
            elif end <= makespan:
                category = "allreduce.hidden"
                hidden += 1
            else:
                category = "allreduce.exposed"
                exposed += 1
            tracer.record(label, start, end, category=category, track=track)
    OBS.metrics.counter("overlap.buckets.hidden").inc(hidden)
    OBS.metrics.counter("overlap.buckets.exposed").inc(exposed)


def _chain_inputs(
    spec: ModelSpec,
    g_inter: int,
    mbs: int,
    t_f_model: float,
    t_b_model: float,
    partition_mode: str,
    scenario: "ClusterScenario | None",
) -> "tuple[list[float], list[float], list[int], bool]":
    """Scenario-scaled per-stage times + cut payloads shared by the
    heterogeneous engine and the placement optimizer (so the two can
    never price the same chain differently)."""
    stage_rates = None
    if partition_mode == "time" and scenario is not None:
        stage_rates = tuple(scenario.scale_stage_times([1.0] * g_inter))
    plan = _partition(spec, g_inter, partition_mode, stage_rates)
    t_f_stages, t_b_stages = plan.stage_times(t_f_model, t_b_model)
    cut_payloads = [
        pipeline_message_bytes(mbs, spec.stage_boundary_message_elems(b))
        for b in plan.boundaries[1:-1]
    ]
    contention = False
    if scenario is not None:
        t_f_stages = scenario.scale_stage_times(t_f_stages)
        t_b_stages = scenario.scale_stage_times(t_b_stages)
        contention = scenario.link_contention
    return t_f_stages, t_b_stages, cut_payloads, contention


def simulate_hetero_pipeline(
    spec: ModelSpec,
    *,
    g_inter: int,
    m: int,
    mbs: int,
    t_f_model: float,
    t_b_model: float,
    n_gpus: int | None = None,
    g_tensor: int = 1,
    cal: SummitCalibration = SUMMIT,
    scenario: "str | ClusterScenario | None" = None,
    blocking_sends: bool = False,
    partition_mode: str = "flops",
    placement: str = "block",
) -> PipelineTrace:
    """Run the Figure-3 engine with model- and topology-derived inputs.

    Per-stage compute times come from the partitioner's actual stage
    loads (``balanced_partition``; ``partition_mode="time"`` balances
    time-under-scenario instead of raw flops), per-link message times
    from the cluster topology with each cut's real activation payload,
    and the scenario transform is applied on top.

    Every data-parallel replica prices its own stage chain: replica
    ``r`` occupies ranks ``[r·mpd, (r+1)·mpd)`` with stage ``s`` rooted
    at ``r·mpd + s·g_tensor`` (``mpd = g_inter·g_tensor``), so a chain
    that straddles a node boundary pays cross-node link costs even when
    replica 0's chain is all-NVLink. The returned trace is the slowest
    replica's schedule — the one the synchronous data-parallel step
    waits for — with ``n_replicas``/``slowest_replica`` recording the
    placement sweep.

    ``placement="best"`` replaces the default contiguous block layout
    with the :mod:`repro.parallel.placement` optimizer's assignment
    (greedy node packing plus local swaps, minimizing the slowest
    replica's chain time under this same scenario); ``"block"`` keeps the
    historical layout bit-for-bit.
    """
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}; choose from {PLACEMENTS}")
    scenario = get_scenario(scenario)
    t_f_stages, t_b_stages, cut_payloads, contention = _chain_inputs(
        spec, g_inter, mbs, t_f_model, t_b_model, partition_mode, scenario
    )

    mpd = g_inter * g_tensor
    placed_traces: dict = {}
    if g_inter > 1:
        topo = _topology(n_gpus or mpd, cal)
        n_replicas = max(topo.n_gpus // mpd, 1)
        if placement == "best":
            from .placement import place_replicas  # deferred: placement wraps this module

            placed = place_replicas(
                spec,
                g_inter=g_inter,
                m=m,
                mbs=mbs,
                t_f_model=t_f_model,
                t_b_model=t_b_model,
                n_gpus=n_gpus,
                g_tensor=g_tensor,
                cal=cal,
                scenario=scenario,
                blocking_sends=blocking_sends,
                partition_mode=partition_mode,
                # hot path (one call per planner candidate): search on a
                # truncated batch, full-m verdict inside place_replicas
                search_microbatches=max(4 * g_inter, 16),
            )
            replica_ranks = [list(r) for r in placed.placement.replicas]
            placed_traces = placed.traces or {}
        else:
            replica_ranks = [
                topo.replica_pipeline_ranks(r, g_inter, g_tensor)
                for r in range(n_replicas)
            ]
        # Replicas at the same node offset share a link-time profile, so
        # the sweep dedupes to at most gpus_per_node distinct schedules.
        profiles: dict[tuple[float, ...], int] = {}
        for r, ranks in enumerate(replica_ranks):
            profiles.setdefault(tuple(topo.pipeline_link_times(ranks, cut_payloads)), r)
    else:
        n_replicas = max((n_gpus or mpd) // mpd, 1)
        profiles = {(): 0}

    slowest: PipelineTrace | None = None
    for profile, replica in profiles.items():
        link_times = list(profile)
        if scenario is not None:
            link_times = scenario.scale_link_times(link_times)
        # the placement verdict already simulated these chains at full m
        # (keyed by the scaled profile); reuse instead of re-running
        trace = placed_traces.get(tuple(link_times))
        if trace is None:
            trace = simulate_pipeline(
                g_inter,
                m,
                t_f_stage=t_f_stages,
                t_b_stage=t_b_stages,
                msg_time=link_times if link_times else 0.0,
                blocking_sends=blocking_sends,
                link_contention=contention,
            )
        if slowest is None or trace.makespan > slowest.makespan:
            slowest = trace
            slowest.slowest_replica = replica
    slowest.n_replicas = n_replicas
    return slowest


def compare_partition_modes(
    spec: ModelSpec,
    scenario: "str | ClusterScenario | None",
    *,
    g_inter: int,
    m: int,
    mbs: int = 1,
    t_f_model: float,
    t_b_model: float,
    n_gpus: int | None = None,
    cal: SummitCalibration = SUMMIT,
) -> dict[str, PipelineTrace]:
    """Price one scenario under flops- and time-balanced partitions.

    Returns ``{"flops": trace, "time": trace}`` from identical inputs so
    the makespans are directly comparable — the CLI's evidence that
    rebalancing stage boundaries against time-under-scenario pays.
    """
    return {
        mode: simulate_hetero_pipeline(
            spec,
            g_inter=g_inter,
            m=m,
            mbs=mbs,
            t_f_model=t_f_model,
            t_b_model=t_b_model,
            n_gpus=n_gpus,
            cal=cal,
            scenario=scenario,
            partition_mode=mode,
        )
        for mode in ("flops", "time")
    }


def run_scenario(
    scenario: "str | ClusterScenario",
    g_inter: int = 4,
    n_microbatches: int = 8,
    t_f: float = 1.0,
    t_b: float = 2.0,
    msg_time: float | None = None,
    prefer_backward: bool = True,
) -> tuple[PipelineTrace, dict]:
    """Run one preset on a synthetic uniform baseline (the CLI path).

    ``t_f``/``t_b`` are the *uniform per-stage* baseline times the
    scenario deviates from; ``msg_time`` defaults to the preset's
    recommended base. Returns the trace plus a summary dict with the
    uniform-limit Eq. 6-7 reference for comparison and — for presets
    that degrade the collective phase — the slowdown of a reference
    data-parallel allreduce (100 MiB over 8 ranks).
    """
    sc = get_scenario(scenario)
    base_msg = sc.base_msg_time if msg_time is None else msg_time
    t_f_stages = sc.scale_stage_times([t_f] * g_inter)
    t_b_stages = sc.scale_stage_times([t_b] * g_inter)
    link_times = sc.scale_link_times([base_msg] * max(g_inter - 1, 0))
    trace = simulate_pipeline(
        g_inter,
        n_microbatches,
        t_f_stage=t_f_stages,
        t_b_stage=t_b_stages,
        msg_time=link_times if link_times else 0.0,
        prefer_backward=prefer_backward,
        link_contention=sc.link_contention,
    )
    eq7 = bubble_time(g_inter, t_f * g_inter, t_b * g_inter)
    ref_bytes, ref_group = 100 * 2**20, 8
    ar_base = ring_allreduce_time(ref_bytes, ref_group)
    # the dispatcher honours the scenario's coll_algo knob, so presets
    # like "hierarchical" report their schedule's time (a speedup shows
    # as a slowdown factor below 1)
    ar_scenario = allreduce_time(ref_bytes, ref_group, scenario=sc)
    summary = {
        "scenario": sc.name,
        "description": sc.description,
        "g_inter": g_inter,
        "n_microbatches": n_microbatches,
        "makespan": trace.makespan,
        "mean_idle": trace.mean_idle_time(),
        "max_idle": trace.max_idle_time(),
        "eq7_bubble": eq7,
        "t_f_stages": t_f_stages,
        "t_b_stages": t_b_stages,
        "link_times": link_times,
        "allreduce_ref": ar_base,
        "allreduce_scenario": ar_scenario,
        "allreduce_slowdown": ar_scenario / ar_base,
    }
    return trace, summary
