"""Data-parallel gradient synchronisation cost model (paper Section IV-A).

AxoNN all-reduces the fp16 gradients of each GPU's pipeline stage among the
``G_data`` replicas after the pipeline flush. SAMO shrinks the payload to
the unpruned values only — "directly invoking AxoNN's all-reduce calls on
the compressed tensor".

For *pure data parallel* CNN runs, frameworks bucket the all-reduce and
overlap it with backward compute (the standard DDP optimisation); the
exposed time is what remains after overlap.
"""

from __future__ import annotations

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..cluster.collectives import allreduce_time
from ..models.spec import ModelSpec

__all__ = ["gradient_bytes_per_gpu", "collective_time"]


def gradient_bytes_per_gpu(
    spec: ModelSpec,
    g_inter: int,
    sparse: bool,
    sparsity: float = 0.9,
) -> int:
    """fp16 gradient payload each GPU contributes to the all-reduce.

    Dense: all ``φ / G_inter`` stage parameters. Sparse (SAMO/Sputnik):
    only the kept values of prunable tensors plus dense non-prunables.
    """
    phi = spec.param_count
    phi_p = spec.prunable_count
    if sparse:
        kept = round((1.0 - sparsity) * phi_p) + (phi - phi_p)
        return 2 * kept // g_inter
    return 2 * phi // g_inter


def collective_time(
    spec: ModelSpec,
    g_inter: int,
    g_data: int,
    sparse: bool,
    sparsity: float = 0.9,
    overlap_with_backward: float = 0.0,
    backward_compute_time: float = 0.0,
    cal: SummitCalibration = SUMMIT,
    scenario=None,
) -> float:
    """Exposed data-parallel all-reduce seconds per batch.

    ``overlap_with_backward`` in [0,1] hides that fraction of the
    all-reduce under ``backward_compute_time`` (pure-DP bucketed overlap);
    hybrid pipeline runs pass 0 (the sync happens after the flush —
    unless the overlap-aware event engine is pricing the batch, which
    hides the bucketed all-reduce behind the pipeline drain instead, see
    :func:`repro.parallel.scenarios.overlap_exposed_collective`).
    ``scenario`` (a :class:`~repro.parallel.scenarios.ClusterScenario`
    or preset name) degrades the collective — slow ring links, a
    stalling rank, halved cross-node bandwidth — and selects the
    all-reduce schedule through its ``coll_algo`` knob (the flat ring by
    default, or the two-level hierarchical schedule); neutral knobs
    reproduce the pristine ring exactly.
    """
    from .scenarios import get_scenario  # late: scenarios imports this module's siblings

    nbytes = gradient_bytes_per_gpu(spec, g_inter, sparse, sparsity)
    raw = allreduce_time(nbytes, g_data, cal, scenario=get_scenario(scenario))
    if overlap_with_backward <= 0.0:
        return raw
    hidden = min(raw * overlap_with_backward, backward_compute_time)
    return max(raw - hidden, 0.0)
