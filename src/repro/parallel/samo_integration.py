"""AxoNN+SAMO — the paper's system, on both execution paths.

Two complementary entry points:

* :func:`simulate_samo_batch` — performance simulation on the calibrated
  Summit model (feeds Figs. 5-8, Table II);
* :class:`DataParallelSAMOTrainer` — a *functional* multi-rank data-
  parallel trainer over the in-process communicator: every rank holds a
  replica, computes on its batch shard, all-reduces the **compressed**
  fp16 gradients (Section IV-A), and runs the SAMO optimizer step. This is
  the executable proof that sparse all-reduce + compressed state training
  is exactly equivalent to dense training of the masked network.
"""

from __future__ import annotations

import numpy as np

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..comm.backend import Communicator
from ..core.config import SAMOConfig
from ..core.samo_optimizer import SAMOOptimizer
from ..models.spec import ModelSpec
from ..pruning.masks import MaskSet
from ..tensor.module import Module
from .perf_model import BatchBreakdown

__all__ = ["simulate_samo_batch", "DataParallelSAMOTrainer"]


def simulate_samo_batch(
    spec: ModelSpec,
    n_gpus: int,
    sparsity: float = 0.9,
    mbs: int = 1,
    cal: SummitCalibration = SUMMIT,
) -> BatchBreakdown:
    """Batch-time breakdown of AxoNN+SAMO on the simulated machine."""
    from .axonn import simulate_batch

    return simulate_batch(spec, n_gpus, "axonn+samo", sparsity=sparsity, mbs=mbs, cal=cal)


class DataParallelSAMOTrainer:
    """Rank-local SAMO training with sparse gradient all-reduce.

    One instance runs inside each rank's thread. ``train_step`` performs:
    forward/backward on the local shard -> compress gradients ->
    all-reduce the compressed fp16 buffers -> average -> SAMO step.
    """

    def __init__(
        self,
        comm: Communicator,
        model: Module,
        mask: MaskSet,
        config: SAMOConfig | None = None,
    ):
        self.comm = comm
        self.model = model
        self.optimizer = SAMOOptimizer(model, mask, config)
        self.bytes_communicated = 0

    def train_step(self, loss_fn, *batch) -> float:
        """One data-parallel SAMO step; returns the local loss value."""
        self.optimizer.zero_grad()
        loss = loss_fn(self.model, *batch)
        loss.backward()
        self.optimizer.compress_gradients()
        # Sparse all-reduce: only the compressed values travel. fp16
        # buffers are summed in fp32 for associativity, then written back.
        for _, g in self.optimizer.compressed_gradient_views():
            g32 = g.astype(np.float32)
            total = self.comm.allreduce(g32)
            g[...] = (total / self.comm.size).astype(g.dtype)
            self.bytes_communicated += g.nbytes
        self.optimizer.step()
        return loss.item()
