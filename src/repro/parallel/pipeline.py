"""Event-driven simulation of the inter-layer (pipeline) schedule.

Reproduces the paper's Figure 3 mechanics: ``G_inter`` GPUs process ``m``
microbatches with 1F1B-style message-driven scheduling (backward work is
preferred when available — AxoNN's message-driven scheduler behaves this
way in steady state). Produces a full schedule trace for visualisation and
per-GPU busy/idle accounting whose idle time matches the paper's Eq. 6-7
bubble formula when messages are free and stages uniform.

Beyond the paper's uniform-stage setting the engine is
**heterogeneity-aware**: ``t_f_stage``/``t_b_stage`` accept per-stage
sequences (straggler GPUs, skewed flops partitions), ``msg_time`` accepts
a per-link sequence (NVLink hops inside a node vs InfiniBand hops across
nodes, derived from :meth:`repro.cluster.Topology.pipeline_link_times`),
and ``link_contention=True`` serializes messages that share a link
(half-duplex: the forward activation and backward gradient crossing the
same stage boundary queue behind each other).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, floor
from typing import Sequence

from ..cluster.events import EventLoop, SerialResource
from ..obs import OBS

__all__ = ["TaskRecord", "PipelineTrace", "simulate_pipeline"]


@dataclass(frozen=True)
class TaskRecord:
    """One executed forward/backward task."""

    gpu: int
    kind: str  # 'F' or 'B'
    microbatch: int
    start: float
    end: float


@dataclass
class PipelineTrace:
    """Result of a pipeline simulation."""

    g_inter: int
    n_microbatches: int
    tasks: list[TaskRecord] = field(default_factory=list)
    makespan: float = 0.0
    #: per-GPU maximum of concurrently-held forward activations — the
    #: activation-memory proxy (1F1B bounds it at ``g_inter - stage``,
    #: GPipe-style unbounded scheduling lets it reach ``m``)
    peak_in_flight: list[int] = field(default_factory=list)
    #: the (possibly heterogeneous) per-stage compute times the run used
    t_f_stages: list[float] = field(default_factory=list)
    t_b_stages: list[float] = field(default_factory=list)
    #: per-link message transfer times (``g_inter - 1`` entries)
    link_times: list[float] = field(default_factory=list)
    #: per-link seconds the link spent occupied (contended runs only)
    link_busy: list[float] = field(default_factory=list)
    #: per-link recorded ``(start, end, label)`` transfer windows — the
    #: one source of truth both :meth:`ascii` (``links=True``) and the
    #: Chrome exporter render from
    link_windows: list[list[tuple[float, float, str]]] = field(default_factory=list)
    #: data-parallel replicas whose chains were priced to produce this
    #: trace (``simulate_hetero_pipeline`` keeps the slowest replica's
    #: schedule; a bare ``simulate_pipeline`` call is one chain)
    n_replicas: int = 1
    #: index of the replica whose chain this trace belongs to
    slowest_replica: int = 0

    def gpu_tasks(self, gpu: int) -> list[TaskRecord]:
        return sorted((t for t in self.tasks if t.gpu == gpu), key=lambda t: t.start)

    def busy_time(self, gpu: int) -> float:
        return sum(t.end - t.start for t in self.gpu_tasks(gpu))

    def idle_time(self, gpu: int) -> float:
        """Idle (bubble + message wait) within the batch span."""
        return self.makespan - self.busy_time(gpu)

    def mean_idle_time(self) -> float:
        return sum(self.idle_time(g) for g in range(self.g_inter)) / self.g_inter

    def max_idle_time(self) -> float:
        return max(self.idle_time(g) for g in range(self.g_inter))

    def ascii(self, time_unit: float, links: bool = False) -> str:
        """Render the schedule like the paper's Figure 3.

        Each column is ``time_unit`` seconds; forward cells print the
        microbatch id, backward cells print it bracketed. The column
        count rounds the makespan *up* so tasks ending inside a partial
        final interval still render. ``links=True`` adds one row per
        stage-boundary link rendered from the same recorded
        ``link_windows`` the Chrome exporter reads (``###`` marks an
        occupied column).
        """
        lines = []
        n_cols = max(1, ceil(self.makespan / time_unit - 1e-9))
        for g in range(self.g_inter):
            row = ["  ."] * n_cols
            for t in self.gpu_tasks(g):
                c0 = floor(t.start / time_unit + 1e-9)
                c1 = ceil(t.end / time_unit - 1e-9)
                for c in range(c0, min(c1, n_cols)):
                    cell = f"{t.microbatch:>3}" if t.kind == "F" else f"[{t.microbatch}]".rjust(3)
                    row[c] = cell
            lines.append(f"GPU {g}: " + "".join(row))
        if links:
            for i, windows in enumerate(self.link_windows):
                row = ["  ."] * n_cols
                for start, end, _label in windows:
                    c0 = floor(start / time_unit + 1e-9)
                    c1 = ceil(end / time_unit - 1e-9)
                    for c in range(c0, min(c1, n_cols)):
                        row[c] = "###"
                lines.append(f"LNK {i}: " + "".join(row))
        return "\n".join(lines)


def _per_stage(value: float | Sequence[float], n: int, name: str) -> list[float]:
    """Normalise a scalar-or-sequence time parameter to ``n`` floats."""
    if isinstance(value, (int, float)):
        out = [float(value)] * n
    else:
        out = [float(v) for v in value]
        if len(out) != n:
            raise ValueError(f"{name} has {len(out)} entries, expected {n}")
    for v in out:
        if v < 0:
            raise ValueError(f"{name} entries must be non-negative, got {v}")
    return out


def simulate_pipeline(
    g_inter: int,
    n_microbatches: int,
    t_f_stage: float | Sequence[float],
    t_b_stage: float | Sequence[float],
    msg_time: float | Sequence[float] = 0.0,
    blocking_sends: bool = False,
    prefer_backward: bool = True,
    bound_in_flight: bool = True,
    link_contention: bool = False,
) -> PipelineTrace:
    """Simulate one batch through a ``g_inter``-stage pipeline.

    Parameters
    ----------
    g_inter:
        Pipeline depth (stages == GPUs).
    n_microbatches:
        Microbatches per batch shard (``m`` in the perf model).
    t_f_stage, t_b_stage:
        Per-stage forward/backward compute times of one microbatch.
        A scalar means uniform stages (the paper's setting); a sequence
        of length ``g_inter`` gives each stage its own time (straggler
        GPUs, skewed flops partitions).
    msg_time:
        Transfer time of one activation/gradient message between adjacent
        stages (0 isolates the pure bubble behaviour of Eq. 6-7). A
        sequence of length ``g_inter - 1`` prices each link separately
        (link ``i`` connects stages ``i`` and ``i + 1``).
    blocking_sends:
        AxoNN uses **asynchronous messaging** (paper Section II-E): a GPU
        hands its activation to the transport and immediately starts the
        next task (the default). With ``blocking_sends=True`` the sender
        stays busy for the transfer — the synchronous-pipeline behaviour
        AxoNN improves on.
    prefer_backward:
        AxoNN's **message-driven scheduling** prefers backward work in
        steady state (1F1B, the default). ``False`` processes work in
        plain arrival order, which delays downstream gradients and
        lengthens the drain phase.
    bound_in_flight:
        The 1F1B warmup window caps in-flight forwards at
        ``g_inter - stage`` (bounding activation memory). ``False``
        removes the cap — GPipe-style all-forwards-then-all-backwards,
        whose peak activation count grows with ``m`` instead.
    link_contention:
        Serialize messages sharing a stage-boundary link (half-duplex
        FIFO): a forward activation and a backward gradient crossing the
        same boundary — or two back-to-back sends from a stage faster
        than its link — queue instead of overlapping. The default keeps
        every transfer independent (full-duplex, infinite injection).

    The default configuration is AxoNN's; the flags exist so the
    scheduling ablation can price each optimization separately.
    """
    if g_inter < 1 or n_microbatches < 1:
        raise ValueError("g_inter and n_microbatches must be >= 1")
    t_f = _per_stage(t_f_stage, g_inter, "t_f_stage")
    t_b = _per_stage(t_b_stage, g_inter, "t_b_stage")
    link = _per_stage(msg_time, max(g_inter - 1, 0), "msg_time") if g_inter > 1 else []
    links = [SerialResource(f"link{i}", record=True) for i in range(g_inter - 1)]

    loop = EventLoop()
    trace = PipelineTrace(
        g_inter=g_inter,
        n_microbatches=n_microbatches,
        t_f_stages=t_f,
        t_b_stages=t_b,
        link_times=link,
    )

    fwd_ready: list[list[int]] = [[] for _ in range(g_inter)]
    bwd_ready: list[list[int]] = [[] for _ in range(g_inter)]
    arrival_order: list[list[tuple[str, int]]] = [[] for _ in range(g_inter)]
    busy = [False] * g_inter
    in_flight = [0] * g_inter  # forwards not yet backwarded on this stage

    # Stage 0 starts with every microbatch available for forward.
    fwd_ready[0] = list(range(n_microbatches))
    arrival_order[0] = [("F", mb) for mb in range(n_microbatches)]

    peak = [0] * g_inter

    def _fwd_allowed(g: int) -> bool:
        if not bound_in_flight:
            return True
        return in_flight[g] < max(g_inter - g, 1)

    def try_start(g: int) -> None:
        if busy[g]:
            return
        if prefer_backward:
            if bwd_ready[g]:
                start_task(g, "B", bwd_ready[g].pop(0))
            elif fwd_ready[g] and _fwd_allowed(g):
                start_task(g, "F", fwd_ready[g].pop(0))
        else:
            # Arrival-order (FIFO) service; a warmup-blocked forward at the
            # head lets later-arrived work run (no head-of-line deadlock).
            for i, (kind, mb) in enumerate(arrival_order[g]):
                if kind == "F" and not _fwd_allowed(g):
                    continue
                arrival_order[g].pop(i)
                (fwd_ready if kind == "F" else bwd_ready)[g].remove(mb)
                start_task(g, kind, mb)
                return

    def start_task(g: int, kind: str, mb: int) -> None:
        busy[g] = True
        dur = t_f[g] if kind == "F" else t_b[g]
        start = loop.now
        if kind == "F":
            in_flight[g] += 1
            peak[g] = max(peak[g], in_flight[g])

        def release(end: float) -> None:
            busy[g] = False
            trace.tasks.append(TaskRecord(g, kind, mb, start, end))
            if kind == "B":
                in_flight[g] -= 1
            try_start(g)

        def compute_done():
            now = loop.now
            if kind == "F":
                if g + 1 < g_inter:
                    link_id, arrive = g, (lambda: arrive_fwd(g + 1, mb))
                else:
                    # last stage: backward starts immediately after forward
                    bwd_ready[g].append(mb)
                    arrival_order[g].append(("B", mb))
                    release(now)
                    return
            else:
                if g > 0:
                    link_id, arrive = g - 1, (lambda: arrive_bwd(g - 1, mb))
                else:
                    release(now)
                    return
            # Hand the message to the transport. Contended links book a
            # FIFO window; otherwise the transfer starts immediately
            # (full-duplex, so the window is recorded without queueing).
            label = f"{kind}{mb}"
            if link_contention:
                _, arrival_t = links[link_id].acquire(now, link[link_id], label)
            else:
                arrival_t = now + link[link_id]
                links[link_id].book(now, arrival_t, label)
            loop.at(arrival_t, arrive)
            if blocking_sends:
                # Synchronous send: the GPU stays occupied (and its task
                # record extends) until the transfer completes.
                loop.at(arrival_t, lambda: release(loop.now))
            else:
                release(now)

        loop.schedule(dur, compute_done)

    def arrive_fwd(g: int, mb: int) -> None:
        fwd_ready[g].append(mb)
        arrival_order[g].append(("F", mb))
        try_start(g)

    def arrive_bwd(g: int, mb: int) -> None:
        bwd_ready[g].append(mb)
        arrival_order[g].append(("B", mb))
        try_start(g)

    loop.schedule(0.0, lambda: try_start(0))
    trace.makespan = loop.run()
    trace.peak_in_flight = peak
    trace.link_busy = [r.busy_time for r in links]
    trace.link_windows = [r.windows or [] for r in links]
    if len(trace.tasks) != 2 * g_inter * n_microbatches:
        raise RuntimeError(
            f"pipeline deadlock: executed {len(trace.tasks)} of "
            f"{2 * g_inter * n_microbatches} tasks"
        )
    if OBS.enabled:
        _emit_pipeline_spans(trace)
    return trace


def _emit_pipeline_spans(trace: PipelineTrace) -> None:
    """Emit the finished schedule as virtual-time spans.

    One track per stage (``pipeline#k/stage0``, ...) and per link
    (``pipeline#k/link0``) — the ``group`` prefix keeps repeated runs
    inside one trace (every data-parallel replica profile) on their own
    tracks. Emission order is deterministic: stages then links, each
    sorted by start time.
    """
    tracer = OBS.tracer
    grp = tracer.group("pipeline")
    for g in range(trace.g_inter):
        track = f"{grp}/stage{g}"
        for t in trace.gpu_tasks(g):
            tracer.record(
                f"{t.kind}{t.microbatch}",
                t.start,
                t.end,
                category="pipeline.forward" if t.kind == "F" else "pipeline.backward",
                track=track,
                mb=t.microbatch,
            )
    for i, windows in enumerate(trace.link_windows):
        track = f"{grp}/link{i}"
        for start, end, label in sorted(windows):
            tracer.record(
                label or "msg", start, end, category="link", track=track
            )
