"""ZeRO stage-1 optimizer-state sharding (executable + memory model).

DeepSpeed-3D's data-parallel dimension "uses the ZeRO optimizer to shard
optimizer state memory across data parallel ranks" (paper Section V-B).
This module executes ZeRO-1 over the thread communicator and provides
the Rajbhandari et al. memory model for all three stages, making the
baseline's memory story as real as SAMO's:

* every rank keeps the full fp16 parameters and fp16 gradients;
* the fp32 master copy and the Adam moments are *sharded* — rank ``r``
  owns an equal slice of the flattened parameter space;
* per step: all-reduce(mean) the fp16 gradients (ZeRO-1 keeps the full
  gradient, unlike stage 2's reduce-scatter), update the local shard in
  fp32, then all-gather the updated fp16 parameters.

SAMO and ZeRO are complementary answers to the same 20φ problem: ZeRO
divides the optimizer term by ``G_data``; SAMO multiplies every term but
θ16 by ``(1-p)``. :func:`zero_memory_bytes` vs
:func:`repro.core.memory_model.samo_model_state_bytes` quantifies the
comparison (see the ablation bench).
"""

from __future__ import annotations

import numpy as np

from ..comm.backend import Communicator
from ..optim.kernels import adam_kernel
from ..tensor.module import Module

__all__ = ["Zero1DataParallel", "zero_memory_bytes"]


def zero_memory_bytes(phi: int, g_data: int, stage: int = 1) -> int:
    """Model-state bytes per GPU under ZeRO (Rajbhandari et al., Fig. 1).

    With Adam mixed precision the 20φ total splits into 2φ (θ16) + 2φ
    (∇θ16) + 16φ (fp32 master + two moments, the "K=12" term plus fp32
    gradient... the paper's accounting folds ∇θ32 into the sharded
    optimizer partition):

    * stage 1 shards the optimizer states:       4φ + 16φ/N
    * stage 2 also shards the fp16 gradients:    2φ + 18φ/N
    * stage 3 also shards the fp16 parameters:   20φ/N
    """
    if g_data < 1:
        raise ValueError("g_data must be >= 1")
    if stage == 1:
        return 4 * phi + (16 * phi) // g_data
    if stage == 2:
        return 2 * phi + (18 * phi) // g_data
    if stage == 3:
        return (20 * phi) // g_data
    raise ValueError(f"ZeRO stage must be 1, 2 or 3, got {stage}")


class Zero1DataParallel:
    """Executable ZeRO-1 data parallelism for one model replica.

    Each rank of ``comm`` holds a full replica of ``model`` (identical
    initialisation is the caller's contract, as with any DDP) and owns the
    ``comm.rank``-th slice of the flattened fp32 master/moment storage.

    Usage per batch::

        loss = loss_fn(model)     # forward/backward on the local shard
        loss.backward()
        zero.step()               # sync grads, sharded update, all-gather
    """

    def __init__(
        self,
        model: Module,
        comm: Communicator,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.model = model
        self.comm = comm
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0

        self._params = [p for _, p in model.named_parameters()]
        self._sizes = [p.data.size for p in self._params]
        self._total = int(np.sum(self._sizes))
        # Pad so every rank owns an equal slice (MPI Allgather contract).
        self._padded = -(-self._total // comm.size) * comm.size
        self._shard_size = self._padded // comm.size
        lo = comm.rank * self._shard_size
        hi = lo + self._shard_size

        flat = np.zeros(self._padded, dtype=np.float32)
        flat[: self._total] = np.concatenate(
            [p.data.reshape(-1).astype(np.float32) for p in self._params]
        )
        #: this rank's fp32 master slice and Adam moments — the *only*
        #: fp32 state kept, 1/N of the replicated-Adam footprint.
        self.master = flat[lo:hi].copy()
        self.m = np.zeros_like(self.master)
        self.v = np.zeros_like(self.master)
        self._lo, self._hi = lo, hi

    # ------------------------------------------------------------------
    def _flat_grads(self) -> np.ndarray:
        out = np.zeros(self._padded, dtype=np.float32)
        off = 0
        for p, n in zip(self._params, self._sizes):
            if p.grad is not None:
                out[off : off + n] = p.grad.reshape(-1)
            off += n
        return out

    def shard_bytes(self) -> int:
        """fp32 optimizer bytes this rank actually stores."""
        return self.master.nbytes + self.m.nbytes + self.v.nbytes

    def step(self, lr: float | None = None) -> None:
        """Gradient sync + sharded Adam update + parameter all-gather."""
        lr = self.lr if lr is None else lr
        self.step_count += 1
        grad = self.comm.allreduce(self._flat_grads(), op="mean")
        adam_kernel(
            self.master,
            grad[self._lo : self._hi],
            self.m,
            self.v,
            step=self.step_count,
            lr=lr,
            beta1=self.betas[0],
            beta2=self.betas[1],
            eps=self.eps,
            weight_decay=self.weight_decay,
            decoupled=True,
        )
        # All-gather the updated slices in fp16 (the wire precision), then
        # scatter back into the parameter tensors.
        shards = self.comm.allgather(self.master.astype(np.float16))
        flat16 = np.concatenate(shards)[: self._total]
        off = 0
        for p, n in zip(self._params, self._sizes):
            p.data[...] = flat16[off : off + n].reshape(p.data.shape).astype(np.float32)
            p.grad = None
            off += n

    def __repr__(self) -> str:
        return (
            f"Zero1DataParallel(rank={self.comm.rank}/{self.comm.size}, "
            f"params={self._total}, shard={self._shard_size})"
        )
