"""DeepSpeed-3D baseline (Microsoft; ZeRO + Megatron + pipeline).

A thin, documented wrapper over the shared engine in
:mod:`repro.parallel.axonn`: DeepSpeed-3D partitions like the dense mode
(its Megatron intra-layer + pipeline footprint needs the same model-
parallel degree), runs the same ring collectives (both frameworks sit on
NCCL — the paper's explanation for identical CNN curves in Figure 5), and
pays a calibrated exposed-p2p penalty for its synchronous (non message-
driven) pipeline schedule.

ZeRO-1 optimizer-state sharding is accounted in
:func:`repro.parallel.partitioner.model_state_bytes` (mode ``ZERO1``) for
memory reports.
"""

from __future__ import annotations

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..models.spec import ModelSpec
from .perf_model import BatchBreakdown

__all__ = ["simulate_deepspeed_batch"]


def simulate_deepspeed_batch(
    spec: ModelSpec,
    n_gpus: int,
    sparsity: float = 0.9,
    mbs: int = 1,
    cal: SummitCalibration = SUMMIT,
) -> BatchBreakdown:
    """Batch-time breakdown of DeepSpeed-3D on the simulated machine."""
    from .axonn import simulate_batch

    return simulate_batch(spec, n_gpus, "deepspeed-3d", sparsity=sparsity, mbs=mbs, cal=cal)
