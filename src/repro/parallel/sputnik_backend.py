"""Sputnik sparse-kernel baseline (Gale et al., SC'20) integrated in AxoNN.

The paper builds this baseline to show that swapping dense kernels for
state-of-the-art sparse ones is *not* how to exploit pruning: Sputnik's
spMM/sDDMM at 90% sparsity run well below dense tensor-core GEMMs even
though they execute 10x fewer flops.

In the simulator: sparse storage gives Sputnik a small ``G_inter`` (like
SAMO) and a sparse gradient all-reduce, but every layer's compute time is
the dense time multiplied by the calibrated Sputnik slowdown. Per the
paper's fair-flops convention (Section V-C) reported throughput uses the
dense flop count. Sparse convolutions are unsupported, so CNN specs are
rejected (also per the paper).
"""

from __future__ import annotations

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..models.spec import ModelSpec
from .perf_model import BatchBreakdown

__all__ = ["simulate_sputnik_batch"]


def simulate_sputnik_batch(
    spec: ModelSpec,
    n_gpus: int,
    sparsity: float = 0.9,
    mbs: int = 1,
    cal: SummitCalibration = SUMMIT,
) -> BatchBreakdown:
    """Batch-time breakdown of Sputnik-in-AxoNN on the simulated machine."""
    from .axonn import simulate_batch

    return simulate_batch(spec, n_gpus, "sputnik", sparsity=sparsity, mbs=mbs, cal=cal)
