"""Parallel deep-learning frameworks on the simulated cluster.

* :func:`simulate_batch` / :func:`strong_scaling` — the shared engine
  (AxoNN, AxoNN+SAMO, DeepSpeed-3D, Sputnik) producing Figure 8-style
  batch breakdowns;
* :mod:`repro.parallel.pipeline` — event-driven 1F1B schedule simulation
  (Figure 3);
* :mod:`repro.parallel.partitioner` — memory accounting and ``G_inter``
  selection (Section IV-B);
* :class:`DataParallelSAMOTrainer` — functional multi-rank SAMO training
  over the thread communicator.
"""

from .axonn import FRAMEWORKS, simulate_batch, strong_scaling
from .data_parallel import collective_time, gradient_bytes_per_gpu
from .deepspeed3d import simulate_deepspeed_batch
from .megatron import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelMLP,
    copy_to_tensor_parallel,
    reduce_from_tensor_parallel,
    shard_dim,
)
from .partitioner import (
    PartitionPlan,
    StorageMode,
    activation_bytes_per_gpu,
    balanced_partition,
    choose_g_inter,
    memory_per_gpu,
    model_state_bytes,
)
from .perf_model import (
    BatchBreakdown,
    ParallelConfig,
    bubble_time,
    microbatches_per_gpu,
    transmission_time,
)
from .pipeline import PipelineTrace, TaskRecord, simulate_pipeline
from .pipeline_exec import (
    BucketedGradSync,
    PipelineStageTrainer,
    StageModule,
    partition_module_list,
)
from .placement import (
    Placement,
    PlacementResult,
    block_placement,
    optimize_placement,
    place_replicas,
)
from .scenarios import (
    SCENARIOS,
    ClusterScenario,
    OverlapReport,
    PipelineScenario,
    compare_partition_modes,
    get_scenario,
    overlap_exposed_collective,
    resolve_fidelity,
    run_scenario,
    simulate_hetero_pipeline,
)
from .samo_integration import DataParallelSAMOTrainer, simulate_samo_batch
from .sputnik_backend import simulate_sputnik_batch
from .zero import Zero1DataParallel, zero_memory_bytes

__all__ = [
    "FRAMEWORKS",
    "simulate_batch",
    "strong_scaling",
    "simulate_samo_batch",
    "simulate_deepspeed_batch",
    "simulate_sputnik_batch",
    "DataParallelSAMOTrainer",
    "BatchBreakdown",
    "ParallelConfig",
    "bubble_time",
    "transmission_time",
    "microbatches_per_gpu",
    "simulate_pipeline",
    "simulate_hetero_pipeline",
    "compare_partition_modes",
    "OverlapReport",
    "overlap_exposed_collective",
    "Placement",
    "PlacementResult",
    "block_placement",
    "optimize_placement",
    "place_replicas",
    "BucketedGradSync",
    "ClusterScenario",
    "PipelineScenario",
    "SCENARIOS",
    "get_scenario",
    "resolve_fidelity",
    "run_scenario",
    "PipelineTrace",
    "TaskRecord",
    "PipelineStageTrainer",
    "StageModule",
    "partition_module_list",
    "StorageMode",
    "model_state_bytes",
    "memory_per_gpu",
    "activation_bytes_per_gpu",
    "choose_g_inter",
    "balanced_partition",
    "PartitionPlan",
    "collective_time",
    "gradient_bytes_per_gpu",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TensorParallelMLP",
    "copy_to_tensor_parallel",
    "reduce_from_tensor_parallel",
    "shard_dim",
    "Zero1DataParallel",
    "zero_memory_bytes",
]
