"""Executable intra-layer (tensor) parallelism, Megatron style.

DeepSpeed-3D — the paper's strongest baseline — uses MegatronLM's
intra-layer sharding for transformer layers (Section V-B). The *cost*
side of that is modelled in :mod:`repro.parallel.deepspeed3d`; this
module executes the algorithm over thread ranks so the baseline is
functionally real, not just analytic.

Megatron's two conjugate communication operators (Shoeybi et al. §3):

* ``f`` — :func:`copy_to_tensor_parallel`: identity forward, all-reduce
  backward. Placed where a replicated activation enters a column-split
  GEMM: every rank consumes the same input, so input gradients from all
  ranks must sum.
* ``g`` — :func:`reduce_from_tensor_parallel`: all-reduce forward,
  identity backward. Placed where row-split partial outputs combine.

A two-layer MLP block then parallelises with exactly one ``g`` in the
forward and one ``f`` in the backward:

    y = RowParallel(act(ColumnParallel(x)))

Column-parallel splits ``W1`` by output neurons (no communication, the
activation stays sharded); row-parallel splits ``W2`` by input neurons
and all-reduces the partial sums.
"""

from __future__ import annotations

import numpy as np

from ..comm.backend import Communicator
from ..tensor import functional as F
from ..tensor.module import Module, Parameter
from ..tensor.tensor import Tensor

__all__ = [
    "copy_to_tensor_parallel",
    "reduce_from_tensor_parallel",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TensorParallelMLP",
    "shard_dim",
]


def shard_dim(total: int, world: int) -> int:
    """Per-rank extent of an evenly sharded dimension (must divide)."""
    if total % world:
        raise ValueError(f"dimension {total} not divisible by world size {world}")
    return total // world


def copy_to_tensor_parallel(x: Tensor, comm: Communicator) -> Tensor:
    """Megatron's ``f``: identity forward, all-reduce(sum) backward."""

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(comm.allreduce(g, op="sum"))

    return Tensor._from_op(x.data, (x,), _bwd)


def reduce_from_tensor_parallel(x: Tensor, comm: Communicator) -> Tensor:
    """Megatron's ``g``: all-reduce(sum) forward, identity backward."""
    out_data = comm.allreduce(x.data, op="sum")

    def _bwd(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(g)

    return Tensor._from_op(out_data, (x,), _bwd)


class ColumnParallelLinear(Module):
    """Linear layer with the weight split by *output* neurons.

    Rank ``r`` holds rows ``[r * out/P, (r+1) * out/P)`` of the full
    ``(out, in)`` weight. The input is replicated (guarded by ``f`` so
    its gradient is correctly summed); the output is the local shard —
    feed it to a :class:`RowParallelLinear`, or set ``gather_output`` to
    materialise the full activation on every rank.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        comm: Communicator,
        bias: bool = True,
        gather_output: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.comm = comm
        self.in_features = in_features
        self.out_features = out_features
        self.out_local = shard_dim(out_features, comm.size)
        self.gather_output = gather_output
        bound = 1.0 / np.sqrt(in_features)
        # Every rank draws the *full* weight from a shared-seed stream and
        # keeps its slice, so P-way runs match the serial initialisation.
        full = rng.uniform(-bound, bound, size=(out_features, in_features)).astype(np.float32)
        lo = comm.rank * self.out_local
        self.weight = Parameter(full[lo : lo + self.out_local].copy(), prunable=True)
        self.bias = Parameter(np.zeros(self.out_local, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = copy_to_tensor_parallel(x, self.comm)
        y = F.linear(x, self.weight, self.bias)
        if self.gather_output:
            shards = self.comm.allgather(y.data)
            full = np.concatenate(shards, axis=-1)
            # Autograd across the gather: slice the incoming gradient back
            # to this rank's columns.
            lo = self.comm.rank * self.out_local

            def _bwd(g: np.ndarray) -> None:
                if y.requires_grad:
                    y._accumulate_grad(g[..., lo : lo + self.out_local])

            return Tensor._from_op(full, (y,), _bwd)
        return y

    def __repr__(self) -> str:
        return (
            f"ColumnParallelLinear(in={self.in_features}, out={self.out_features}, "
            f"local_out={self.out_local}, rank={self.comm.rank})"
        )


class RowParallelLinear(Module):
    """Linear layer with the weight split by *input* neurons.

    Rank ``r`` holds columns ``[r * in/P, (r+1) * in/P)`` of the full
    ``(out, in)`` weight and consumes the matching shard of the input
    (i.e. a column-parallel predecessor's local output). Partial results
    are summed with ``g``; the bias is added once, after the reduction.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        comm: Communicator,
        bias: bool = True,
        input_is_sharded: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.comm = comm
        self.in_features = in_features
        self.out_features = out_features
        self.in_local = shard_dim(in_features, comm.size)
        self.input_is_sharded = input_is_sharded
        bound = 1.0 / np.sqrt(in_features)
        full = rng.uniform(-bound, bound, size=(out_features, in_features)).astype(np.float32)
        lo = comm.rank * self.in_local
        self.weight = Parameter(full[:, lo : lo + self.in_local].copy(), prunable=True)
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if not self.input_is_sharded:
            lo = self.comm.rank * self.in_local
            x_shard_data = x.data[..., lo : lo + self.in_local]

            def _bwd(g: np.ndarray, _x=x, _lo=lo) -> None:
                if _x.requires_grad:
                    full = np.zeros_like(_x.data)
                    full[..., _lo : _lo + self.in_local] = g
                    _x._accumulate_grad(full)

            x = Tensor._from_op(x_shard_data, (x,), _bwd)
        partial = F.linear(x, self.weight, None)
        y = reduce_from_tensor_parallel(partial, self.comm)
        if self.bias is not None:
            y = y + self.bias
        return y

    def __repr__(self) -> str:
        return (
            f"RowParallelLinear(in={self.in_features}, out={self.out_features}, "
            f"local_in={self.in_local}, rank={self.comm.rank})"
        )


class TensorParallelMLP(Module):
    """Megatron's parallel transformer MLP: column -> GELU -> row.

    One all-reduce in the forward (inside the row layer) and one in the
    backward (inside ``f``) per block, independent of the hidden size —
    the property that makes intra-layer parallelism communication-cheap
    per layer but latency-bound at scale (the paper's Section II-D).
    """

    def __init__(
        self,
        d_model: int,
        d_hidden: int,
        comm: Communicator,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.fc_in = ColumnParallelLinear(d_model, d_hidden, comm, rng=rng)
        self.fc_out = RowParallelLinear(d_hidden, d_model, comm, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc_out(F.gelu(self.fc_in(x)))
