"""Analytical performance model of hybrid parallel training (paper Sec. IV).

Implements the paper's equations:

* Eq. 6-7: pipeline bubble ``t_bubble = (G_inter - 1) * (t_f + t_b) / G_inter``
* Eq. 8:   ``d t_bubble / d G_inter > 0`` (monotone in ``G_inter``)
* Eq. 9-10: transmission ``t_send ∝ 4 * B / (mbs * G_data)``; with
  ``G_inter * G_data = G`` this is ``∝ G_inter``
* Eq. 11:  ``d t_send / d G_inter > 0``

plus the batch-time breakdown container used by every framework simulator
(the Figure 8 phases: compute, p2p, bubble, collective, other).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "bubble_time",
    "transmission_time",
    "microbatches_per_gpu",
    "BatchBreakdown",
    "ParallelConfig",
]


def bubble_time(g_inter: int, t_f: float, t_b: float) -> float:
    """Eq. 7: pipeline bubble per GPU for uniform stages.

    ``t_f``/``t_b`` are the forward/backward times of one microbatch
    through the *entire* model (compute only); each stage costs
    ``(t_f + t_b)/G_inter`` and the bubble equals ``G_inter - 1`` of them.
    """
    if g_inter < 1:
        raise ValueError("g_inter must be >= 1")
    return (t_f + t_b) * (1.0 - 1.0 / g_inter)


def microbatches_per_gpu(batch_size: int, g_data: int, mbs: int) -> int:
    """``B / (G_data * mbs)`` — microbatches every pipeline GPU processes."""
    if batch_size % (g_data * mbs):
        raise ValueError(
            f"batch {batch_size} not divisible by G_data*mbs = {g_data}*{mbs}"
        )
    return batch_size // (g_data * mbs)


def transmission_time(
    batch_size: int,
    g_data: int,
    mbs: int,
    message_time: float,
    g_inter: int,
) -> float:
    """Eq. 9: ``t_send = 4 * B/(mbs*G_data) * t_msg`` per GPU.

    Four messages per microbatch: activation recv+send in the forward,
    gradient recv+send in the backward. Boundary GPUs send fewer; we model
    the interior-GPU (worst, and typical) count like the paper does.
    A single-stage pipeline (``g_inter == 1``) sends nothing — which is
    why ``g_inter`` is required: it used to default to ``None``, silently
    charging single-stage pipelines the interior-GPU send cost.
    """
    if g_inter < 1:
        raise ValueError(f"g_inter must be >= 1, got {g_inter}")
    if g_inter == 1:
        return 0.0
    m = microbatches_per_gpu(batch_size, g_data, mbs)
    return 4.0 * m * message_time


@dataclass(frozen=True)
class ParallelConfig:
    """The G = G_inter x G_data decomposition actually used for a run."""

    n_gpus: int
    g_inter: int
    g_data: int
    mbs: int
    microbatches: int  # per GPU, = B / (G_data * mbs)

    def __post_init__(self):
        if self.g_inter * self.g_data != self.n_gpus:
            raise ValueError(
                f"G_inter*G_data = {self.g_inter}*{self.g_data} != G = {self.n_gpus}"
            )

    def to_dict(self) -> dict:
        return {
            "n_gpus": self.n_gpus,
            "g_inter": self.g_inter,
            "g_data": self.g_data,
            "mbs": self.mbs,
            "microbatches": self.microbatches,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ParallelConfig":
        return cls(**data)


@dataclass
class BatchBreakdown:
    """Non-overlapping phases of one training batch (Figure 8)."""

    framework: str
    model: str
    config: ParallelConfig
    compute: float
    p2p: float
    bubble: float
    collective: float
    other: float
    #: per-GPU model-state + activation memory in bytes (for reports)
    memory_per_gpu: int = 0
    notes: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.compute + self.p2p + self.bubble + self.collective + self.other

    @property
    def communication(self) -> float:
        """Total communication-attributable time (p2p + bubble + collective)."""
        return self.p2p + self.bubble + self.collective

    @property
    def collective_additive(self) -> float:
        """The collective phase the additive model would charge.

        Equal to :attr:`collective` unless the overlap-aware event engine
        priced this batch, in which case the exposed (post-overlap) time
        lands in :attr:`collective` and the pre-overlap sum lives here.
        """
        return self.notes.get("collective_additive", self.collective)

    @property
    def collective_hidden(self) -> float:
        """Collective seconds hidden under the pipeline drain (overlap runs)."""
        return self.notes.get("collective_hidden", 0.0)

    def speedup_over(self, other: "BatchBreakdown") -> float:
        """Percentage speedup of *this* run relative to ``other``:
        ``(t_other / t_self - 1) * 100`` (the paper's annotation metric)."""
        return (other.total / self.total - 1.0) * 100.0

    def as_row(self) -> dict:
        return {
            "framework": self.framework,
            "model": self.model,
            "gpus": self.config.n_gpus,
            "G_inter": self.config.g_inter,
            "G_data": self.config.g_data,
            "compute_s": round(self.compute, 4),
            "p2p_s": round(self.p2p, 4),
            "bubble_s": round(self.bubble, 4),
            "collective_s": round(self.collective, 4),
            "other_s": round(self.other, 4),
            "total_s": round(self.total, 4),
        }

    def to_dict(self) -> dict:
        """Exact JSON-ready mapping (full-precision floats, unlike
        :meth:`as_row`); inverse of :meth:`from_dict`, so breakdowns are
        diffable artifacts."""
        # notes may carry enums (e.g. StorageMode); flatten to plain values
        notes = {k: getattr(v, "value", v) for k, v in self.notes.items()}
        return {
            "framework": self.framework,
            "model": self.model,
            "config": self.config.to_dict(),
            "compute": self.compute,
            "p2p": self.p2p,
            "bubble": self.bubble,
            "collective": self.collective,
            "other": self.other,
            "total": self.total,
            "memory_per_gpu": self.memory_per_gpu,
            "notes": notes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BatchBreakdown":
        data = dict(data)
        data.pop("total", None)  # derived
        data["config"] = ParallelConfig.from_dict(data["config"])
        return cls(**data)
