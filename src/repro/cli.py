"""Command-line interface: regenerate every table and figure.

``python -m repro <experiment>`` prints the paper-style series for one
experiment using the same library calls as the benchmark harness, without
requiring pytest. Run ``python -m repro list`` for the index.

Examples::

    python -m repro fig1            # sparse libraries vs cuBLAS
    python -m repro fig6 --model gpt3-xl
    python -m repro fig8
    python -m repro memory          # the 80.16 -> 20.28 GB claim
    python -m repro fig4 --steps 60 # tiny statistical-efficiency run
    python -m repro plan --model gpt3-2.7b --gpus 512 --sparsity 0.9
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


# ---------------------------------------------------------------------------
# experiment runners
# ---------------------------------------------------------------------------

def run_fig1(args) -> str:
    from .reporting import render_table
    from .sparse import figure1_sweep, sparse_over_dense_ratio

    data = figure1_sweep()
    rows = [
        {
            "weight": f"{n}^2",
            "cuSPARSE (ms)": f"{cs:.3f}",
            "Sputnik (ms)": f"{sp:.3f}",
            "cuBLAS (ms)": f"{cb:.3f}",
            "Sputnik/cuBLAS": f"{sparse_over_dense_ratio(n):.1f}x",
        }
        for n, cs, sp, cb in zip(
            data["size"], data["cusparse"], data["sputnik"], data["cublas"]
        )
    ]
    return render_table(
        rows, title="Figure 1: FC layer, 90% sparsity, batch 576 (modelled V100 kernels)"
    )


def run_fig2(args) -> str:
    from .core import memory_savings_percent
    from .reporting import series_plot

    ps = np.linspace(0.0, 1.0, 21)
    savings = [memory_savings_percent(p) for p in ps]
    plot = series_plot(
        {"savings %": savings},
        x=[f"{p:.2f}" for p in ps],
        title="Figure 2: SAMO memory savings vs sparsity (break-even 0.25)",
    )
    key = "\n".join(
        f"  p={p:.2f}: {memory_savings_percent(p):6.1f}%" for p in (0.0, 0.25, 0.8, 0.9)
    )
    return plot + "\nKey points:\n" + key


def run_fig3(args) -> str:
    from .parallel import simulate_pipeline

    trace = simulate_pipeline(g_inter=3, n_microbatches=5, t_f_stage=1.0, t_b_stage=2.0)
    lines = [
        "Figure 3: 1F1B pipeline, G_inter=3, 5 microbatches, t_b = 2 t_f",
        trace.ascii(time_unit=1.0),
        f"makespan {trace.makespan:.0f}, idle/GPU "
        + ", ".join(f"{trace.idle_time(s):.0f}" for s in range(3))
        + "  (paper: 6 units each)",
    ]
    return "\n".join(lines)


def run_fig4(args) -> str:
    from .core import SAMOConfig
    from .models import GPT, GPT_CONFIGS
    from .pruning import EarlyBirdPruner
    from .reporting import render_table
    from .train import CharCorpus, Trainer, evaluate_perplexity

    cfg = GPT_CONFIGS["gpt3-tiny"]
    corpus = CharCorpus(vocab_size=cfg.vocab_size, length=20_000, seed=0)
    eval_every = max(args.steps // 6, 1)
    results = {}
    for mode in ("dense", "samo"):
        model = GPT(cfg, seed=0)
        kwargs = {}
        if mode == "samo":
            # Paper protocol: warm up dense, draw the Early-Bird ticket,
            # then train the pruned network with SAMO.
            eb = EarlyBirdPruner(sparsity=0.9, epsilon=0.2, window=2)
            warm = Trainer(model, mode="dense", config=SAMOConfig(optimizer="adamw", lr=3e-3))
            wrng = np.random.default_rng(5)
            for _ in range(3):
                for _ in range(2):
                    x, y = corpus.sample_batch(8, 32, wrng)
                    warm.step(x, y)
                eb.observe(model)
                if eb.converged:
                    break
            kwargs = {"mask": eb.ticket}
        trainer = Trainer(
            model, mode=mode, config=SAMOConfig(optimizer="adamw", lr=3e-3), **kwargs
        )
        rng = np.random.default_rng(0)
        ppl = []
        for step in range(args.steps):
            x, y = corpus.sample_batch(8, 32, rng)
            trainer.step(x, y)
            if (step + 1) % eval_every == 0:
                ppl.append(evaluate_perplexity(model, corpus, 4, 32, n_batches=3))
        results[mode] = ppl
    rows = [
        {"iteration": (i + 1) * eval_every, "AxoNN ppl": f"{d:.1f}", "AxoNN+SAMO ppl": f"{s:.1f}"}
        for i, (d, s) in enumerate(zip(results["dense"], results["samo"]))
    ]
    return render_table(
        rows,
        title=f"Figure 4 (tiny GPT, {args.steps} steps): perplexity parity at p=0.9",
    )


def _scaling_report(names: list[str], tag: str) -> str:
    from .models import TABLE_I, get_spec, gpu_counts
    from .parallel import FRAMEWORKS, simulate_batch
    from .reporting import render_table

    blocks = []
    for name in names:
        spec = get_spec(name)
        frameworks = [fw for fw in FRAMEWORKS if not (spec.family == "cnn" and fw == "sputnik")]
        rows = []
        for g in gpu_counts(TABLE_I[name]):
            res = {fw: simulate_batch(spec, g, fw) for fw in frameworks}
            row = {"GPUs": g}
            for fw in frameworks:
                row[f"{fw} (s)"] = round(res[fw].total, 3)
            row["SAMO speedup %"] = round(res["axonn+samo"].speedup_over(res["axonn"]))
            rows.append(row)
        blocks.append(render_table(rows, title=f"{tag}: {name} strong scaling (p=0.9)"))
    return "\n\n".join(blocks)


def run_fig5(args) -> str:
    return _scaling_report(["wideresnet-101", "vgg19"], "Figure 5")


def run_fig6(args) -> str:
    names = [args.model] if args.model else ["gpt3-xl", "gpt3-2.7b"]
    return _scaling_report(names, "Figure 6")


def run_fig7(args) -> str:
    names = [args.model] if args.model else ["gpt3-6.7b", "gpt3-13b"]
    return _scaling_report(names, "Figure 7")


def run_fig8(args) -> str:
    from .models import get_spec
    from .parallel import simulate_batch
    from .reporting import render_table

    spec = get_spec("gpt3-2.7b")
    rows = []
    for g in (128, 256, 512):
        for label, fw in (("AxoNN", "axonn"), ("AxoNN+SAMO", "axonn+samo")):
            b = simulate_batch(spec, g, fw)
            rows.append({
                "GPUs": g,
                "run": label,
                "compute": round(b.compute, 2),
                "p2p": round(b.p2p, 2),
                "bubble": round(b.bubble, 2),
                "collective": round(b.collective, 2),
                "other": round(b.other, 2),
                "total": round(b.total, 2),
            })
    return render_table(rows, title="Figure 8: GPT-3 2.7B batch-time breakdown (s)")


def run_table1(args) -> str:
    from .models import table_rows
    from .reporting import render_table

    rows = table_rows()
    for r in rows:
        r["# Parameters"] = f"{r['# Parameters'] / 1e6:.2f}M"
    return render_table(rows, title="Table I: models and hyperparameters")


def run_table2(args) -> str:
    from .models import get_spec, narayanan_transformer_flops, percent_of_peak
    from .parallel import FRAMEWORKS, simulate_batch
    from .reporting import render_table

    spec = get_spec("gpt3-13b")
    flops = narayanan_transformer_flops(2048, 2048, 40, 5120, 50257)
    rows = []
    for g in (256, 512, 1024, 2048):
        row = {"GPUs": g}
        for fw in FRAMEWORKS:
            pct = percent_of_peak(flops, simulate_batch(spec, g, fw).total, g)
            row[fw] = f"{pct:.1f}%"
        rows.append(row)
    return render_table(
        rows, title="Table II: % of peak fp16 throughput, GPT-3 13B"
    )


def run_memory(args) -> str:
    from .core import samo_breakdown
    from .models import get_spec
    from .reporting import format_bytes, render_table

    rows = []
    for name in ("gpt3-xl", "gpt3-2.7b", "gpt3-6.7b", "gpt3-13b"):
        spec = get_spec(name)
        phi = spec.prunable_count
        dense = 20 * spec.param_count
        bd = samo_breakdown(phi, args.sparsity)
        samo_total = bd.total + 20 * (spec.param_count - phi)
        rows.append({
            "model": name,
            "dense state": format_bytes(dense),
            "SAMO state": format_bytes(samo_total),
            "saving": f"{100 * (1 - samo_total / dense):.0f}%",
        })
    return render_table(
        rows,
        title=f"Model-state memory at p={args.sparsity} (paper: 2.7B 80.16 -> 20.28 GB, -74%)",
    )


def run_plan(args) -> str:
    import json

    from .api import Job, Machine, Session

    if args.scenarios and args.scenario:
        raise SystemExit(
            "repro plan: error: --scenario and --scenarios are mutually "
            "exclusive (a distribution already names its scenarios)"
        )
    # --scenarios leaves an unset fidelity to robust_plan's own rule
    # (analytic for a neutral-only set, sim otherwise), and --overlap /
    # --placement best imply sim through resolve_fidelity; a bare single
    # --scenario keeps the historical contract of requiring an explicit
    # --fidelity sim (the conflict raises below otherwise).
    needs_engine = args.scenarios or args.overlap or args.placement == "best"
    fidelity = args.fidelity if needs_engine else (args.fidelity or "analytic")
    try:
        session = Session(Machine.summit(budget_gb=args.budget_gb))
        job = Job(
            model=args.model,
            n_gpus=args.gpus,
            sparsity=args.sparsity,
            fidelity=fidelity,
            overlap=args.overlap,
            placement=args.placement,
        )
        kwargs = dict(explore_no_checkpoint=not args.paper_protocol)
        if args.scenarios:
            result = session.robust_plan(job, args.scenarios, **kwargs)
        else:
            result = session.plan(job, scenario=args.scenario, **kwargs)
    except (KeyError, ValueError) as err:
        # unknown model / bad gpu count / bad budget: argparse-style exit
        msg = err.args[0] if err.args else str(err)
        raise SystemExit(f"repro plan: error: {msg}")
    if args.json:
        doc = result.to_dict()
        if args.metrics:
            doc["metrics"] = session.metrics()
        if args.compare_fidelities:
            doc["fidelity_drift"] = _fidelity_drift(session, args.model, result)
        return json.dumps(doc, indent=2)
    report = result.report(top=args.top)
    if args.compare_fidelities:
        report += "\n\n" + _fidelity_drift_table(session, args.model, result)
    if args.metrics:
        report += "\n\nMetrics:\n" + session.metrics_text().rstrip()
    return report


#: phase rows of the --compare-fidelities drift table
_DRIFT_PHASES = ("compute", "p2p", "bubble", "collective", "other", "total")


def _fidelity_drift(session, model: str, result) -> dict:
    """Price the plan winner under every fidelity, keyed per phase.

    ``analytic`` is the ground truth; ``analytic-batch`` goes through
    :meth:`~repro.autotune.CostEstimator.evaluate_batch` (auditing the
    actual array program, not its inherited scalar path), ``sim``
    through the event engine, and ``measured`` through the executed
    proxy schedule. Values are seconds; drifts are relative to the
    analytic row.
    """
    from .autotune import make_estimator
    from .models import get_spec

    spec = get_spec(model)
    best = result.best.config
    cal = session.machine.cal
    breakdowns = {}
    breakdowns["analytic"] = make_estimator("analytic", spec, cal).evaluate(best)
    breakdowns["analytic-batch"] = (
        make_estimator("analytic-batch", spec, cal)
        .evaluate_batch([best])
        .evaluation(0, 0)
    )
    breakdowns["sim"] = make_estimator("sim", spec, cal).evaluate(best)
    breakdowns["measured"] = make_estimator("measured", spec, cal).evaluate(best)
    doc: dict = {"config": list(best.canonical_key()), "phases": {}}
    for phase in _DRIFT_PHASES:
        ref = getattr(breakdowns["analytic"].breakdown, phase)
        entry = {"analytic": ref}
        for fid in ("analytic-batch", "sim", "measured"):
            v = getattr(breakdowns[fid].breakdown, phase)
            drift = 0.0 if v == ref else abs(v - ref) / max(abs(ref), 1e-300)
            entry[fid] = v
            entry[f"{fid}_rel_drift"] = drift
        doc["phases"][phase] = entry
    return doc


def _fidelity_drift_table(session, model: str, result) -> str:
    from .reporting import render_table

    doc = _fidelity_drift(session, model, result)
    rows = []
    for phase in _DRIFT_PHASES:
        e = doc["phases"][phase]
        rows.append(
            {
                "phase": phase,
                "analytic (s)": f"{e['analytic']:.6f}",
                "analytic-batch (s)": f"{e['analytic-batch']:.6f}",
                "batch drift": f"{e['analytic-batch_rel_drift']:.1e}",
                "sim (s)": f"{e['sim']:.6f}",
                "sim drift": f"{e['sim_rel_drift']:.1e}",
                "measured (s)": f"{e['measured']:.6f}",
                "meas drift": f"{e['measured_rel_drift']:.1e}",
            }
        )
    title = (
        "Fidelity drift for the winning config "
        f"{tuple(doc['config'])} (relative to analytic)"
    )
    return render_table(rows, title=title)


def run_mc_plan(args) -> str:
    import json

    from .api import Job, Machine, Session

    try:
        session = Session(Machine.summit(budget_gb=args.budget_gb))
        job = Job(
            model=args.model,
            n_gpus=args.gpus,
            sparsity=args.sparsity,
            fidelity=args.fidelity,
        )
        result = session.mc_robust_plan(
            job,
            args.process,
            samples=args.samples,
            seed=args.seed,
            crn=not args.no_crn,
        )
        decision = None
        if args.replan:
            decision = session.replan(job, args.replan, at=args.replan_at)
    except (KeyError, ValueError) as err:
        msg = err.args[0] if err.args else str(err)
        raise SystemExit(f"repro mc-plan: error: {msg}")
    if args.json:
        # wall time is excluded from to_dict, so two same-seed runs emit
        # byte-identical JSON (the CI smoke pins this)
        doc = result.to_dict()
        if decision is not None:
            doc["replan"] = decision.to_dict()
        if args.metrics:
            doc["metrics"] = session.metrics()
        return json.dumps(doc, indent=2)
    report = result.report(top=args.top)
    if decision is not None:
        report += "\n\n" + decision.report()
    if args.metrics:
        report += "\n\nMetrics:\n" + session.metrics_text().rstrip()
    return report


def run_place(args) -> str:
    import json

    from .api import Job, Machine, Session
    from .reporting import render_table

    try:
        session = Session(Machine.summit())
        job = Job(
            model=args.model,
            n_gpus=args.gpus,
            framework=args.framework,
            sparsity=args.sparsity,
            mbs=args.mbs,
        )
        result = session.place(job, scenario=args.scenario, swap_sweeps=args.sweeps)
    except (KeyError, ValueError) as err:
        msg = err.args[0] if err.args else str(err)
        raise SystemExit(f"repro place: error: {msg}")
    if args.json:
        doc = result.to_dict()
        if args.metrics:
            doc["metrics"] = session.metrics()
        return json.dumps(doc, indent=2)

    scenario_label = args.scenario or "neutral"
    lines = [
        f"Replica placement for {job.describe()} under '{scenario_label}':",
        f"  {result.placement.n_replicas} replicas x {result.placement.g_inter} stages, "
        f"{result.evaluations} chain evaluations, {result.swaps} swaps applied",
    ]
    rows = [
        {
            "replica": r,
            "block chain (s)": round(d, 4),
            "placed chain (s)": round(t, 4),
            "ranks": ",".join(str(x) for x in chain),
        }
        for r, (d, t, chain) in enumerate(
            zip(result.default_chain_times, result.chain_times, result.placement.replicas)
        )
    ]
    lines.append(render_table(rows, title="Per-replica chain makespans"))
    lines += [
        f"slowest chain: block layout {result.default_makespan:.4f} s -> "
        f"optimized {result.makespan:.4f} s ({result.improvement_pct:+.2f}%)",
    ]
    if result.is_default:
        lines.append(
            "(the block layout is already optimal here; it is returned unchanged "
            "- the optimizer never does worse)"
        )
    if args.metrics:
        lines += ["", "Metrics:", session.metrics_text().rstrip()]
    return "\n".join(lines)


def run_trace(args) -> str:
    from .api import Job, Machine, Session
    from .obs import Tracer

    try:
        if args.chrome:
            session = Session(Machine.summit(), trace_to=args.chrome)
        else:
            # no export target: still collect spans for the summary
            session = Session(Machine.summit())
            session.tracer = Tracer()
        job = Job(
            model=args.model,
            n_gpus=args.gpus,
            framework=args.framework,
            sparsity=args.sparsity,
            overlap=args.overlap,
        )
        b = session.breakdown(job, scenario=args.scenario)
    except (KeyError, ValueError) as err:
        msg = err.args[0] if err.args else str(err)
        raise SystemExit(f"repro trace: error: {msg}")

    scenario_label = args.scenario or "pristine"
    lines = [
        f"Traced {job.describe()} under '{scenario_label}'"
        + (" with allreduce/drain overlap" if args.overlap else ""),
        f"  batch total {b.total:.3f} s (compute {b.compute:.3f}, p2p {b.p2p:.3f}, "
        f"bubble {b.bubble:.3f}, collective {b.collective:.3f})",
        "",
        "Spans by category:",
    ]
    for category, count in session.tracer.by_category().items():
        lines.append(f"  {category or '(uncategorized)':24s} {count}")
    tracks = session.tracer.tracks()
    lines.append(f"{len(session.tracer)} spans over {len(tracks)} tracks")
    if args.chrome:
        from .obs import validate_chrome_trace
        import json

        with open(args.chrome) as fh:
            errors = validate_chrome_trace(json.load(fh))
        lines += [
            "",
            f"Chrome trace written to {args.chrome} "
            f"({'valid' if not errors else 'INVALID: ' + '; '.join(errors[:3])}) — "
            "open it at https://ui.perfetto.dev or chrome://tracing",
        ]
    if args.metrics:
        lines += ["", "Metrics:", session.metrics_text().rstrip()]
    return "\n".join(lines)


def run_simulate(args) -> str:
    from .models import get_spec
    from .obs import MetricsRegistry, observed
    from .parallel import compare_partition_modes, run_scenario
    from .reporting import render_table

    registry = MetricsRegistry()
    try:
        with observed(metrics=registry):
            trace, info = run_scenario(
                args.preset,
                g_inter=args.g_inter,
                n_microbatches=args.microbatches,
                t_f=args.t_f,
                t_b=args.t_b,
                msg_time=args.msg_time,
                prefer_backward=not args.fifo,
            )
    except ValueError as err:
        raise SystemExit(f"repro simulate: error: {err}")

    lines = [
        f"Scenario '{info['scenario']}': {info['description']}",
        f"G_inter={info['g_inter']}, m={info['n_microbatches']}, "
        f"uniform baseline t_f={args.t_f:g} t_b={args.t_b:g}",
        "stage t_f: " + " ".join(f"{t:.3g}" for t in info["t_f_stages"]),
        "stage t_b: " + " ".join(f"{t:.3g}" for t in info["t_b_stages"]),
    ]
    if info["link_times"]:
        lines.append("link msg : " + " ".join(f"{t:.3g}" for t in info["link_times"]))
    positive = [t for t in info["t_f_stages"] + info["t_b_stages"] if t > 0]
    if positive:
        unit = min(positive)
        if trace.makespan / unit <= 120:
            lines += ["", trace.ascii(unit), ""]
    rows = [
        {
            "GPU": g,
            "busy (s)": round(trace.busy_time(g), 3),
            "idle (s)": round(trace.idle_time(g), 3),
            "peak in-flight": trace.peak_in_flight[g],
        }
        for g in range(trace.g_inter)
    ]
    lines.append(render_table(rows, title="Per-GPU schedule accounting"))
    eq7 = info["eq7_bubble"]
    lines += [
        f"makespan: {trace.makespan:.3f} s",
        f"mean idle: {info['mean_idle']:.3f} s  (uniform-limit Eq. 6-7 bubble: {eq7:.3f} s)",
    ]
    if info["allreduce_slowdown"] != 1.0:
        lines.append(
            f"collective: reference 8-rank allreduce (100 MiB) slowed "
            f"{info['allreduce_slowdown']:.2f}x "
            f"({info['allreduce_ref']:.4f} s -> {info['allreduce_scenario']:.4f} s)"
        )
    # Scenario-aware partitioning: rebalance a real model's stage cuts
    # against time-under-scenario and compare against flops balancing.
    # Only meaningful when the scenario skews stage compute rates —
    # uniform rates make the two modes identical by construction.
    from .parallel import get_scenario

    rates = get_scenario(args.preset).scale_stage_times([1.0] * args.g_inter)
    if all(r == rates[0] for r in rates):
        lines.append(
            "(partition-mode comparison skipped: scenario leaves stage "
            "compute rates uniform, so mode='time' equals mode='flops')"
        )
        if args.metrics:
            lines += ["", "Metrics:", registry.render_prometheus().rstrip()]
        return "\n".join(lines)
    try:
        spec = get_spec(args.model)
        traces = compare_partition_modes(
            spec,
            args.preset,
            g_inter=args.g_inter,
            m=args.microbatches,
            t_f_model=args.t_f * args.g_inter,
            t_b_model=args.t_b * args.g_inter,
        )
    except (KeyError, ValueError) as err:
        lines.append(f"(partition-mode comparison skipped: {err})")
    else:
        flops_ms = traces["flops"].makespan
        time_ms = traces["time"].makespan
        gain = (1.0 - time_ms / flops_ms) * 100.0
        lines += [
            "",
            f"Partitioner comparison on {spec.name} (G_inter={args.g_inter}, "
            f"m={args.microbatches}):",
            f"  balanced_partition(mode='flops'): makespan {flops_ms:.3f} s",
            f"  balanced_partition(mode='time') : makespan {time_ms:.3f} s "
            f"({gain:+.1f}% makespan reduction)",
        ]
    if args.metrics:
        lines += ["", "Metrics:", registry.render_prometheus().rstrip()]
    return "\n".join(lines)


def run_serve(args) -> int:
    """Long-lived planning server (printing nothing of its own: stdout
    is the stdio transport's response stream)."""
    from .api import Machine
    from .serve import PersistentEvaluationStore, PlanningServer, serve_http, serve_stdio

    try:
        store = PersistentEvaluationStore(
            path=args.store,
            max_entries=args.max_entries,
            autosave_every=args.autosave_every,
        )
        server = PlanningServer(
            machine=Machine.summit(budget_gb=args.budget_gb),
            store=store,
            max_workers=args.session_workers,
        )
    except (KeyError, ValueError) as err:
        msg = err.args[0] if err.args else str(err)
        raise SystemExit(f"repro serve: error: {msg}")
    if store.quarantined:
        print(
            f"repro serve: warning: corrupt snapshot quarantined to "
            f"{store.quarantined} ({store.loaded} valid entries kept)",
            file=sys.stderr,
        )
    elif store.loaded:
        print(
            f"repro serve: warm-started {store.loaded} evaluations from {args.store}",
            file=sys.stderr,
        )
    if args.http is not None:
        print(
            f"repro serve: listening on http://{args.host}:{args.http} "
            "(POST JSON-RPC to /, GET /metrics, /healthz)",
            file=sys.stderr,
        )
        return serve_http(server, host=args.host, port=args.http)
    return serve_stdio(server, sys.stdin, sys.stdout, request_workers=args.workers)


def run_drift(args) -> str:
    """Cross-fidelity drift report (analytic vs sim vs measured).

    Exits nonzero when any measured phase drifts past its
    :data:`~repro.autotune.DRIFT_TOLERANCES` floor — the CI smoke runs
    ``repro drift --quick`` and relies on that exit code.
    """
    from .autotune.drift import drift_report, drift_report_json, render_drift_report

    report = drift_report(seed=args.seed, quick=args.quick)
    out = drift_report_json(report) if args.json else render_drift_report(report)
    if not report["ok"]:
        print(out)
        raise SystemExit(
            "repro drift: error: " + "; ".join(report["violations"])
        )
    return out


EXPERIMENTS = {
    "fig1": (run_fig1, "sparse libraries vs cuBLAS (FC layer microbenchmark)"),
    "fig2": (run_fig2, "analytical memory savings of SAMO vs sparsity"),
    "fig3": (run_fig3, "pipeline schedule illustration (G_inter=3, 5 microbatches)"),
    "fig4": (run_fig4, "statistical efficiency: dense vs SAMO perplexity (tiny run)"),
    "fig5": (run_fig5, "strong scaling: WideResnet-101 and VGG-19"),
    "fig6": (run_fig6, "strong scaling: GPT-3 XL and 2.7B"),
    "fig7": (run_fig7, "strong scaling: GPT-3 6.7B and 13B"),
    "fig8": (run_fig8, "batch-time breakdown, GPT-3 2.7B"),
    "table1": (run_table1, "model/hyperparameter inventory"),
    "table2": (run_table2, "% of peak fp16 throughput, GPT-3 13B"),
    "memory": (run_memory, "the Section I/VI memory-saving claim"),
    "plan": (run_plan, "autotune: best hybrid-parallel config (--scenarios for robust plans)"),
    "mc-plan": (run_mc_plan, "Monte-Carlo robust plan over a sampled failure process (CRN + 95% CIs)"),
    "simulate": (run_simulate, "cluster scenarios (straggler, slow-link, degraded-ring, ...)"),
    "place": (run_place, "optimize the data-parallel replica placement (vs the block layout)"),
    "trace": (run_trace, "span-trace one batch; --chrome exports a Perfetto-loadable timeline"),
    "serve": (run_serve, "planning server: JSON-RPC over stdio (or --http) on a persistent shared store"),
    "drift": (run_drift, "analytic-vs-sim-vs-measured drift over the Fig. 6-8 templates (nonzero exit past tolerance)"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures on the simulated cluster.",
    )
    sub = parser.add_subparsers(dest="cmd")
    sub.add_parser("list", help="list available experiments")
    for name, (_, help_text) in EXPERIMENTS.items():
        p = sub.add_parser(name, help=help_text)
        if name == "fig4":
            p.add_argument("--steps", type=int, default=60, help="training steps per run")
        if name in ("fig6", "fig7"):
            p.add_argument("--model", default=None, help="restrict to one model name")
        if name == "memory":
            p.add_argument("--sparsity", type=float, default=0.9)
        if name == "plan":
            p.add_argument("--model", default="gpt3-2.7b", help="Table I model name")
            p.add_argument("--gpus", type=int, default=512, help="total GPU count")
            p.add_argument("--sparsity", type=float, default=0.9)
            p.add_argument(
                "--budget-gb", type=float, default=None, dest="budget_gb",
                help="per-GPU memory budget in GB (default: the 16 GB V100)",
            )
            p.add_argument(
                "--fidelity",
                choices=("analytic", "analytic-batch", "sim", "measured"),
                default=None,
                help="closed-form Eqs. 6-11 (analytic), the same equations "
                     "vectorized over the whole candidate grid "
                     "(analytic-batch), event-driven pipeline simulation "
                     "(sim), or executed-schedule pricing (measured) "
                     "(default: analytic; sim with --scenarios)",
            )
            p.add_argument("--top", type=int, default=8, help="rows in the summary")
            p.add_argument(
                "--paper-protocol", action="store_true",
                help="restrict to the paper's protocol (checkpointing always on)",
            )
            p.add_argument(
                "--scenario", default=None,
                help="rank configs under a degraded machine (requires "
                     "--fidelity sim): pipeline presets (straggler, "
                     "slow-link, skewed, contention) and collective "
                     "presets (degraded-ring, ring-straggler, "
                     "slow-ring-link, degraded); see 'repro simulate'",
            )
            from .api.scenario_set import SCENARIO_SETS

            p.add_argument(
                "--scenarios", default=None, choices=sorted(SCENARIO_SETS),
                help="robust plan: rank configs by expected cost over a "
                     "weighted scenario distribution (worst case "
                     "reported alongside)",
            )
            p.add_argument(
                "--json", action="store_true",
                help="emit the full plan as JSON (a diffable artifact) "
                     "instead of the report",
            )
            p.add_argument(
                "--overlap", action="store_true",
                help="overlap-aware costing: hide the bucketed "
                     "data-parallel allreduce behind the pipeline drain "
                     "on the event timeline (implies --fidelity sim)",
            )
            p.add_argument(
                "--placement", choices=("block", "best"), default="block",
                help="price candidates at the default block layout or at "
                     "the optimized replica placement (best implies "
                     "--fidelity sim; see 'repro place')",
            )
            p.add_argument(
                "--metrics", action="store_true",
                help="append the session metrics (cache hit/miss counts, "
                     "per-fidelity evaluation latency) to the output",
            )
            p.add_argument(
                "--compare-fidelities", action="store_true",
                dest="compare_fidelities",
                help="append a per-phase drift table of the winning config "
                     "priced under analytic, analytic-batch (the vectorized "
                     "array program), sim, and measured (the executed "
                     "schedule) — the from-the-CLI audit of every backend",
            )
        if name == "mc-plan":
            from .stochastic import PROCESSES

            p.add_argument("--model", default="gpt3-xl", help="Table I model name")
            p.add_argument("--gpus", type=int, default=16, help="total GPU count")
            p.add_argument("--sparsity", type=float, default=0.9)
            p.add_argument(
                "--budget-gb", type=float, default=None, dest="budget_gb",
                help="per-GPU memory budget in GB (default: the 16 GB V100)",
            )
            p.add_argument(
                "--process", default="flaky-links", choices=sorted(PROCESSES),
                help="failure process to sample degradation timelines from",
            )
            p.add_argument(
                "--samples", type=int, default=32,
                help="sampled timelines to price every candidate against",
            )
            p.add_argument(
                "--seed", type=int, default=0,
                help="seed of the SeedSequence the per-sample streams spawn from",
            )
            p.add_argument(
                "--no-crn", action="store_true", dest="no_crn",
                help="independent draws per candidate instead of common "
                     "random numbers (wider difference CIs; for comparison)",
            )
            p.add_argument(
                "--fidelity", choices=("analytic", "analytic-batch", "sim"),
                default=None,
                help="override the automatic choice (analytic for a "
                     "degenerate process, analytic-batch for collective-only "
                     "kinds, sim when any kind degrades the pipeline)",
            )
            p.add_argument("--top", type=int, default=8, help="rows in the summary")
            p.add_argument(
                "--replan", default=None, metavar="SCENARIO",
                help="also price the mid-job ride-vs-repair decision for "
                     "this failure scenario (any 'repro simulate' preset)",
            )
            p.add_argument(
                "--replan-at", type=float, default=0.5, dest="replan_at",
                help="normalised job progress at which the --replan failure arrives",
            )
            p.add_argument(
                "--json", action="store_true",
                help="emit the full result as JSON — byte-identical across "
                     "same-seed runs (a diffable artifact)",
            )
            p.add_argument(
                "--metrics", action="store_true",
                help="append the session metrics (mc.samples, "
                     "mc.replan_evaluations, per-sample histograms)",
            )
        if name == "place":
            p.add_argument("--model", default="gpt3-2.7b", help="Table I model name")
            p.add_argument("--gpus", type=int, default=16, help="total GPU count")
            p.add_argument(
                "--framework", default="axonn",
                help="framework whose decomposition is placed "
                     "(axonn, axonn+samo, deepspeed-3d, sputnik)",
            )
            p.add_argument("--sparsity", type=float, default=0.9)
            p.add_argument("--mbs", type=int, default=1, help="microbatch size")
            p.add_argument(
                "--scenario", default=None,
                help="optimize under a degraded machine (any 'repro simulate' preset)",
            )
            p.add_argument(
                "--sweeps", type=int, default=2,
                help="local-swap refinement passes after the greedy construction",
            )
            p.add_argument(
                "--json", action="store_true",
                help="emit the placement result as JSON instead of the report",
            )
            p.add_argument(
                "--metrics", action="store_true",
                help="append the session metrics to the output",
            )
        if name == "simulate":
            from .parallel.scenarios import SCENARIOS

            p.add_argument(
                "--preset", default="uniform", choices=sorted(SCENARIOS),
                help="heterogeneity scenario to simulate",
            )
            p.add_argument("--g-inter", type=int, default=4, dest="g_inter",
                           help="pipeline depth (stages == GPUs)")
            p.add_argument("--microbatches", type=int, default=8,
                           help="microbatches per batch shard")
            p.add_argument("--t-f", type=float, default=1.0, dest="t_f",
                           help="uniform per-stage forward time (s)")
            p.add_argument("--t-b", type=float, default=2.0, dest="t_b",
                           help="uniform per-stage backward time (s)")
            p.add_argument(
                "--msg-time", type=float, default=None, dest="msg_time",
                help="per-link message time (default: the preset's base)",
            )
            p.add_argument(
                "--fifo", action="store_true",
                help="arrival-order scheduling instead of 1F1B backward preference",
            )
            p.add_argument(
                "--model", default="gpt3-xl",
                help="Table I model whose flops partition feeds the "
                     "flops-vs-time partition-mode comparison",
            )
            p.add_argument(
                "--metrics", action="store_true",
                help="append engine metrics (events processed, overlap "
                     "bucket counts) to the output",
            )
        if name == "serve":
            p.add_argument(
                "--store", default=None, metavar="PATH",
                help="JSON-lines snapshot for the evaluation store: "
                     "warm-started at boot, flushed at shutdown",
            )
            p.add_argument(
                "--max-entries", type=int, default=0, dest="max_entries",
                help="evaluation-store capacity; least-recently-used "
                     "entries are evicted beyond it (0 = unbounded)",
            )
            p.add_argument(
                "--autosave-every", type=int, default=0, dest="autosave_every",
                help="snapshot the store to --store after every N puts "
                     "(0 = only at shutdown / on a 'save' request)",
            )
            p.add_argument(
                "--http", type=int, default=None, metavar="PORT",
                help="serve HTTP on this port instead of stdio JSON-RPC",
            )
            p.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
            p.add_argument(
                "--workers", type=int, default=8,
                help="concurrent stdio requests (identical in-flight "
                     "requests coalesce through the store)",
            )
            p.add_argument(
                "--session-workers", type=int, default=None, dest="session_workers",
                help="threads per evaluation batch inside the session "
                     "(default: min(8, cpu count))",
            )
            p.add_argument(
                "--budget-gb", type=float, default=None, dest="budget_gb",
                help="per-GPU memory budget in GB (default: the 16 GB V100)",
            )
        if name == "drift":
            p.add_argument(
                "--quick", action="store_true",
                help="first template only (the CI smoke)",
            )
            p.add_argument(
                "--seed", type=int, default=0,
                help="seed of the measured executions and the synthetic "
                     "calibration samples (same seed => byte-identical "
                     "--json output)",
            )
            p.add_argument(
                "--json", action="store_true",
                help="emit the full report as canonical JSON (sorted keys; "
                     "a diffable artifact) instead of the tables",
            )
        if name == "trace":
            p.add_argument("--model", default="gpt3-2.7b", help="Table I model name")
            p.add_argument("--gpus", type=int, default=128, help="total GPU count")
            p.add_argument(
                "--framework", default="axonn",
                help="framework whose batch is traced "
                     "(axonn, axonn+samo, deepspeed-3d, sputnik)",
            )
            p.add_argument("--sparsity", type=float, default=0.9)
            p.add_argument(
                "--scenario", default="degraded-ring",
                help="scenario to trace under (any 'repro simulate' preset; "
                     "default degraded-ring)",
            )
            p.add_argument(
                "--no-overlap", action="store_false", dest="overlap",
                help="additive collective costing instead of the default "
                     "overlapped allreduce (overlap makes the hidden vs "
                     "exposed bucket tracks interesting)",
            )
            p.add_argument(
                "--chrome", default=None, metavar="OUT.json",
                help="write the Chrome trace_event JSON here (open in "
                     "https://ui.perfetto.dev or chrome://tracing)",
            )
            p.add_argument(
                "--metrics", action="store_true",
                help="append the session metrics to the output",
            )

    args = parser.parse_args(argv)
    if args.cmd in (None, "list"):
        print("Available experiments:")
        for name, (_, help_text) in EXPERIMENTS.items():
            print(f"  {name:8s} {help_text}")
        return 0 if args.cmd == "list" else 2
    if args.cmd == "serve":
        # long-lived; stdout belongs to the stdio transport, not a report
        return run_serve(args)
    runner, _ = EXPERIMENTS[args.cmd]
    print(runner(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
