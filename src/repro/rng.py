"""Seeded-randomness hygiene: one resolver for every stochastic entry point.

Every function in the repo that draws random numbers accepts either an
explicit :class:`numpy.random.Generator`, an integer seed, or ``None``,
and resolves it through :func:`resolve_rng` — so two runs handed the
same seed are bit-identical, and a caller who wants to thread one
generator through several draws can pass it straight through.

The stochastic subsystem (:mod:`repro.stochastic`) builds its
per-sample streams on top with :func:`spawn_generators`:
``SeedSequence(seed).spawn(n)`` children have the *prefix property* —
sample ``i``'s stream is the same no matter how many samples are drawn
after it — which is what makes common-random-numbers pairing and
fixed-seed regression tests stable as sample counts change.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resolve_rng", "spawn_generators"]


def resolve_rng(rng=None) -> np.random.Generator:
    """A :class:`numpy.random.Generator` from a generator, seed, or ``None``.

    >>> a = resolve_rng(7).integers(0, 100, 4)
    >>> b = resolve_rng(7).integers(0, 100, 4)
    >>> bool((a == b).all())
    True
    >>> g = resolve_rng(None)          # fresh OS entropy
    >>> resolve_rng(g) is g            # pass-through, no reseeding
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_generators(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` independent generators with the SeedSequence prefix property.

    >>> [g.integers(100) for g in spawn_generators(7, 2)] == \\
    ...     [g.integers(100) for g in spawn_generators(7, 5)][:2]
    True
    """
    return [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(seed).spawn(n)
    ]
