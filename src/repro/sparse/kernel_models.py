"""Calibrated GPU kernel performance models (paper Figure 1).

We have no V100, so the absolute times of cuBLAS/cuSPARSE/Sputnik are
reproduced by analytical roofline-style models calibrated against the
paper's published observations:

* cuBLAS (mixed precision, tensor cores): time = flops / (peak * eff(n))
  plus a fixed launch overhead. Efficiency ramps with GEMM size — small
  GEMMs cannot fill the device.
* Sputnik at 90% sparsity computes only ``(1-p)`` of the flops but at a
  CUDA-core-class rate with irregular access; the paper measures it
  6-22x *slower* than cuBLAS over weight sizes 128^2 -> 4096^2 (the gap
  grows with size because tensor cores shine on large GEMMs).
* cuSPARSE is designed for >99% scientific sparsity and is roughly another
  order of magnitude slower in this regime (the top curve of Figure 1).

The same models feed the Sputnik parallel baseline of Figures 6-7: its
compute time per layer is the Sputnik model's, everything else equal.

Calibration constants are module-level and documented; EXPERIMENTS.md
records model-vs-paper shape checks.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

__all__ = [
    "GemmModel",
    "CUBLAS_FP16",
    "SPUTNIK_FP16",
    "CUSPARSE_FP16",
    "fc_layer_time",
    "figure1_sweep",
    "sparse_over_dense_ratio",
]

#: V100 peak half-precision (tensor core) throughput, flop/s (Summit spec).
V100_PEAK_FP16 = 125e12
#: V100 peak single-precision CUDA-core throughput, flop/s.
V100_PEAK_FP32 = 15.7e12
#: Kernel launch + framework overhead per GEMM call, seconds.
LAUNCH_OVERHEAD_S = 20e-6


@dataclass(frozen=True)
class GemmModel:
    """Roofline-with-ramp model: ``t = overhead + work / (peak * eff(n))``.

    ``eff(n) = eff_max * n / (n + half_sat)`` — a saturating ramp in the
    problem's smallest GEMM dimension ``n``, the standard shape of measured
    GEMM efficiency curves.
    """

    name: str
    peak_flops: float
    eff_max: float
    half_sat: float  # dimension at which efficiency reaches eff_max/2
    overhead_s: float = LAUNCH_OVERHEAD_S
    #: fraction of the dense flops this kernel actually computes
    flop_fraction: float = 1.0

    def efficiency(self, n: int) -> float:
        return self.eff_max * n / (n + self.half_sat)

    def time(self, m: int, n: int, k: int, density: float = 1.0) -> float:
        """Seconds for an (m x k) @ (k x n) product.

        ``density`` scales the computed work for sparse kernels
        (``flop_fraction`` of the *dense* flops times the actual density
        relative to the 10% calibration point).
        """
        dense_flops = 2.0 * m * n * k
        work = dense_flops * self.flop_fraction * (density / 0.1 if self.flop_fraction != 1.0 else 1.0)
        dim = min(m, n, k)
        return self.overhead_s + work / (self.peak_flops * self.efficiency(dim))


#: cuBLAS fp16 tensor-core GEMM. eff_max 0.62, half-saturation at n=768:
#: reaches ~53% of peak at n=4096 (typical measured V100 mixed-precision
#: GEMM efficiency), ~9% at n=128.
CUBLAS_FP16 = GemmModel("cublas", V100_PEAK_FP16, eff_max=0.62, half_sat=768.0)

#: Sputnik at ~90% sparsity: computes 10% of the flops on CUDA cores with
#: irregular gather/scatter access — a few percent of fp32 peak effective.
#: Calibrated so t_sputnik / t_cublas runs ~7x (128^2) to ~23x (4096^2),
#: matching the paper's "6-22x" observation (the gap grows with size
#: because tensor-core GEMMs keep gaining efficiency while sparse kernels
#: saturate early).
SPUTNIK_FP16 = GemmModel(
    "sputnik", V100_PEAK_FP32, eff_max=0.026, half_sat=1024.0, flop_fraction=0.1,
    overhead_s=100e-6,
)

#: cuSPARSE is designed for >99% scientific sparsity; in this regime it is
#: roughly another order of magnitude above Sputnik (Figure 1's top curve).
CUSPARSE_FP16 = GemmModel(
    "cusparse", V100_PEAK_FP32, eff_max=0.002, half_sat=512.0, flop_fraction=0.1,
    overhead_s=200e-6,
)

KERNELS = {m.name: m for m in (CUBLAS_FP16, SPUTNIK_FP16, CUSPARSE_FP16)}


@functools.lru_cache(maxsize=4096)
def fc_layer_time(
    kernel: str | GemmModel,
    batch: int,
    n: int,
    sparsity: float = 0.9,
) -> float:
    """Modelled seconds for one FC forward: (batch x n) @ (n x n).

    The Figure 1 configuration is ``batch=576`` and square weights.
    Pure in its (hashable) arguments, and evaluated repeatedly for the
    same handful of shapes by the figure sweeps and the Sputnik batch
    simulator — cached.
    """
    model = KERNELS[kernel] if isinstance(kernel, str) else kernel
    return model.time(batch, n, n, density=1.0 - sparsity)


def figure1_sweep(
    sizes: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096),
    batch: int = 576,
    sparsity: float = 0.9,
) -> dict[str, list[float]]:
    """Reproduce Figure 1's series: time (ms) per kernel per weight size."""
    out: dict[str, list[float]] = {"size": list(sizes)}
    for name in ("cusparse", "sputnik", "cublas"):
        out[name] = [1e3 * fc_layer_time(name, batch, n, sparsity) for n in sizes]
    return out


@functools.lru_cache(maxsize=4096)
def sparse_over_dense_ratio(n: int, batch: int = 576, sparsity: float = 0.9) -> float:
    """``t_sputnik / t_cublas`` at weight size n (paper: 6-22x over sweep)."""
    return fc_layer_time("sputnik", batch, n, sparsity) / fc_layer_time(
        "cublas", batch, n, sparsity
    )
