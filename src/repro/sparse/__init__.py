"""Sparse matrix kernels and calibrated GPU performance models.

Real CPU kernels (SciPy CSR spMM, sampled DDMM, gather references) validate
sparse-compute correctness; :mod:`repro.sparse.kernel_models` reproduces the
cuBLAS/cuSPARSE/Sputnik timing relationships of the paper's Figure 1.
"""

from .block import (
    BLOCKSPARSE_FP16,
    BlockSparseMatrix,
    ColumnVectorSparse,
    block_crossover_sparsity,
    block_sparse_time,
)
from .coo import FlatCOO
from .kernel_models import (
    CUBLAS_FP16,
    CUSPARSE_FP16,
    GemmModel,
    SPUTNIK_FP16,
    fc_layer_time,
    figure1_sweep,
    sparse_over_dense_ratio,
)
from .sddmm import sddmm, sddmm_dense
from .sparse_linear import SparseLinear
from .spmm import spmm_dense, spmm_gather, spmm_scipy

__all__ = [
    "FlatCOO",
    "BlockSparseMatrix",
    "ColumnVectorSparse",
    "BLOCKSPARSE_FP16",
    "block_sparse_time",
    "block_crossover_sparsity",
    "SparseLinear",
    "spmm_scipy",
    "spmm_gather",
    "spmm_dense",
    "sddmm",
    "sddmm_dense",
    "GemmModel",
    "CUBLAS_FP16",
    "SPUTNIK_FP16",
    "CUSPARSE_FP16",
    "fc_layer_time",
    "figure1_sweep",
    "sparse_over_dense_ratio",
]
