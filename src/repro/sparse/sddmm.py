"""Sampled dense-dense matrix multiplication (sDDMM).

The backward pass of a pruned fully-connected layer needs the weight
gradient only at the unpruned positions:

    dW[r, c] = sum_b dY[b, r] * X[b, c]      for (r, c) in the mask

— a dense-dense product *sampled* at the sparse pattern, the kernel Hong
et al. and Gale et al. optimise on GPU. Two implementations: an exact
sampled kernel computing only nnz dot products, and the densify-everything
reference.
"""

from __future__ import annotations

import numpy as np

from .coo import FlatCOO

__all__ = ["sddmm", "sddmm_dense"]


def sddmm(pattern: FlatCOO, dy: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Compressed weight-gradient values at the pattern's positions.

    Parameters
    ----------
    pattern:
        Sparsity pattern of the weight (values ignored), shape (out, in).
    dy:
        Output gradient, shape (batch, out).
    x:
        Layer input, shape (batch, in).

    Returns the 1-D array of ``dW`` values aligned with ``pattern.ind`` —
    i.e. already in SAMO's compressed gradient layout.
    """
    rows, cols = pattern.rows_cols()
    if dy.shape[0] != x.shape[0]:
        raise ValueError("batch dims of dy and x differ")
    if dy.shape[1] != pattern.shape[0] or x.shape[1] != pattern.shape[1]:
        raise ValueError("pattern shape does not match dy/x features")
    # nnz dot products over the batch axis, vectorized:
    # vals[k] = dy[:, rows[k]] . x[:, cols[k]]
    return np.einsum("bk,bk->k", dy[:, rows], x[:, cols])


def sddmm_dense(pattern: FlatCOO, dy: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Reference: full dense ``dy.T @ x`` then gather the pattern."""
    dense = dy.T @ x
    return dense.reshape(-1)[pattern.ind]
