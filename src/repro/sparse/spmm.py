"""Sparse matrix x dense matrix products (spMM).

The forward pass of a pruned fully-connected layer is ``Y = X @ W.T`` with
``W`` sparse. Three interchangeable kernels:

* :func:`spmm_scipy` — SciPy CSR (the production sparse path, analogous to
  cuSPARSE/Sputnik's role on GPU);
* :func:`spmm_gather` — pure-NumPy gather/segment-sum reference used to
  validate the SciPy path and as a fallback;
* :func:`spmm_dense` — densify then call BLAS (the paper's cuBLAS
  strategy: "fill out zeros explicitly in the dense matrix").

All take a :class:`~repro.sparse.coo.FlatCOO` weight ``w`` of shape
``(out_features, in_features)`` and an activation ``x`` of shape
``(batch, in_features)``, returning ``(batch, out_features)``.
"""

from __future__ import annotations

import numpy as np

from .coo import FlatCOO

__all__ = ["spmm_scipy", "spmm_gather", "spmm_dense"]


def spmm_scipy(w: FlatCOO, x: np.ndarray) -> np.ndarray:
    """``x @ w.T`` via SciPy CSR (compute proportional to nnz)."""
    csr = w.to_csr()
    return np.asarray((csr @ x.T).T)


def spmm_gather(w: FlatCOO, x: np.ndarray) -> np.ndarray:
    """Pure-NumPy reference: gather columns of x, segment-sum into rows.

    For each non-zero w[r, c], accumulate ``w_val * x[:, c]`` into
    ``out[:, r]``. Vectorized with ``np.add.at`` over the nnz axis.
    """
    rows, cols = w.rows_cols()
    out = np.zeros((x.shape[0], w.shape[0]), dtype=np.result_type(w.values, x))
    # (batch, nnz) contributions — fine for test-scale matrices.
    contrib = x[:, cols] * w.values[None, :]
    np.add.at(out.T, rows, contrib.T)
    return out


def spmm_dense(w: FlatCOO, x: np.ndarray) -> np.ndarray:
    """Densify the sparse weight and use the dense BLAS GEMM."""
    return x @ w.to_dense().T
