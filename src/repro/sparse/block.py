"""Block-sparse matrix storage, kernels and performance models.

The paper's related-work section (II-C) surveys *structured* sparsity as
the one regime where sparse GPU kernels beat cuBLAS: Gray et al. design
block-sparse kernels, and Chen et al.'s column-vector-sparse encoding
"provides speedup over cuBLAS at sparsities as low as 70% at mixed
precision". This module builds that substrate:

* :class:`BlockSparseMatrix` — BSR-style storage (dense blocks at block
  granularity) with exact dense/ CSR interop and a vectorised block spMM;
* :class:`ColumnVectorSparse` — Chen et al.'s (v x 1) column-vector
  encoding, a special case with its own packed layout;
* :data:`BLOCKSPARSE_FP16` / :func:`block_crossover_sparsity` — a
  calibrated tensor-core performance model reproducing the ~70% crossover
  claim, the structured counterpart of Figure 1's unstructured models.

SAMO itself deliberately avoids sparse kernels (Figure 1); this module
exists to *quantify* that design choice — the ablation bench compares
unstructured (Sputnik-class), block-sparse (Chen-class) and dense
(cuBLAS) execution under one roof.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

from .kernel_models import CUBLAS_FP16, GemmModel, V100_PEAK_FP16

__all__ = [
    "BlockSparseMatrix",
    "ColumnVectorSparse",
    "BLOCKSPARSE_FP16",
    "block_sparse_time",
    "block_crossover_sparsity",
]


class BlockSparseMatrix:
    """A 2-D matrix that is sparse at the granularity of dense blocks.

    Storage follows BSR: ``blocks[k]`` is the dense ``(bh, bw)`` content of
    the k-th stored block, located at block-row ``brow[k]`` / block-column
    ``bcol[k]``. Blocks are kept in row-major block order.

    Parameters
    ----------
    brow, bcol:
        Block coordinates, one entry per stored block.
    blocks:
        Array of shape ``(n_blocks, bh, bw)``.
    shape:
        Full matrix shape; must be divisible by the block shape.
    """

    def __init__(
        self,
        brow: np.ndarray,
        bcol: np.ndarray,
        blocks: np.ndarray,
        shape: tuple[int, int],
    ):
        blocks = np.asarray(blocks)
        if blocks.ndim != 3:
            raise ValueError(f"blocks must be (n, bh, bw), got shape {blocks.shape}")
        n, bh, bw = blocks.shape
        if shape[0] % bh or shape[1] % bw:
            raise ValueError(f"shape {shape} not divisible by block ({bh}, {bw})")
        brow = np.asarray(brow, dtype=np.int32)
        bcol = np.asarray(bcol, dtype=np.int32)
        if brow.shape != (n,) or bcol.shape != (n,):
            raise ValueError("brow/bcol must have one entry per block")
        grid = (shape[0] // bh, shape[1] // bw)
        if n and (brow.min() < 0 or brow.max() >= grid[0] or bcol.min() < 0 or bcol.max() >= grid[1]):
            raise ValueError(f"block coordinate out of range for grid {grid}")
        flat = brow.astype(np.int64) * grid[1] + bcol
        if np.unique(flat).size != n:
            raise ValueError("duplicate block coordinates")
        order = np.argsort(flat, kind="stable")
        self.brow = brow[order]
        self.bcol = bcol[order]
        self.blocks = blocks[order]
        self.shape = (int(shape[0]), int(shape[1]))
        self.block_shape = (bh, bw)
        self.grid = grid

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls, dense: np.ndarray, block_shape: tuple[int, int]
    ) -> "BlockSparseMatrix":
        """Capture every block containing at least one non-zero."""
        dense = np.asarray(dense)
        bh, bw = block_shape
        if dense.shape[0] % bh or dense.shape[1] % bw:
            raise ValueError(f"dense shape {dense.shape} not divisible by {block_shape}")
        gr, gc = dense.shape[0] // bh, dense.shape[1] // bw
        # (gr, gc, bh, bw) view of the block grid.
        tiles = dense.reshape(gr, bh, gc, bw).transpose(0, 2, 1, 3)
        nonzero = np.abs(tiles).sum(axis=(2, 3)) > 0
        brow, bcol = np.nonzero(nonzero)
        return cls(brow, bcol, tiles[brow, bcol].copy(), dense.shape)

    @classmethod
    def random(
        cls,
        shape: tuple[int, int],
        block_shape: tuple[int, int],
        sparsity: float,
        rng: np.random.Generator | None = None,
        dtype=np.float32,
    ) -> "BlockSparseMatrix":
        """Uniformly random block pattern at the requested *block* sparsity."""
        rng = rng or np.random.default_rng()
        bh, bw = block_shape
        if shape[0] % bh or shape[1] % bw:
            raise ValueError(f"shape {shape} not divisible by block {block_shape}")
        gr, gc = shape[0] // bh, shape[1] // bw
        n_total = gr * gc
        n_keep = n_total - int(round(sparsity * n_total))
        flat = np.sort(rng.choice(n_total, size=n_keep, replace=False))
        blocks = rng.standard_normal((n_keep, bh, bw)).astype(dtype)
        return cls(flat // gc, flat % gc, blocks, shape)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def nnz(self) -> int:
        """Stored element count (block granularity, zeros inside blocks count)."""
        bh, bw = self.block_shape
        return self.n_blocks * bh * bw

    @property
    def density(self) -> float:
        return self.nnz / (self.shape[0] * self.shape[1])

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    def storage_bytes(self) -> int:
        """Block values + per-block coordinates."""
        return self.blocks.nbytes + self.brow.nbytes + self.bcol.nbytes

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.blocks.dtype)
        bh, bw = self.block_shape
        for k in range(self.n_blocks):  # few blocks; assembly is not hot
            r, c = self.brow[k] * bh, self.bcol[k] * bw
            out[r : r + bh, c : c + bw] = self.blocks[k]
        return out

    def to_scipy_bsr(self) -> sp.bsr_matrix:
        """SciPy BSR view (real block-sparse CPU kernel)."""
        gr, gc = self.grid
        counts = np.bincount(self.brow, minlength=gr)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int32)
        return sp.bsr_matrix(
            (self.blocks, self.bcol, indptr),
            shape=self.shape,
            blocksize=self.block_shape,
        )

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` with A block-sparse, vectorised over stored blocks.

        One batched GEMM over the stored blocks plus a scatter-add into
        block rows — the NumPy rendering of a block-sparse GPU kernel
        (dense tensor-core math inside blocks, coordinates outside).
        """
        x = np.asarray(x)
        if x.shape[0] != self.shape[1]:
            raise ValueError(f"dim mismatch: A is {self.shape}, x has {x.shape[0]} rows")
        bh, bw = self.block_shape
        out_cols = x.shape[1] if x.ndim == 2 else 1
        x2 = x.reshape(self.shape[1], out_cols)
        # Gather the needed x slabs per stored block: (n_blocks, bw, out_cols)
        slabs = x2.reshape(self.grid[1], bw, out_cols)[self.bcol]
        partial = np.einsum("kij,kjl->kil", self.blocks, slabs)  # (n, bh, out)
        out = np.zeros((self.grid[0], bh, out_cols), dtype=partial.dtype)
        np.add.at(out, self.brow, partial)
        result = out.reshape(self.shape[0], out_cols)
        return result if x.ndim == 2 else result.reshape(self.shape[0])

    def __repr__(self) -> str:
        return (
            f"BlockSparseMatrix(shape={self.shape}, block={self.block_shape}, "
            f"blocks={self.n_blocks}/{self.grid[0] * self.grid[1]})"
        )


class ColumnVectorSparse:
    """Chen et al.'s column-vector-sparse encoding: (v x 1) blocks.

    Kept vectors are packed contiguously per column, which is what gives
    the GPU kernel its coalesced loads. Here the packed layout is a
    ``(n_vectors, v)`` array plus per-vector (vector-row, column)
    coordinates — a :class:`BlockSparseMatrix` special case with its own
    packed representation and an exact round-trip.
    """

    def __init__(self, vrow: np.ndarray, col: np.ndarray, vectors: np.ndarray, shape: tuple[int, int], v: int):
        if shape[0] % v:
            raise ValueError(f"rows {shape[0]} not divisible by vector length {v}")
        vectors = np.asarray(vectors)
        if vectors.ndim != 2 or vectors.shape[1] != v:
            raise ValueError(f"vectors must be (n, {v}), got {vectors.shape}")
        self.vrow = np.asarray(vrow, dtype=np.int32)
        self.col = np.asarray(col, dtype=np.int32)
        self.vectors = vectors
        self.shape = (int(shape[0]), int(shape[1]))
        self.v = int(v)

    @classmethod
    def from_dense(cls, dense: np.ndarray, v: int) -> "ColumnVectorSparse":
        """Capture all (v x 1) column vectors containing a non-zero."""
        dense = np.asarray(dense)
        if dense.shape[0] % v:
            raise ValueError(f"rows {dense.shape[0]} not divisible by v={v}")
        gv = dense.shape[0] // v
        tiles = dense.reshape(gv, v, dense.shape[1]).transpose(0, 2, 1)  # (gv, cols, v)
        nonzero = np.abs(tiles).sum(axis=2) > 0
        vrow, col = np.nonzero(nonzero)
        return cls(vrow, col, tiles[vrow, col].copy(), dense.shape, v)

    @property
    def n_vectors(self) -> int:
        return int(self.vectors.shape[0])

    @property
    def density(self) -> float:
        return self.n_vectors * self.v / (self.shape[0] * self.shape[1])

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.vectors.dtype)
        rows = (self.vrow[:, None] * self.v + np.arange(self.v)[None, :]).reshape(-1)
        cols = np.repeat(self.col, self.v)
        out[rows, cols] = self.vectors.reshape(-1)
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` using only the kept vectors (scatter-add per vector)."""
        x = np.asarray(x)
        if x.shape[0] != self.shape[1]:
            raise ValueError(f"dim mismatch: A is {self.shape}, x has {x.shape[0]}")
        contrib = self.vectors * x[self.col][:, None]  # (n, v)
        out = np.zeros((self.shape[0] // self.v, self.v), dtype=contrib.dtype)
        np.add.at(out, self.vrow, contrib)
        return out.reshape(self.shape[0])

    def storage_bytes(self) -> int:
        return self.vectors.nbytes + self.vrow.nbytes + self.col.nbytes

    def __repr__(self) -> str:
        return (
            f"ColumnVectorSparse(shape={self.shape}, v={self.v}, "
            f"vectors={self.n_vectors}, sparsity={self.sparsity:.3f})"
        )


# ---------------------------------------------------------------------------
# performance model (the structured-sparsity counterpart of Figure 1)
# ---------------------------------------------------------------------------

#: Block-sparse tensor-core kernel (Chen et al. class). Runs the kept
#: blocks' flops on tensor cores at a structural-overhead discount to
#: cuBLAS efficiency; calibrated so the cuBLAS crossover lands at ~70%
#: sparsity in mixed precision — the claim the paper cites.
BLOCKSPARSE_FP16 = GemmModel(
    "blocksparse",
    V100_PEAK_FP16,
    eff_max=0.62 * 0.30,  # ~30% of the cuBLAS ceiling: indexing + tail blocks
    half_sat=768.0,
    overhead_s=40e-6,
)


def block_sparse_time(m: int, n: int, k: int, sparsity: float) -> float:
    """Modelled seconds for an (m x k) @ (k x n) block-sparse product.

    Work scales with the kept fraction; efficiency follows the calibrated
    tensor-core ramp discounted for block indexing.
    """
    density = 1.0 - sparsity
    dense_flops = 2.0 * m * n * k
    dim = min(m, n, k)
    return BLOCKSPARSE_FP16.overhead_s + dense_flops * density / (
        BLOCKSPARSE_FP16.peak_flops * BLOCKSPARSE_FP16.efficiency(dim)
    )


def block_crossover_sparsity(m: int = 576, n: int = 2048, k: int = 2048) -> float:
    """Sparsity above which the block-sparse kernel beats cuBLAS.

    Chen et al. report ~0.70 for mixed-precision GEMMs; the calibrated
    models reproduce that within a few points (asserted in tests and
    recorded in EXPERIMENTS.md).
    """
    t_dense = CUBLAS_FP16.time(m, n, k)
    lo, hi = 0.0, 1.0
    for _ in range(40):  # bisection on the monotone time-vs-sparsity curve
        mid = 0.5 * (lo + hi)
        if block_sparse_time(m, n, k, mid) > t_dense:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
