"""Shared-index flattened COO matrices.

This is the storage format SAMO uses for model states, packaged as a
standalone matrix type so the sparse compute kernels and the collective
communication layer can operate on the same representation.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from ..core.indexing import validate_flat_indices

__all__ = ["FlatCOO"]


class FlatCOO:
    """A 2-D sparse matrix stored as (flat int32 indices, values, shape).

    Unlike SciPy's COO there is a single 1-D index array (indices into the
    row-major flattened view) shared across any number of value arrays —
    exactly the paper's storage scheme.
    """

    def __init__(self, ind: np.ndarray, values: np.ndarray, shape: tuple[int, int]):
        if len(shape) != 2:
            raise ValueError("FlatCOO is 2-D; use repro.core for general tensors")
        self.shape = (int(shape[0]), int(shape[1]))
        size = self.shape[0] * self.shape[1]
        self.ind = validate_flat_indices(np.asarray(ind), size)
        values = np.asarray(values)
        if values.shape != self.ind.shape:
            raise ValueError("values and indices must have the same length")
        self.values = values

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "FlatCOO":
        """Capture the non-zero pattern and values of a dense matrix."""
        dense = np.asarray(dense)
        flat = dense.reshape(-1)
        ind = np.flatnonzero(flat).astype(np.int32)
        return cls(ind, flat[ind].copy(), dense.shape)

    @classmethod
    def random(
        cls,
        shape: tuple[int, int],
        sparsity: float,
        rng: np.random.Generator | None = None,
        dtype=np.float32,
    ) -> "FlatCOO":
        """Uniformly random pattern at the requested sparsity."""
        rng = rng or np.random.default_rng()
        size = shape[0] * shape[1]
        nnz = size - int(round(sparsity * size))
        ind = np.sort(rng.choice(size, size=nnz, replace=False)).astype(np.int32)
        values = rng.standard_normal(nnz).astype(dtype)
        return cls(ind, values, shape)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.ind.size)

    @property
    def density(self) -> float:
        return self.nnz / (self.shape[0] * self.shape[1])

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    def rows_cols(self) -> tuple[np.ndarray, np.ndarray]:
        """Row/column coordinates recovered from the flat index."""
        n_cols = self.shape[1]
        return self.ind // n_cols, self.ind % n_cols

    def to_dense(self) -> np.ndarray:
        """Materialise the dense matrix (zeros at pruned positions)."""
        flat = np.zeros(self.shape[0] * self.shape[1], dtype=self.values.dtype)
        flat[self.ind] = self.values
        return flat.reshape(self.shape)

    def to_csr(self) -> sp.csr_matrix:
        """Convert to SciPy CSR for the compute kernels."""
        rows, cols = self.rows_cols()
        return sp.csr_matrix(
            (self.values, (rows, cols)), shape=self.shape
        )

    def with_values(self, values: np.ndarray) -> "FlatCOO":
        """New matrix sharing this pattern with different values —
        the shared-index property SAMO exploits across its state tensors."""
        return FlatCOO(self.ind, values, self.shape)

    def storage_bytes(self) -> int:
        """Index + value bytes (indices are int32 by construction)."""
        return self.ind.nbytes + self.values.nbytes

    def __repr__(self) -> str:
        return f"FlatCOO(shape={self.shape}, nnz={self.nnz}, sparsity={self.sparsity:.3f})"
