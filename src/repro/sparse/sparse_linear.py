"""A fully-connected layer that *computes* sparse (the Sputnik path).

The paper's Sputnik baseline swaps each FC layer's dense GEMMs for sparse
kernels: spMM in the forward pass and sDDMM in the backward (weight
gradient sampled at the sparsity pattern). :class:`SparseLinear` is that
layer on our substrate — the CSR/COO kernels from :mod:`repro.sparse`
wired into the autograd engine. It demonstrates (a) functional
correctness of sparse training and (b) why the paper rejects it: the
kernels compute ``(1-p)`` of the flops but run slower than dense BLAS.
"""

from __future__ import annotations

import numpy as np

from ..tensor.module import Module, Parameter
from ..tensor.tensor import Tensor
from .coo import FlatCOO
from .sddmm import sddmm

__all__ = ["SparseLinear"]


class SparseLinear(Module):
    """``y = x @ W.T + b`` with ``W`` stored and computed sparse.

    Parameters are the *compressed values* (a 1-D tensor aligned with the
    flat index), so the optimizer updates only unpruned weights — the
    pattern is frozen, as with a pruning ticket.
    """

    def __init__(self, pattern: FlatCOO, bias: bool = True):
        super().__init__()
        self.pattern = pattern
        self.out_features, self.in_features = pattern.shape
        self.values = Parameter(pattern.values.astype(np.float32), prunable=True)
        self.bias = Parameter(np.zeros(self.out_features, np.float32)) if bias else None

    @classmethod
    def from_dense(cls, weight: np.ndarray, sparsity: float, bias: bool = True) -> "SparseLinear":
        """Magnitude-prune a dense weight and build the sparse layer."""
        flat = np.abs(weight).reshape(-1)
        k_prune = int(round(sparsity * flat.size))
        order = np.argsort(flat, kind="stable")
        ind = np.sort(order[k_prune:]).astype(np.int32)
        pattern = FlatCOO(ind, weight.reshape(-1)[ind].copy(), weight.shape)
        return cls(pattern, bias=bias)

    def forward(self, x: Tensor) -> Tensor:
        """spMM forward + sDDMM backward, recorded on the autograd tape."""
        values = self.values
        bias = self.bias
        pattern = self.pattern.with_values(values.data)
        csr = pattern.to_csr()
        out_data = np.asarray((csr @ x.data.T).T)
        if bias is not None:
            out_data = out_data + bias.data
        rows, cols = self.pattern.rows_cols()

        def _bwd(g: np.ndarray) -> None:
            if bias is not None and bias.requires_grad:
                bias._accumulate_grad(g.reshape(-1, self.out_features).sum(axis=0))
            if values.requires_grad:
                # sampled dense-dense product at the sparsity pattern
                values._accumulate_grad(
                    sddmm(self.pattern, g.reshape(-1, self.out_features),
                          x.data.reshape(-1, self.in_features)).astype(np.float32)
                )
            if x.requires_grad:
                # dx = g @ W  (transpose spMM)
                dx = np.asarray(csr.T @ g.reshape(-1, self.out_features).T).T
                x._accumulate_grad(dx.reshape(x.data.shape))

        parents = (x, values) if bias is None else (x, values, bias)
        return Tensor._from_op(out_data, parents, _bwd)

    def to_dense_weight(self) -> np.ndarray:
        """Materialise the dense weight (for comparison against Linear)."""
        return self.pattern.with_values(self.values.data).to_dense()

    def __repr__(self) -> str:
        return (
            f"SparseLinear(in={self.in_features}, out={self.out_features}, "
            f"sparsity={self.pattern.sparsity:.2f})"
        )
