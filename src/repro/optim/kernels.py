"""Elementwise optimizer update kernels over raw NumPy arrays.

These kernels are the single source of truth for the update math: the dense
optimizers (:mod:`repro.optim.adam`, :mod:`repro.optim.sgd`) and SAMO's
compressed optimizer step (:mod:`repro.core.samo_optimizer`) both call them.
Because the kernels are pure elementwise array transforms, running them on a
compressed 1-D view or on the full dense tensor produces bitwise-identical
values at the unpruned positions — the property behind the paper's claim
that the optimizer step "can be directly computed on the compressed state
tensors using dense kernels" (Section III-C), and the property our
SAMO-equivalence tests pin down.

All kernels mutate their state arrays in place and return None.
"""

from __future__ import annotations

import numpy as np

__all__ = ["adam_kernel", "sgd_momentum_kernel"]


def adam_kernel(
    param: np.ndarray,
    grad: np.ndarray,
    exp_avg: np.ndarray,
    exp_avg_sq: np.ndarray,
    step: int,
    lr: float,
    beta1: float,
    beta2: float,
    eps: float,
    weight_decay: float,
    decoupled: bool,
) -> None:
    """One Adam/AdamW update, in place.

    ``decoupled=True`` gives AdamW (Loshchilov & Hutter): weight decay is
    applied directly to the parameters rather than folded into the gradient.
    ``step`` is 1-based.
    """
    if step < 1:
        raise ValueError("step must be >= 1")
    if decoupled and weight_decay != 0.0:
        param *= 1.0 - lr * weight_decay
        g = grad
    elif weight_decay != 0.0:
        g = grad + weight_decay * param
    else:
        g = grad

    exp_avg *= beta1
    exp_avg += (1.0 - beta1) * g
    exp_avg_sq *= beta2
    exp_avg_sq += (1.0 - beta2) * (g * g)

    bias1 = 1.0 - beta1**step
    bias2 = 1.0 - beta2**step
    step_size = lr / bias1
    denom = np.sqrt(exp_avg_sq / bias2) + eps
    param -= step_size * exp_avg / denom


def sgd_momentum_kernel(
    param: np.ndarray,
    grad: np.ndarray,
    momentum_buf: np.ndarray,
    lr: float,
    momentum: float,
    weight_decay: float,
    nesterov: bool,
    first_step: bool,
) -> None:
    """One SGD(+momentum) update, in place (PyTorch semantics).

    On the first step the momentum buffer is initialised to the gradient
    (PyTorch's ``buf = grad`` convention), afterwards
    ``buf = momentum*buf + grad``.
    """
    if weight_decay != 0.0:
        g = grad + weight_decay * param
    else:
        g = grad
    if momentum != 0.0:
        if first_step:
            momentum_buf[...] = g
        else:
            momentum_buf *= momentum
            momentum_buf += g
        if nesterov:
            g = g + momentum * momentum_buf
        else:
            g = momentum_buf
    param -= lr * g
