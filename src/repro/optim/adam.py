"""Adam and AdamW optimizers (Kingma & Ba; Loshchilov & Hutter).

Adam is the paper's reference optimizer for the memory model (two fp32
states per parameter -> the ``8·f·φ`` term in Eq. 1); AdamW is used for the
GPT training runs (Section V-A).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..tensor.module import Parameter
from .base import Optimizer
from .kernels import adam_kernel

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam with optional (coupled) L2 weight decay.

    State: ``exp_avg`` (first moment) and ``exp_avg_sq`` (second moment),
    both fp32, lazily allocated to match each parameter.
    """

    decoupled_weight_decay = False

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0,1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.exp_avg: list[np.ndarray] = [
            np.zeros_like(p.data, dtype=np.float32) for p in self.params
        ]
        self.exp_avg_sq: list[np.ndarray] = [
            np.zeros_like(p.data, dtype=np.float32) for p in self.params
        ]

    def step(self) -> None:
        """Apply one update using each parameter's ``.grad``."""
        self.step_count += 1
        for p, m, v in zip(self.params, self.exp_avg, self.exp_avg_sq):
            if p.grad is None:
                continue
            adam_kernel(
                p.data,
                p.grad,
                m,
                v,
                step=self.step_count,
                lr=self.lr,
                beta1=self.betas[0],
                beta2=self.betas[1],
                eps=self.eps,
                weight_decay=self.weight_decay,
                decoupled=self.decoupled_weight_decay,
            )

    def state_bytes(self) -> int:
        return sum(m.nbytes + v.nbytes for m, v in zip(self.exp_avg, self.exp_avg_sq))


class AdamW(Adam):
    """Adam with decoupled weight decay (the GPT-3 training optimizer)."""

    decoupled_weight_decay = True

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.1,
    ):
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)
