"""Optimizers, schedules and gradient utilities.

The update math lives in :mod:`repro.optim.kernels` as in-place array
kernels shared verbatim by SAMO's compressed optimizer step.
"""

from .adam import Adam, AdamW
from .base import Optimizer
from .grad_clip import clip_grad_norm, clip_stored_norm, global_grad_norm
from .kernels import adam_kernel, sgd_momentum_kernel
from .lr_schedules import Constant, StepDecay, WarmupCosine
from .sgd import SGD

__all__ = [
    "Optimizer",
    "Adam",
    "AdamW",
    "SGD",
    "adam_kernel",
    "sgd_momentum_kernel",
    "clip_grad_norm",
    "clip_stored_norm",
    "global_grad_norm",
    "WarmupCosine",
    "StepDecay",
    "Constant",
]
