"""Optimizer base class over :class:`repro.tensor.Parameter` lists."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..tensor.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Holds parameters + per-parameter fp32 state; subclasses define step().

    State arrays are keyed by parameter identity order, mirroring the flat
    layout SAMO compresses. ``set_lr`` supports LR schedules.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.step_count = 0

    def set_lr(self, lr: float) -> None:
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def grads(self) -> list[np.ndarray | None]:
        return [p.grad for p in self.params]

    # -- to be provided by subclasses ---------------------------------------
    def step(self) -> None:
        raise NotImplementedError

    def state_bytes(self) -> int:
        """Bytes of fp32 optimizer state (for the memory model)."""
        raise NotImplementedError
