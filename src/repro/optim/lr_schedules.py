"""Learning-rate schedules used by the paper's training recipes.

GPT-3 training uses linear warmup followed by cosine decay; the CNN
recipes use step decay. Schedules are pure functions of the step index so
they replay identically across the dense and SAMO runs of Figure 4.
"""

from __future__ import annotations

import math

__all__ = ["WarmupCosine", "StepDecay", "Constant"]


class Constant:
    """Flat learning rate."""

    def __init__(self, lr: float):
        self.lr = lr

    def __call__(self, step: int) -> float:
        return self.lr


class WarmupCosine:
    """Linear warmup to ``peak_lr`` then cosine decay to ``min_lr``.

    ``step`` is 0-based; decay completes at ``total_steps`` and the rate
    stays at ``min_lr`` afterwards.
    """

    def __init__(
        self,
        peak_lr: float,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ):
        if warmup_steps < 0 or total_steps <= warmup_steps:
            raise ValueError("need 0 <= warmup_steps < total_steps")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def __call__(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        if step >= self.total_steps:
            return self.min_lr
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        cos = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.peak_lr - self.min_lr) * cos


class StepDecay:
    """Multiply the rate by ``gamma`` at each milestone step."""

    def __init__(self, base_lr: float, milestones: list[int], gamma: float = 0.1):
        self.base_lr = base_lr
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def __call__(self, step: int) -> float:
        lr = self.base_lr
        for m in self.milestones:
            if step >= m:
                lr *= self.gamma
        return lr
