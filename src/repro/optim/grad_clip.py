"""Global-norm gradient clipping (used by the GPT-3 recipe)."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..tensor.module import Parameter

__all__ = ["clip_grad_norm", "global_grad_norm", "clip_stored_norm"]


def global_grad_norm(params: Iterable[Parameter]) -> float:
    """L2 norm over all parameter gradients (None grads contribute 0)."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            g = p.grad
            total += float(np.dot(g.reshape(-1), g.reshape(-1)))
    return math.sqrt(total)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (PyTorch convention).
    """
    params = list(params)
    norm = global_grad_norm(params)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


def clip_stored_norm(
    arrays: list, max_norm: float, loss_scale: float = 1.0
) -> float:
    """Clip a set of *stored* fp16 gradient buffers by global L2 norm.

    This is the mixed-precision variant used by both training states:
    gradients live as fp16 arrays (compressed for SAMO, dense otherwise)
    that still carry the loss scale. The norm is computed on the
    *unscaled* values in fp64; when it exceeds ``max_norm`` every buffer
    is rescaled in fp32 and re-quantised to fp16 in place. Because both
    states apply the identical elementwise operation to identical kept
    values, clipping preserves the dense ≡ SAMO bitwise equivalence.

    Returns the pre-clip (unscaled) norm; NaN/inf buffers are left alone
    (the subsequent optimizer step skips on overflow anyway).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for a in arrays:
        if a is None:
            continue
        g = a.astype(np.float64).reshape(-1)
        total += float(np.dot(g, g))
    norm = math.sqrt(total) / float(loss_scale)
    if not math.isfinite(norm):
        return norm
    if norm > max_norm and norm > 0.0:
        c = np.float32(max_norm / norm)
        for a in arrays:
            if a is None:
                continue
            a[...] = (a.astype(np.float32) * c).astype(np.float16)
    return norm
