"""SGD with momentum (Qian, 1999) — the CNN training optimizer (Table I)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..tensor.module import Parameter
from .base import Optimizer
from .kernels import sgd_momentum_kernel

__all__ = ["SGD"]


class SGD(Optimizer):
    """Stochastic gradient descent with classical or Nesterov momentum."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        if momentum < 0.0:
            raise ValueError(f"momentum must be >= 0, got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self.momentum_buf: list[np.ndarray] = [
            np.zeros_like(p.data, dtype=np.float32) for p in self.params
        ]
        self._stepped: list[bool] = [False] * len(self.params)

    def step(self) -> None:
        """Apply one update using each parameter's ``.grad``."""
        self.step_count += 1
        for i, (p, buf) in enumerate(zip(self.params, self.momentum_buf)):
            if p.grad is None:
                continue
            sgd_momentum_kernel(
                p.data,
                p.grad,
                buf,
                lr=self.lr,
                momentum=self.momentum,
                weight_decay=self.weight_decay,
                nesterov=self.nesterov,
                first_step=not self._stepped[i],
            )
            self._stepped[i] = True

    def state_bytes(self) -> int:
        if self.momentum == 0.0:
            return 0
        return sum(buf.nbytes for buf in self.momentum_buf)
