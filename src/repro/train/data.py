"""Synthetic datasets standing in for Wikitext-103 / BookCorpus / ImageNet.

The paper's statistical-efficiency runs (Figure 4) only need a corpus hard
enough that perplexity falls smoothly with training; we synthesise a
character-level language with Markov structure so tiny GPTs have real
signal to learn, plus a separable Gaussian-blob image set for the CNNs.
Both are deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

from ..rng import resolve_rng

__all__ = ["CharCorpus", "BlobImages", "batch_iterator"]


class CharCorpus:
    """A synthetic character-level corpus with 2nd-order Markov structure.

    Transition tables are themselves sampled from a Dirichlet-like prior
    so the language has low entropy (learnable) but non-trivial structure
    (perplexity cannot collapse to 1). ``vocab_size`` includes all symbols.
    """

    def __init__(self, vocab_size: int = 128, length: int = 100_000, seed: int = 0,
                 concentration: float = 0.05):
        if vocab_size < 4:
            raise ValueError("vocab_size must be >= 4")
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        # sparse-ish conditional distributions: p(x_t | x_{t-1})
        logits = rng.standard_normal((vocab_size, vocab_size)) / concentration
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        self.transition = probs / probs.sum(axis=1, keepdims=True)
        data = np.empty(length, dtype=np.int64)
        data[0] = rng.integers(vocab_size)
        # vectorised-ish sampling: draw uniforms up front, walk the chain
        u = rng.random(length)
        cum = np.cumsum(self.transition, axis=1)
        for t in range(1, length):
            data[t] = np.searchsorted(cum[data[t - 1]], u[t])
        self.data = np.clip(data, 0, vocab_size - 1)
        n_val = max(length // 10, 1)
        self.train_data = self.data[:-n_val]
        self.val_data = self.data[-n_val:]

    def sample_batch(
        self,
        batch_size: int,
        seq_len: int,
        rng: np.random.Generator | int | None = None,
        split: str = "train",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Random (inputs, targets) windows: targets are inputs shifted by 1.

        ``rng`` is a generator (threads one stream through many draws),
        an integer seed, or ``None`` for fresh entropy.
        """
        rng = resolve_rng(rng)
        src = self.train_data if split == "train" else self.val_data
        if len(src) <= seq_len + 1:
            raise ValueError("corpus too short for the requested sequence length")
        starts = rng.integers(0, len(src) - seq_len - 1, size=batch_size)
        x = np.stack([src[s : s + seq_len] for s in starts])
        y = np.stack([src[s + 1 : s + seq_len + 1] for s in starts])
        return x, y

    def entropy_rate_bound(self) -> float:
        """Mean conditional entropy (nats) — a perplexity floor estimate."""
        p = self.transition
        h = -(p * np.log(np.maximum(p, 1e-12))).sum(axis=1)
        return float(h.mean())


class BlobImages:
    """Gaussian-blob image classification set (NCHW float32, 3 channels).

    Each class is a distinct spatial blob pattern plus noise — learnable by
    small CNNs within a few hundred steps.
    """

    def __init__(self, num_classes: int = 10, image_size: int = 32, n: int = 2048,
                 noise: float = 0.3, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.image_size = image_size
        self.prototypes = rng.standard_normal((num_classes, 3, image_size, image_size)).astype(np.float32)
        # Smooth the prototypes so convolutions have spatial structure.
        for _ in range(2):
            self.prototypes = (
                self.prototypes
                + np.roll(self.prototypes, 1, axis=2)
                + np.roll(self.prototypes, 1, axis=3)
            ) / 3.0
        self.labels = rng.integers(0, num_classes, size=n)
        self.images = (
            self.prototypes[self.labels]
            + noise * rng.standard_normal((n, 3, image_size, image_size))
        ).astype(np.float32)

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator | int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        rng = resolve_rng(rng)
        idx = rng.integers(0, len(self.labels), size=batch_size)
        return self.images[idx], self.labels[idx]


def batch_iterator(corpus: CharCorpus, batch_size: int, seq_len: int, n_batches: int, seed=0):
    """Deterministic stream of training batches (``seed``: int or Generator)."""
    rng = resolve_rng(seed)
    for _ in range(n_batches):
        yield corpus.sample_batch(batch_size, seq_len, rng)
