"""End-to-end training loops for the statistical-efficiency experiments.

:class:`Trainer` runs mixed-precision training with dynamic loss scaling
on either execution path:

* ``mode='dense'``  — AxoNN-baseline numerics (optionally masked);
* ``mode='samo'``   — AxoNN+SAMO numerics (requires a mask).

Both paths share optimizer kernels and quantisation points, so with the
same mask and data order they produce identical parameter trajectories —
the reproduction of the paper's Figure 4 parity claim, testable exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import SAMOConfig
from ..core.model_state import SAMOTrainingState
from ..pruning.masks import MaskSet
from ..tensor.module import Module
from ..tensor.precision import DynamicLossScaler
from .metrics import perplexity_from_loss
from .mixed_precision import DenseMixedPrecisionState

__all__ = ["Trainer", "TrainingLog"]


@dataclass
class TrainingLog:
    """Per-iteration records of one run."""

    losses: list[float] = field(default_factory=list)
    perplexities: list[float] = field(default_factory=list)
    skipped_steps: int = 0

    def record(self, loss: float) -> None:
        self.losses.append(loss)
        self.perplexities.append(perplexity_from_loss(loss))


class Trainer:
    """Mixed-precision trainer over a loss-producing model.

    Parameters
    ----------
    model:
        Module exposing ``loss(*batch) -> Tensor`` (e.g. :class:`repro.models.GPT`)
        or any module when a custom ``loss_fn`` is passed to :meth:`step`.
    mode:
        ``'dense'`` or ``'samo'``.
    mask:
        Required for ``'samo'``; optional (masked-dense) for ``'dense'``.
    config:
        Optimizer configuration shared by both paths.
    lr_schedule:
        Optional callable ``step -> lr``.
    loss_scaler:
        Optional :class:`DynamicLossScaler`; default disables scaling
        (scale 1) since fp32-accumulated CPU training rarely overflows.
    grad_clip:
        Optional global-norm gradient clip (the GPT-3 recipe uses 1.0).
        Applied to the *stored* gradients so the dense and SAMO paths
        clip identically.
    """

    def __init__(
        self,
        model: Module,
        mode: str = "dense",
        mask: MaskSet | None = None,
        config: SAMOConfig | None = None,
        lr_schedule=None,
        loss_scaler: DynamicLossScaler | None = None,
        grad_clip: float | None = None,
    ):
        if mode not in ("dense", "samo"):
            raise ValueError(f"mode must be 'dense' or 'samo', got {mode!r}")
        if mode == "samo" and mask is None:
            raise ValueError("SAMO mode requires a pruning mask")
        if grad_clip is not None and grad_clip <= 0:
            raise ValueError("grad_clip must be positive")
        self.model = model
        self.mode = mode
        self.config = config or SAMOConfig()
        self.lr_schedule = lr_schedule
        self.scaler = loss_scaler
        self.grad_clip = grad_clip
        if mode == "samo":
            self.state = SAMOTrainingState(model, mask, self.config)
        else:
            self.state = DenseMixedPrecisionState(model, self.config, mask=mask)
        self.log = TrainingLog()
        self.iteration = 0

    def step(self, *batch, loss_fn=None) -> float:
        """One training iteration on ``batch``; returns the loss value."""
        scale = self.scaler.scale if self.scaler else 1.0
        self.state.zero_grad()
        loss = loss_fn(self.model, *batch) if loss_fn else self.model.loss(*batch)
        loss.backward(np.full_like(loss.data, scale)) if scale != 1.0 else loss.backward()
        self.state.compress_gradients()
        if self.grad_clip is not None:
            self.state.clip_gradients(self.grad_clip, loss_scale=scale)
        lr = self.lr_schedule(self.iteration) if self.lr_schedule else None
        stepped = self.state.step(lr=lr, loss_scale=scale)
        if self.scaler:
            self.scaler.update(overflow=not stepped)
        if not stepped:
            self.log.skipped_steps += 1
        self.iteration += 1
        val = loss.item() / 1.0
        self.log.record(val)
        return val

    def train(self, batches, loss_fn=None) -> TrainingLog:
        """Run over an iterable of batches."""
        for batch in batches:
            if not isinstance(batch, tuple):
                batch = (batch,)
            self.step(*batch, loss_fn=loss_fn)
        return self.log

    def model_state_bytes(self) -> dict[str, int]:
        """Measured model-state bytes of the active storage scheme."""
        return self.state.measured_bytes()
