"""Training loops, datasets and metrics for the functional experiments."""

from .data import BlobImages, CharCorpus, batch_iterator
from .metrics import evaluate_accuracy, evaluate_perplexity, perplexity_from_loss
from .mixed_precision import DenseMixedPrecisionState
from .trainer import Trainer, TrainingLog

__all__ = [
    "Trainer",
    "TrainingLog",
    "DenseMixedPrecisionState",
    "CharCorpus",
    "BlobImages",
    "batch_iterator",
    "perplexity_from_loss",
    "evaluate_perplexity",
    "evaluate_accuracy",
]
