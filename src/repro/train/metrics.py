"""Evaluation metrics: perplexity and accuracy (paper Section V-C)."""

from __future__ import annotations

import math

import numpy as np

from ..tensor import Tensor, functional as F, no_grad
from ..tensor.module import Module

__all__ = ["perplexity_from_loss", "evaluate_perplexity", "evaluate_accuracy"]


def perplexity_from_loss(cross_entropy_nats: float) -> float:
    """Perplexity = exp(cross-entropy), the paper's validation metric."""
    return math.exp(min(cross_entropy_nats, 30.0))  # clamp to avoid overflow


def evaluate_perplexity(model: Module, corpus, batch_size: int, seq_len: int,
                        n_batches: int = 8, seed: int = 1234) -> float:
    """Mean validation perplexity of a language model on a corpus."""
    rng = np.random.default_rng(seed)
    model.eval()
    losses = []
    with no_grad():
        for _ in range(n_batches):
            x, y = corpus.sample_batch(batch_size, seq_len, rng, split="val")
            loss = model.loss(x, y)
            losses.append(loss.item())
    model.train()
    return perplexity_from_loss(float(np.mean(losses)))


def evaluate_accuracy(model: Module, images: np.ndarray, labels: np.ndarray,
                      batch_size: int = 64) -> float:
    """Top-1 accuracy of a classifier."""
    model.eval()
    correct = 0
    with no_grad():
        for i in range(0, len(labels), batch_size):
            xb = Tensor(images[i : i + batch_size])
            logits = model(xb)
            pred = logits.data.argmax(axis=1)
            correct += int((pred == labels[i : i + batch_size]).sum())
    model.train()
    return correct / len(labels)
