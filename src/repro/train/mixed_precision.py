"""Dense mixed-precision training state (the AxoNN baseline numerics).

Mirrors :class:`repro.core.model_state.SAMOTrainingState` exactly, minus
compression: fp32 masters for every parameter, fp16 gradients, parameters
quantised to the fp16 grid for compute, optimizer kernels from
:mod:`repro.optim.kernels`. Because both states quantise at the same
points and share the same kernels, masked-dense training here is *bitwise*
equivalent to SAMO training — the property test behind the paper's
correctness claim (Section VI-A trains both to the same perplexity).

``mask`` is optional: when given, gradients and parameters are masked each
step (the standard way to train a pruned network densely).
"""

from __future__ import annotations

import numpy as np

from ..optim.kernels import adam_kernel, sgd_momentum_kernel
from ..pruning.masks import MaskSet
from ..core.config import SAMOConfig
from ..tensor.module import Module

__all__ = ["DenseMixedPrecisionState"]


class DenseMixedPrecisionState:
    """Dense fp32-master / fp16-compute training state."""

    def __init__(self, model: Module, config: SAMOConfig | None = None, mask: MaskSet | None = None):
        self.model = model
        self.config = config or SAMOConfig()
        self.mask = mask
        self.step_count = 0
        n_slots = self.config.optimizer_state_slots
        if mask is not None:
            mask.apply(model)
        self.names: list[str] = []
        self.params = []
        self.theta32: list[np.ndarray] = []
        self.grad16: list[np.ndarray | None] = []
        self.opt_state: list[list[np.ndarray]] = []
        for name, p in model.named_parameters():
            self.names.append(name)
            self.params.append(p)
            self.theta32.append(p.data.astype(np.float32, copy=True))
            self.grad16.append(None)
            self.opt_state.append([np.zeros_like(p.data, dtype=np.float32) for _ in range(n_slots)])
            # θ16: quantise compute parameters onto the fp16 grid
            p.data[...] = p.data.astype(np.float16).astype(np.float32)

    def compress_gradients(self) -> None:
        """Quantise dense gradients to fp16 storage (accumulating)."""
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.mask is not None and self.names[i] in self.mask:
                keep = self.mask.bool_mask(self.names[i])
                g = np.where(keep, g, 0.0)
            with np.errstate(over="ignore"):  # inf -> scaler skips the step
                g16 = g.astype(np.float16)
            if self.grad16[i] is None:
                self.grad16[i] = g16
            else:
                self.grad16[i] = (
                    self.grad16[i].astype(np.float32) + g16.astype(np.float32)
                ).astype(np.float16)
            p.grad = None

    def has_gradient_overflow(self) -> bool:
        return any(
            g is not None and not np.all(np.isfinite(g)) for g in self.grad16
        )

    def zero_grad(self) -> None:
        self.grad16 = [None] * len(self.params)
        self.model.zero_grad()

    def clip_gradients(self, max_norm: float, loss_scale: float = 1.0) -> float:
        """Global-norm clip of the stored fp16 gradients (pre-clip norm)."""
        from ..optim.grad_clip import clip_stored_norm

        return clip_stored_norm(self.grad16, max_norm, loss_scale)

    def step(self, lr: float | None = None, loss_scale: float = 1.0) -> bool:
        """Dense mixed-precision optimizer step; False on overflow."""
        if self.has_gradient_overflow():
            self.zero_grad()
            return False
        self.step_count += 1
        cfg = self.config
        lr = cfg.lr if lr is None else lr
        inv_scale = 1.0 / float(loss_scale)
        for i, p in enumerate(self.params):
            if self.grad16[i] is None:
                continue
            grad32 = self.grad16[i].astype(np.float32) * inv_scale
            theta32 = self.theta32[i]
            if cfg.optimizer in ("adam", "adamw"):
                adam_kernel(
                    theta32, grad32, self.opt_state[i][0], self.opt_state[i][1],
                    step=self.step_count, lr=lr, beta1=cfg.betas[0], beta2=cfg.betas[1],
                    eps=cfg.eps, weight_decay=cfg.weight_decay,
                    decoupled=cfg.optimizer == "adamw",
                )
            else:
                sgd_momentum_kernel(
                    theta32, grad32, self.opt_state[i][0], lr=lr,
                    momentum=cfg.momentum, weight_decay=cfg.weight_decay,
                    nesterov=cfg.nesterov, first_step=self.step_count == 1,
                )
            if self.mask is not None and self.names[i] in self.mask:
                keep = self.mask.bool_mask(self.names[i])
                theta32[~keep] = 0.0
            p.data[...] = theta32.astype(np.float16).astype(np.float32)
            self.grad16[i] = None
        return True

    def measured_bytes(self) -> dict[str, int]:
        """Model-state bytes (the paper's 20·φ when Adam is used)."""
        out = {"theta16": 0, "grad16": 0, "theta32": 0, "grad32": 0, "optimizer_states": 0}
        for i, t32 in enumerate(self.theta32):
            n = t32.size
            out["theta16"] += 2 * n
            out["grad16"] += 2 * n
            out["theta32"] += 4 * n
            out["grad32"] += 4 * n
            out["optimizer_states"] += sum(s.nbytes for s in self.opt_state[i])
        out["total"] = sum(v for k, v in out.items() if k != "total")
        return out
