"""``repro.serve`` — planning-as-a-service.

The single-process :class:`~repro.api.Session` turned into a long-lived
planning server: JSON-RPC over stdio or a stdlib HTTP server
(:mod:`repro.serve.server`), every request priced through one
process-wide :class:`PersistentEvaluationStore`
(:mod:`repro.serve.store`) — an
:class:`~repro.autotune.cache.EvaluationCache` extended with LRU
bounds, an atomic JSON-lines disk snapshot for warm-starts, and
single-flight coalescing so concurrent identical requests price each
candidate exactly once.

::

    repro serve --store /var/tmp/evals.jsonl            # stdio JSON-RPC
    repro serve --http 8787 --store /var/tmp/evals.jsonl

See ``docs/serving.md`` for the wire protocol, persistence format,
eviction policy, and warm-start semantics.
"""

from .server import PlanningServer, make_http_server, serve_http, serve_stdio
from .store import (
    STORE_FORMAT,
    STORE_VERSION,
    Flight,
    PersistentEvaluationStore,
    decode_key,
    encode_key,
)

__all__ = [
    "PlanningServer",
    "serve_stdio",
    "serve_http",
    "make_http_server",
    "PersistentEvaluationStore",
    "Flight",
    "encode_key",
    "decode_key",
    "STORE_FORMAT",
    "STORE_VERSION",
]
