"""Planning-as-a-service: JSON-RPC over stdio or HTTP.

One long-lived :class:`PlanningServer` owns a single
:class:`~repro.api.Session` bound to a shared
:class:`~repro.serve.store.PersistentEvaluationStore`, and answers the
session's questions over the wire — the ``to_dict``/``from_dict`` layer
on :class:`~repro.api.Job`/:class:`~repro.api.ScenarioSet` and every
result object *is* the wire format, so a request is just the JSON of the
value objects the Python API already takes::

    {"jsonrpc": "2.0", "id": 1, "method": "plan",
     "params": {"job": {"model": "gpt3-xl", "n_gpus": 64}}}

Methods: ``plan``, ``robust_plan``, ``mc_robust_plan``, ``replan``,
``place``, ``breakdown``, ``metrics``, ``stats``, ``save``, ``ping``,
``shutdown``. Errors follow
JSON-RPC codes (-32700 parse, -32601 unknown method, -32602 invalid
params, -32000 internal).

Transports (both concurrent, so identical in-flight requests coalesce
through the store's single-flight protocol):

* **stdio** — one JSON request (or a JSON-RPC batch array) per line on
  stdin, one response per line on stdout. Single requests are answered
  as they complete (match responses by ``id``); a batch array gets one
  array response in request order.
* **HTTP** — a stdlib :class:`http.server.ThreadingHTTPServer`:
  ``POST /`` with a request or batch body, ``GET /metrics`` for the
  Prometheus text exposition, ``GET /healthz``.

Every request lands in ``serve.requests{method=...}`` and
``serve.request_seconds{method=...}`` on the session registry, next to
the existing ``session.ops``/``estimator.calls`` instruments; misses
coalesced onto another request's in-flight evaluation count in
``serve.inflight_coalesced``.
"""

from __future__ import annotations

import concurrent.futures
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..api import Job, Machine, ScenarioSet, Session
from ..parallel.scenarios import ClusterScenario
from ..stochastic import ScenarioProcess
from .store import PersistentEvaluationStore

__all__ = ["PlanningServer", "serve_stdio", "serve_http"]

PROTOCOL = "2.0"

#: JSON-RPC error codes
PARSE_ERROR = -32700
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32000


def _resolve_scenario(value):
    """A scenario param: preset name, ClusterScenario dict, or None."""
    if isinstance(value, dict):
        return ClusterScenario.from_dict(value)
    return value  # name / None — Session resolves presets itself


def _search_kwargs(params: dict) -> dict:
    """The optional search-axis params ``plan``/``robust_plan`` accept."""
    kwargs = {}
    if "frameworks" in params:
        kwargs["frameworks"] = tuple(params["frameworks"])
    if "microbatch_sizes" in params:
        kwargs["microbatch_sizes"] = tuple(params["microbatch_sizes"])
    if "explore_no_checkpoint" in params:
        kwargs["explore_no_checkpoint"] = bool(params["explore_no_checkpoint"])
    return kwargs


class PlanningServer:
    """The service half: request dicts in, response dicts out.

    Transport-agnostic — :func:`serve_stdio` and :func:`serve_http` (and
    the load benchmark, which calls :meth:`handle` straight from worker
    threads) all share this object, its session, and its store.
    """

    def __init__(
        self,
        machine: Machine | None = None,
        store: PersistentEvaluationStore | None = None,
        max_workers: int | None = None,
    ):
        self.store = store if store is not None else PersistentEvaluationStore()
        self.session = Session(
            machine if machine is not None else Machine(),
            cache=self.store,
            max_workers=max_workers,
        )
        self.registry = self.session.registry
        self._stop = threading.Event()
        if self.store.path is not None:
            self.store.load()

    # ------------------------------------------------------------------
    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def shutdown(self) -> None:
        self._stop.set()

    def close(self) -> None:
        """Flush the store on the way out (transports call this)."""
        if self.store.path is not None:
            self.store.save()

    # -- method handlers ------------------------------------------------
    def _job(self, params: dict) -> Job:
        if "job" not in params:
            raise ValueError("missing required param 'job'")
        return Job.from_dict(dict(params["job"]))

    def do_plan(self, params: dict) -> dict:
        result = self.session.plan(
            self._job(params),
            scenario=_resolve_scenario(params.get("scenario")),
            **_search_kwargs(params),
        )
        return result.to_dict()

    def do_robust_plan(self, params: dict) -> dict:
        scenarios = params.get("scenarios")
        if scenarios is None:
            raise ValueError("missing required param 'scenarios'")
        if isinstance(scenarios, dict):
            scenarios = ScenarioSet.from_dict(scenarios)
        result = self.session.robust_plan(
            self._job(params), scenarios, **_search_kwargs(params)
        )
        doc = result.to_dict()
        # per-label PlanResults are derivable and heavy; the wire carries
        # the aggregated ranking only
        doc.pop("per_scenario", None)
        return doc

    def do_mc_robust_plan(self, params: dict) -> dict:
        process = params.get("process")
        if process is None:
            raise ValueError("missing required param 'process'")
        if isinstance(process, dict):
            process = ScenarioProcess.from_dict(process)
        result = self.session.mc_robust_plan(
            self._job(params),
            process,
            samples=int(params.get("samples", 32)),
            seed=int(params.get("seed", 0)),
            crn=bool(params.get("crn", True)),
            **_search_kwargs(params),
        )
        doc = result.to_dict()
        # per-candidate sample vectors are derivable from the seed and
        # heavy on the wire; keep them for the best entry only
        for entry in doc["entries"]:
            entry.pop("sample_costs", None)
        return doc

    def do_replan(self, params: dict) -> dict:
        failure = params.get("failure")
        if failure is None:
            raise ValueError("missing required param 'failure'")
        kwargs = {}
        if "at" in params:
            kwargs["at"] = float(params["at"])
        if "horizon_batches" in params:
            kwargs["horizon_batches"] = float(params["horizon_batches"])
        if "migration_seconds" in params:
            kwargs["migration_seconds"] = float(params["migration_seconds"])
        result = self.session.replan(
            self._job(params), _resolve_scenario(failure), **kwargs
        )
        return result.to_dict()

    def do_place(self, params: dict) -> dict:
        result = self.session.place(
            self._job(params),
            scenario=_resolve_scenario(params.get("scenario")),
            swap_sweeps=int(params.get("swap_sweeps", 2)),
        )
        return result.to_dict()

    def do_breakdown(self, params: dict) -> dict:
        result = self.session.breakdown(
            self._job(params), scenario=_resolve_scenario(params.get("scenario"))
        )
        return result.to_dict()

    def do_metrics(self, params: dict) -> dict:
        return {"session": self.session.metrics(), "store": self.store.stats()}

    def do_stats(self, params: dict) -> dict:
        return self.store.stats()

    def do_save(self, params: dict) -> dict:
        path = params.get("path")
        n = self.store.save(path) if path else self.store.save()
        return {"saved": n, "path": path or self.store.path}

    def do_ping(self, params: dict) -> dict:
        return {"ok": True}

    def do_shutdown(self, params: dict) -> dict:
        self.shutdown()
        return {"ok": True, "stopping": True}

    # ------------------------------------------------------------------
    def handle(self, request) -> dict:
        """One JSON-RPC request dict -> one response dict (never raises)."""
        rid = request.get("id") if isinstance(request, dict) else None
        if not isinstance(request, dict) or not isinstance(
            request.get("method"), str
        ):
            return self._error(rid, PARSE_ERROR, "request must be an object with a 'method'")
        method = request["method"]
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return self._error(rid, INVALID_PARAMS, "'params' must be an object")
        handler = getattr(self, f"do_{method}", None)
        if handler is None or method.startswith("_"):
            return self._error(rid, METHOD_NOT_FOUND, f"unknown method {method!r}")
        self.registry.counter("serve.requests", {"method": method}).inc()
        t0 = time.perf_counter()
        try:
            result = handler(params)
        except (KeyError, ValueError, TypeError) as err:
            self.registry.counter("serve.errors", {"method": method}).inc()
            msg = err.args[0] if err.args else str(err)
            return self._error(rid, INVALID_PARAMS, str(msg))
        except Exception as err:  # noqa: BLE001 — a server must not die
            self.registry.counter("serve.errors", {"method": method}).inc()
            return self._error(rid, INTERNAL_ERROR, f"{type(err).__name__}: {err}")
        finally:
            self.registry.histogram(
                "serve.request_seconds", {"method": method}
            ).observe(time.perf_counter() - t0)
        return {"jsonrpc": PROTOCOL, "id": rid, "result": result}

    @staticmethod
    def _error(rid, code: int, message: str) -> dict:
        return {
            "jsonrpc": PROTOCOL,
            "id": rid,
            "error": {"code": code, "message": message},
        }

    # -- prometheus -----------------------------------------------------
    def prometheus(self) -> str:
        """Registry exposition plus the store state as gauges."""
        for name, value in self.store.stats().items():
            self.registry.gauge("serve.store", {"stat": name}).set(value)
        return self.session.metrics_text()


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------

def serve_stdio(server: PlanningServer, stdin, stdout, request_workers: int = 8) -> int:
    """Line-oriented JSON-RPC until EOF or a ``shutdown`` request.

    Single requests run on a worker pool and are written as they finish
    (tagged by ``id``); a batch array blocks the read loop and answers
    in order — which is also the natural way to send a thundering herd
    down one pipe.
    """
    write_lock = threading.Lock()

    def emit(obj) -> None:
        with write_lock:
            stdout.write(json.dumps(obj) + "\n")
            stdout.flush()

    try:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=request_workers
        ) as pool:
            for line in stdin:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError as err:
                    emit(server._error(None, PARSE_ERROR, f"invalid JSON: {err}"))
                    continue
                if isinstance(payload, list):
                    futures = [pool.submit(server.handle, r) for r in payload]
                    emit([f.result() for f in futures])
                else:
                    pool.submit(server.handle, payload).add_done_callback(
                        lambda f: emit(f.result())
                    )
                if server.stopped:
                    break
    finally:
        server.close()
    return 0


def make_http_server(
    server: PlanningServer, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """The HTTP half, not yet serving (callers own the lifecycle)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _respond(self, code: int, body: bytes, content_type: str) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _json(self, code: int, obj) -> None:
            self._respond(code, json.dumps(obj).encode(), "application/json")

        def do_POST(self):  # noqa: N802 — BaseHTTPRequestHandler contract
            length = int(self.headers.get("Content-Length") or 0)
            try:
                payload = json.loads(self.rfile.read(length) or b"")
            except ValueError as err:
                self._json(
                    400, server._error(None, PARSE_ERROR, f"invalid JSON: {err}")
                )
                return
            if isinstance(payload, list):
                with concurrent.futures.ThreadPoolExecutor(
                    max_workers=min(8, max(1, len(payload)))
                ) as pool:
                    response = list(pool.map(server.handle, payload))
            else:
                response = server.handle(payload)
            self._json(200, response)

        def do_GET(self):  # noqa: N802
            if self.path == "/metrics":
                self._respond(200, server.prometheus().encode(), "text/plain")
            elif self.path in ("/healthz", "/health"):
                self._json(200, {"ok": True, "stats": server.store.stats()})
            else:
                self._json(404, {"error": "unknown path"})

        def log_message(self, *args):  # silence per-request stderr noise
            pass

    return ThreadingHTTPServer((host, port), Handler)


def serve_http(
    server: PlanningServer, host: str = "127.0.0.1", port: int = 8787
) -> int:
    """Serve over HTTP until a ``shutdown`` request or KeyboardInterrupt."""
    httpd = make_http_server(server, host, port)

    def _watch_stop():
        server._stop.wait()
        httpd.shutdown()

    watcher = threading.Thread(target=_watch_stop, daemon=True)
    watcher.start()
    try:
        httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        httpd.server_close()
        server.close()
    return 0
