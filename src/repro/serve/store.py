"""The process-wide evaluation store behind the planning server.

:class:`PersistentEvaluationStore` extends
:class:`~repro.autotune.cache.EvaluationCache` with the three properties
a long-lived, shared service needs and a per-process memo does not:

* **Bounded capacity with LRU eviction** — entries are kept in
  recency order (every hit refreshes); once ``max_entries`` is exceeded
  the least-recently-used evaluation is dropped and counted in
  ``evictions``.
* **Disk persistence + warm-start** — :meth:`save` writes an atomic
  JSON-lines snapshot (versioned header line, one ``{key, evaluation}``
  record per line, ``os.replace`` so readers never see a torn file);
  :meth:`load` warm-starts a fresh process from it. A file that fails
  the header or any record check is *quarantined* (renamed to
  ``<path>.corrupt-<n>``) instead of crashing the server — the valid
  prefix is kept.
* **Single-flight request coalescing** — :meth:`acquire` hands each
  missing key to exactly one caller (the *owner*, who must
  :meth:`fulfil` or :meth:`abandon` it); every other concurrent caller
  gets a :class:`Flight` to wait on. A thundering herd of identical
  requests therefore prices each candidate exactly once; coalesced
  waits are counted in ``coalesced``.

Cache keys (see :func:`~repro.autotune.cache.evaluation_cache_key`) are
tuples over strings, numbers, ``None``, the frozen
:class:`~repro.cluster.calibration.SummitCalibration` and
:class:`~repro.parallel.scenarios.ClusterScenario` value objects —
:func:`encode_key`/:func:`decode_key` round-trip them through JSON such
that a decoded key compares (and hashes) equal to a freshly computed
one, which is what makes warm-start serve the same answers.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
from collections import OrderedDict

from ..autotune.cache import EvaluationCache
from ..autotune.estimator import Evaluation
from ..cluster.calibration import SummitCalibration
from ..parallel.scenarios import ClusterScenario

__all__ = [
    "STORE_FORMAT",
    "STORE_VERSION",
    "encode_key",
    "decode_key",
    "Flight",
    "PersistentEvaluationStore",
]

#: magic + schema version of the snapshot header line
STORE_FORMAT = "repro-eval-store"
STORE_VERSION = 1


# ---------------------------------------------------------------------------
# key codec
# ---------------------------------------------------------------------------

def encode_key(obj):
    """JSON-encodable form of one cache-key element (or a whole key).

    Tuples, calibrations and scenarios are tagged so :func:`decode_key`
    can rebuild value-equal objects; scalars pass through (JSON floats
    round-trip exactly, so decoded keys hash identically).
    """
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    if isinstance(obj, tuple):
        return {"__tuple__": [encode_key(x) for x in obj]}
    if isinstance(obj, SummitCalibration):
        return {
            "__calibration__": {
                f: getattr(obj, f) for f in obj.__dataclass_fields__
            }
        }
    if isinstance(obj, ClusterScenario):
        return {"__scenario__": obj.to_dict()}
    raise TypeError(f"cannot encode cache-key element of type {type(obj).__name__}")


def decode_key(data):
    """Inverse of :func:`encode_key`."""
    if isinstance(data, dict):
        if "__tuple__" in data:
            return tuple(decode_key(x) for x in data["__tuple__"])
        if "__calibration__" in data:
            return SummitCalibration(**data["__calibration__"])
        if "__scenario__" in data:
            return ClusterScenario.from_dict(data["__scenario__"])
        raise ValueError(f"unknown key tag {sorted(data)!r}")
    return data


# ---------------------------------------------------------------------------
# single-flight
# ---------------------------------------------------------------------------

class Flight:
    """One in-flight evaluation other requests can wait on."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error = None

    def set(self, value: Evaluation) -> None:
        self._value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: float | None = None) -> Evaluation:
        """Block until the owner fulfils (or abandons) the flight."""
        if not self._event.wait(timeout):
            raise TimeoutError("in-flight evaluation did not complete in time")
        if self._error is not None:
            raise RuntimeError(
                "coalesced evaluation failed in its owning request"
            ) from self._error
        return self._value


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

class PersistentEvaluationStore(EvaluationCache):
    """Shared evaluation store: LRU bounds, persistence, single-flight.

    Drop-in for any :class:`~repro.api.Session` ``cache=``; planners
    detect ``supports_single_flight`` and route cache misses through
    :meth:`acquire`/:meth:`fulfil` so concurrent identical searches
    coalesce.

    ``max_entries=0`` means unbounded. ``autosave_every=N`` snapshots to
    ``path`` after every N puts (0 disables; :meth:`save` is always
    available explicitly).
    """

    #: planners reroute their miss path through acquire/fulfil when True
    supports_single_flight = True

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        max_entries: int = 0,
        autosave_every: int = 0,
    ):
        super().__init__()
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if autosave_every < 0:
            raise ValueError(f"autosave_every must be >= 0, got {autosave_every}")
        # recency-ordered entries (oldest first) make eviction O(1)
        self._entries = OrderedDict()
        self.path = os.fspath(path) if path is not None else None
        self.max_entries = max_entries
        self.autosave_every = autosave_every
        self.evictions = 0
        self.coalesced = 0
        #: entries warm-started from disk by the last :meth:`load`
        self.loaded = 0
        #: where a corrupt snapshot was moved, if one was quarantined
        self.quarantined: str | None = None
        self._inflight: dict[tuple, Flight] = {}
        self._puts_since_save = 0

    # -- the memo interface (LRU-aware) --------------------------------
    def get(self, key: tuple) -> Evaluation | None:
        with self._lock:
            ev = self._entries.get(key)
            if ev is None:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(key)
            return ev

    def put(self, key: tuple, evaluation: Evaluation) -> None:
        with self._lock:
            if key in self._entries:
                self.dedup += 1
            self._entries[key] = evaluation
            self._entries.move_to_end(key)
            if self.max_entries:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
            self._puts_since_save += 1
            autosave = (
                self.path is not None
                and self.autosave_every
                and self._puts_since_save >= self.autosave_every
            )
            if autosave:
                self._puts_since_save = 0
        if autosave:
            self.save()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.dedup = 0
            self.evictions = 0
            self.coalesced = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "dedup": self.dedup,
                "max_entries": self.max_entries,
                "evictions": self.evictions,
                "coalesced": self.coalesced,
                "inflight": len(self._inflight),
                "loaded": self.loaded,
            }

    # -- single-flight --------------------------------------------------
    def acquire(self, keys) -> tuple[list, dict, dict]:
        """Partition ``keys`` into owned / waiting / already-cached.

        Returns ``(owned, flights, ready)``: the caller must evaluate
        every key in ``owned`` and :meth:`fulfil` (or :meth:`abandon`)
        it; ``flights`` maps keys another caller is already pricing to
        their :class:`Flight`; ``ready`` holds evaluations that landed
        in the cache since the caller's miss scan (counted as hits).
        """
        owned: list = []
        flights: dict = {}
        ready: dict = {}
        with self._lock:
            for key in keys:
                ev = self._entries.get(key)
                if ev is not None:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    ready[key] = ev
                elif key in self._inflight:
                    self.coalesced += 1
                    flights[key] = self._inflight[key]
                else:
                    self._inflight[key] = Flight()
                    owned.append(key)
        return owned, flights, ready

    def fulfil(self, key: tuple, evaluation: Evaluation) -> None:
        """Publish an owned evaluation and wake every coalesced waiter."""
        self.put(key, evaluation)
        with self._lock:
            flight = self._inflight.pop(key, None)
        if flight is not None:
            flight.set(evaluation)

    def abandon(self, key: tuple, error: BaseException) -> None:
        """Release an owned key after a failure; waiters re-raise."""
        with self._lock:
            flight = self._inflight.pop(key, None)
        if flight is not None:
            flight.fail(error)

    # -- persistence ----------------------------------------------------
    def save(self, path: str | os.PathLike | None = None) -> int:
        """Atomic JSON-lines snapshot; returns the entry count written.

        Written to a temporary file in the target directory and
        ``os.replace``d into place, so a concurrent :meth:`load` (or a
        kill mid-save) sees either the old snapshot or the new one,
        never a torn file.
        """
        path = os.fspath(path) if path is not None else self.path
        if path is None:
            raise ValueError("no snapshot path: pass one or construct with path=")
        with self._lock:
            records = [
                (encode_key(key), ev.to_dict()) for key, ev in self._entries.items()
            ]
        header = {"format": STORE_FORMAT, "version": STORE_VERSION, "entries": len(records)}
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(prefix=".eval-store-", dir=directory)
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(header) + "\n")
                for key, ev in records:
                    fh.write(json.dumps({"key": key, "evaluation": ev}) + "\n")
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return len(records)

    def load(self, path: str | os.PathLike | None = None) -> int:
        """Warm-start from a snapshot; returns the entry count loaded.

        A missing file loads nothing (a fresh server starts cold). A
        corrupt file — wrong magic, unsupported version, or a malformed
        record — is quarantined by renaming it next to the snapshot
        (``<path>.corrupt-<n>``) and the valid prefix is kept, so a
        crash mid-save or a hand-edited file can never take the server
        down with it.
        """
        path = os.fspath(path) if path is not None else self.path
        if path is None:
            raise ValueError("no snapshot path: pass one or construct with path=")
        if not os.path.exists(path):
            return 0
        loaded: list[tuple[tuple, Evaluation]] = []
        corrupt: str | None = None
        with open(path) as fh:
            try:
                header = json.loads(fh.readline())
                if not (
                    isinstance(header, dict)
                    and header.get("format") == STORE_FORMAT
                    and header.get("version") == STORE_VERSION
                ):
                    raise ValueError(f"unrecognised snapshot header: {header!r}")
                for line in fh:
                    if not line.strip():
                        continue
                    record = json.loads(line)
                    loaded.append(
                        (
                            decode_key(record["key"]),
                            Evaluation.from_dict(record["evaluation"]),
                        )
                    )
            except (ValueError, KeyError, TypeError) as err:
                corrupt = str(err)
        if corrupt is not None:
            self.quarantined = self._quarantine(path)
        with self._lock:
            for key, ev in loaded:
                self._entries[key] = ev
                self._entries.move_to_end(key)
                if self.max_entries:
                    while len(self._entries) > self.max_entries:
                        self._entries.popitem(last=False)
                        self.evictions += 1
            self.loaded = len(loaded)
        return len(loaded)

    @staticmethod
    def _quarantine(path: str) -> str:
        n = 0
        while True:
            target = f"{path}.corrupt-{n}"
            if not os.path.exists(target):
                try:
                    os.replace(path, target)
                except OSError:
                    return path  # unmovable: leave it; we already start cold
                return target
            n += 1
