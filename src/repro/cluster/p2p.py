"""Point-to-point message cost model for inter-layer (pipeline) traffic."""

from __future__ import annotations

from .calibration import SUMMIT, SummitCalibration
from .topology import Topology

__all__ = ["p2p_message_time", "pipeline_message_bytes"]


def p2p_message_time(
    nbytes: int,
    src: int = 0,
    dst: int = 1,
    topology: Topology | None = None,
    cal: SummitCalibration = SUMMIT,
) -> float:
    """Exposed seconds for one pipeline message of ``nbytes``.

    With a topology, the link class (NVLink vs InfiniBand) is chosen from
    the endpoints; otherwise the calibrated cross-node α-β is used — the
    conservative default since AxoNN's pipeline neighbours usually land on
    different nodes once ``G_inter`` exceeds the node size.
    """
    if nbytes == 0 or src == dst:
        return 0.0
    if topology is not None:
        return topology.p2p_time(src, dst, nbytes)
    return cal.p2p_alpha + nbytes / cal.p2p_beta


def pipeline_message_bytes(mbs: int, activation_elems_per_sample: int, bytes_per_elem: int = 2) -> int:
    """Payload of one activation/gradient message: ``mbs`` samples of the
    stage-boundary activation in half precision."""
    return mbs * activation_elems_per_sample * bytes_per_elem
