"""Calibration constants for the simulated Summit cluster.

Provenance of every constant:

* Topology and peaks come from the paper's Section V ("Summit has two
  POWER9 CPUs and six 16 GB NVIDIA V100 GPUs per node... intra-node
  bandwidth, inter-node bandwidth, and the peak half-precision throughput
  are 50 GB/s, 12.5 GB/s and 125 Tflop/s per GPU").
* *Effective* bandwidths and efficiencies are fitted so that the simulated
  batch times and phase breakdowns reproduce the paper's reported shapes
  (Figs. 5-8, Table II): effective NCCL bandwidth on Summit is well below
  link peak, exposed p2p per message includes protocol overheads, and GEMM
  efficiency is a fraction of tensor-core peak.

We claim shape fidelity (framework ordering, speedup bands, trends with
GPU count), not absolute seconds — see EXPERIMENTS.md.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace

__all__ = ["SummitCalibration", "SUMMIT", "with_memory_budget"]


@dataclass(frozen=True)
class SummitCalibration:
    """All tunables of the simulated machine in one place."""

    # -- topology (paper Section V) ----------------------------------------
    gpus_per_node: int = 6
    gpu_memory_bytes: int = 16 * 1024**3
    peak_fp16_flops: float = 125e12
    nvlink_bw: float = 50e9  # B/s, intra-node
    ib_bw: float = 12.5e9  # B/s per GPU, inter-node

    # -- compute efficiency (fitted) ----------------------------------------
    #: achieved fraction of fp16 peak for large transformer GEMMs
    gemm_efficiency: float = 0.60
    #: asymptotic achieved fraction of fp16 peak for CNN conv kernels.
    #: Fitted to the paper's Fig. 5 absolute batch times (Summit's CNN
    #: training throughput is low: ~16 img/s/GPU for VGG-19).
    conv_efficiency: float = 0.006
    #: per-GPU sample count at which conv efficiency reaches half its
    #: asymptote (small per-GPU batches underutilise the device — this is
    #: why WideResnet's strong-scaling speedups stay flat in Fig. 5)
    conv_half_batch: float = 2.0
    #: end-to-end slowdown of Sputnik sparse kernels vs dense compute at
    #: 90% sparsity on *training-shaped* GEMMs. Fig. 1's 6-22x is for the
    #: batch-576 microbenchmark; end-to-end (Figs. 6-7) implies ~2-3x.
    sputnik_compute_slowdown: float = 2.5
    #: SAMO's backward-pass gradient-compression overhead, seconds per
    #: (stage parameter x microbatch) gathered. Fitted to the paper's
    #: Section VI-C observation that the overhead is 8-12% of AxoNN's
    #: batch time for GPT-3 2.7B (unfused gather + cast kernels).
    samo_compress_cost_per_param: float = 5.0e-11

    # -- point-to-point messaging (fitted) ----------------------------------
    #: latency per exposed pipeline message (software + injection)
    p2p_alpha: float = 100e-6
    #: effective exposed bandwidth per pipeline message; well below IB peak
    #: because the paper's t_send counts serialized per-message cost
    p2p_beta: float = 1.5e9

    # -- collectives (fitted) -----------------------------------------------
    #: per-hop latency of ring collectives
    coll_alpha: float = 150e-6
    #: effective per-GPU NCCL ring bandwidth across nodes
    coll_beta: float = 4.0e9
    #: fraction of the data-parallel all-reduce that AxoNN/DDP-style
    #: bucketing can hide under backward compute in *pure data parallel*
    #: CNN runs (hybrid GPT runs synchronize after the pipeline flush and
    #: get no overlap, per the paper's Section IV-A description)
    dp_overlap_fraction: float = 0.25

    # -- memory model (fitted) ----------------------------------------------
    #: per-GPU framework overhead: CUDA/NCCL buffers, workspaces, logits,
    #: fragmentation. Fitted so dense GPT-3 2.7B needs G_inter=8 and
    #: SAMO needs G_inter=2 on 16 GB V100s, consistent with Fig. 8 (which
    #: shows non-zero p2p and bubble phases for AxoNN+SAMO).
    framework_overhead_bytes: int = 5 * 1024**3
    #: pipeline "other" time per batch (data loading, python, logging) as a
    #: fraction of compute
    other_fraction: float = 0.05

    # -- DeepSpeed-3D penalties (fitted) -------------------------------------
    #: DeepSpeed's synchronous pipeline exposes more p2p than AxoNN's
    #: message-driven asynchronous schedule; bubble behaviour is similar
    #: (both run 1F1B). This reproduces the paper's observation that
    #: DeepSpeed-3D trails AxoNN at small scale (p2p-dominated) and matches
    #: it at large scale.
    deepspeed_p2p_penalty: float = 1.30
    deepspeed_bubble_penalty: float = 1.00


#: The default simulated machine.
SUMMIT = SummitCalibration()


@functools.lru_cache(maxsize=None)
def with_memory_budget(
    budget_gb: float, base: SummitCalibration = SUMMIT
) -> SummitCalibration:
    """Calibration variant with a different per-GPU memory budget.

    Pure and cached: planners ask for the same budget once per candidate
    config, and a cached identical ``SummitCalibration`` instance keeps
    downstream memoisation keys (which include the calibration) stable.
    """
    if budget_gb <= 0:
        raise ValueError(f"budget_gb must be positive, got {budget_gb}")
    return replace(base, gpu_memory_bytes=int(budget_gb * 1024**3))
