"""Calibration constants for the simulated Summit cluster.

Provenance of every constant:

* Topology and peaks come from the paper's Section V ("Summit has two
  POWER9 CPUs and six 16 GB NVIDIA V100 GPUs per node... intra-node
  bandwidth, inter-node bandwidth, and the peak half-precision throughput
  are 50 GB/s, 12.5 GB/s and 125 Tflop/s per GPU").
* *Effective* bandwidths and efficiencies are fitted so that the simulated
  batch times and phase breakdowns reproduce the paper's reported shapes
  (Figs. 5-8, Table II): effective NCCL bandwidth on Summit is well below
  link peak, exposed p2p per message includes protocol overheads, and GEMM
  efficiency is a fraction of tensor-core peak.

We claim shape fidelity (framework ordering, speedup bands, trends with
GPU count), not absolute seconds — see EXPERIMENTS.md.

:func:`fit_calibration` closes the loop in the other direction: given
timed ``(size, seconds)`` communication runs — wall-clock measurements
from the executable stack, or seeded synthetic draws from
:func:`synthetic_comm_samples` — it least-squares-fits the alpha/beta
constants of the p2p and collective channels and returns a new
:class:`SummitCalibration`, which is what the ``measured`` fidelity
(:mod:`repro.autotune.measured`) feeds from executed schedules.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, fields, replace

import numpy as np

__all__ = [
    "SummitCalibration",
    "SUMMIT",
    "with_memory_budget",
    "CommSample",
    "fit_calibration",
    "synthetic_comm_samples",
]

#: calibration fields that may legitimately be zero (pure fractions);
#: every other constant is a physical rate, latency, or size and must be
#: strictly positive
_ZERO_OK_FIELDS = frozenset({"dp_overlap_fraction", "other_fraction"})


@dataclass(frozen=True)
class SummitCalibration:
    """All tunables of the simulated machine in one place."""

    # -- topology (paper Section V) ----------------------------------------
    gpus_per_node: int = 6
    gpu_memory_bytes: int = 16 * 1024**3
    peak_fp16_flops: float = 125e12
    nvlink_bw: float = 50e9  # B/s, intra-node
    ib_bw: float = 12.5e9  # B/s per GPU, inter-node

    # -- compute efficiency (fitted) ----------------------------------------
    #: achieved fraction of fp16 peak for large transformer GEMMs
    gemm_efficiency: float = 0.60
    #: asymptotic achieved fraction of fp16 peak for CNN conv kernels.
    #: Fitted to the paper's Fig. 5 absolute batch times (Summit's CNN
    #: training throughput is low: ~16 img/s/GPU for VGG-19).
    conv_efficiency: float = 0.006
    #: per-GPU sample count at which conv efficiency reaches half its
    #: asymptote (small per-GPU batches underutilise the device — this is
    #: why WideResnet's strong-scaling speedups stay flat in Fig. 5)
    conv_half_batch: float = 2.0
    #: end-to-end slowdown of Sputnik sparse kernels vs dense compute at
    #: 90% sparsity on *training-shaped* GEMMs. Fig. 1's 6-22x is for the
    #: batch-576 microbenchmark; end-to-end (Figs. 6-7) implies ~2-3x.
    sputnik_compute_slowdown: float = 2.5
    #: SAMO's backward-pass gradient-compression overhead, seconds per
    #: (stage parameter x microbatch) gathered. Fitted to the paper's
    #: Section VI-C observation that the overhead is 8-12% of AxoNN's
    #: batch time for GPT-3 2.7B (unfused gather + cast kernels).
    samo_compress_cost_per_param: float = 5.0e-11

    # -- point-to-point messaging (fitted) ----------------------------------
    #: latency per exposed pipeline message (software + injection)
    p2p_alpha: float = 100e-6
    #: effective exposed bandwidth per pipeline message; well below IB peak
    #: because the paper's t_send counts serialized per-message cost
    p2p_beta: float = 1.5e9

    # -- collectives (fitted) -----------------------------------------------
    #: per-hop latency of ring collectives
    coll_alpha: float = 150e-6
    #: effective per-GPU NCCL ring bandwidth across nodes
    coll_beta: float = 4.0e9
    #: fraction of the data-parallel all-reduce that AxoNN/DDP-style
    #: bucketing can hide under backward compute in *pure data parallel*
    #: CNN runs (hybrid GPT runs synchronize after the pipeline flush and
    #: get no overlap, per the paper's Section IV-A description)
    dp_overlap_fraction: float = 0.25

    # -- memory model (fitted) ----------------------------------------------
    #: per-GPU framework overhead: CUDA/NCCL buffers, workspaces, logits,
    #: fragmentation. Fitted so dense GPT-3 2.7B needs G_inter=8 and
    #: SAMO needs G_inter=2 on 16 GB V100s, consistent with Fig. 8 (which
    #: shows non-zero p2p and bubble phases for AxoNN+SAMO).
    framework_overhead_bytes: int = 5 * 1024**3
    #: pipeline "other" time per batch (data loading, python, logging) as a
    #: fraction of compute
    other_fraction: float = 0.05

    # -- DeepSpeed-3D penalties (fitted) -------------------------------------
    #: DeepSpeed's synchronous pipeline exposes more p2p than AxoNN's
    #: message-driven asynchronous schedule; bubble behaviour is similar
    #: (both run 1F1B). This reproduces the paper's observation that
    #: DeepSpeed-3D trails AxoNN at small scale (p2p-dominated) and matches
    #: it at large scale.
    deepspeed_p2p_penalty: float = 1.30
    deepspeed_bubble_penalty: float = 1.00

    def __post_init__(self):
        # Every constant is a rate, latency, size, or fraction: NaN, inf,
        # and non-positive values would propagate silently into negative
        # batch times and divide-by-zero bandwidths (a NaN here poisons
        # every cache key downstream, since the calibration *is* the
        # machine's cache identity).
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise ValueError(
                    f"SummitCalibration.{f.name} must be a number, got {v!r}"
                )
            if not math.isfinite(v):
                raise ValueError(
                    f"SummitCalibration.{f.name} must be finite, got {v!r}"
                )
            if v < 0 or (v == 0 and f.name not in _ZERO_OK_FIELDS):
                bound = ">= 0" if f.name in _ZERO_OK_FIELDS else "> 0"
                raise ValueError(
                    f"SummitCalibration.{f.name} must be {bound}, got {v!r}"
                )
        if self.dp_overlap_fraction > 1.0:
            raise ValueError(
                "SummitCalibration.dp_overlap_fraction must be <= 1, "
                f"got {self.dp_overlap_fraction!r}"
            )


#: The default simulated machine.
SUMMIT = SummitCalibration()


@functools.lru_cache(maxsize=None)
def with_memory_budget(
    budget_gb: float, base: SummitCalibration = SUMMIT
) -> SummitCalibration:
    """Calibration variant with a different per-GPU memory budget.

    Pure and cached: planners ask for the same budget once per candidate
    config, and a cached identical ``SummitCalibration`` instance keeps
    downstream memoisation keys (which include the calibration) stable.
    """
    if not isinstance(budget_gb, (int, float)) or isinstance(budget_gb, bool):
        raise ValueError(f"budget_gb must be a number, got {budget_gb!r}")
    if not math.isfinite(budget_gb) or budget_gb <= 0:
        raise ValueError(f"budget_gb must be positive and finite, got {budget_gb}")
    return replace(base, gpu_memory_bytes=int(budget_gb * 1024**3))


# ---------------------------------------------------------------------------
# alpha/beta calibration fit
# ---------------------------------------------------------------------------

#: communication channels the fit understands, and the calibration
#: fields each one updates
_FIT_CHANNELS = {
    "p2p": ("p2p_alpha", "p2p_beta"),
    "collective": ("coll_alpha", "coll_beta"),
}


@dataclass(frozen=True)
class CommSample:
    """One timed communication run: ``seconds`` to move ``nbytes``.

    ``channel`` is ``"p2p"`` (one pipeline message; ``group_size`` is
    ignored) or ``"collective"`` (one ring all-reduce of ``nbytes`` per
    rank across ``group_size`` ranks).
    """

    channel: str
    nbytes: int
    seconds: float
    group_size: int = 2

    def __post_init__(self):
        if self.channel not in _FIT_CHANNELS:
            raise ValueError(
                f"unknown channel {self.channel!r}; "
                f"choose from {tuple(sorted(_FIT_CHANNELS))}"
            )
        if self.nbytes <= 0:
            raise ValueError(f"nbytes must be > 0, got {self.nbytes}")
        if not math.isfinite(self.seconds) or self.seconds <= 0:
            raise ValueError(f"seconds must be positive, got {self.seconds!r}")
        if self.group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {self.group_size}")


def _design_row(s: CommSample) -> tuple[float, float]:
    """Coefficients ``(x_alpha, x_beta)`` so the channel's cost model is
    ``seconds = alpha * x_alpha + (1/beta) * x_beta`` — the linear form
    the least-squares fit inverts.

    * p2p message (:func:`repro.cluster.p2p.p2p_message_time`):
      ``t = alpha + nbytes/beta``.
    * ring all-reduce (:func:`repro.cluster.collectives.ring_allreduce_time`):
      ``t = 2(g-1) alpha + (2(g-1)/g) nbytes / beta``.
    """
    if s.channel == "p2p":
        return 1.0, float(s.nbytes)
    g = s.group_size
    return 2.0 * (g - 1), 2.0 * (g - 1) / g * s.nbytes


def fit_calibration(samples, base: SummitCalibration = SUMMIT) -> SummitCalibration:
    """Least-squares alpha/beta fit from timed communication runs.

    For each channel present in ``samples`` ("p2p", "collective"), solve
    the least-squares problem for that channel's latency/bandwidth pair
    and return ``base`` with the fitted constants swapped in; channels
    with no samples keep ``base``'s values. Residuals are *relative*
    (each equation is scaled by ``1/seconds``): timing noise is
    multiplicative, and an absolute fit would let the big-message
    samples drown out the small-message ones that pin alpha. At least
    two samples with distinct sizes per fitted channel are required (one
    equation cannot pin two constants), and a fit that lands on
    non-positive alpha or beta — timings inconsistent with the cost
    model's form — raises instead of returning an unusable calibration.
    """
    samples = list(samples)
    if not samples:
        raise ValueError("fit_calibration needs at least one CommSample")
    for s in samples:
        if not isinstance(s, CommSample):
            raise ValueError(f"expected CommSample, got {type(s).__name__}")
    updates: dict[str, float] = {}
    for channel, (alpha_field, beta_field) in sorted(_FIT_CHANNELS.items()):
        chan = [s for s in samples if s.channel == channel]
        if not chan:
            continue
        if len({(s.nbytes, s.group_size) for s in chan}) < 2:
            raise ValueError(
                f"channel {channel!r} needs >= 2 samples with distinct "
                f"sizes to fit alpha and beta, got {len(chan)}"
            )
        design = np.array([_design_row(s) for s in chan], dtype=np.float64)
        times = np.array([s.seconds for s in chan], dtype=np.float64)
        design /= times[:, None]  # relative residuals: rows scaled by 1/t
        (alpha, inv_beta), *_ = np.linalg.lstsq(
            design, np.ones_like(times), rcond=None
        )
        if not (math.isfinite(alpha) and alpha > 0 and inv_beta > 0):
            raise ValueError(
                f"channel {channel!r} fit produced non-physical constants "
                f"(alpha={alpha:.3e}, 1/beta={inv_beta:.3e}); the timings "
                "are inconsistent with the alpha-beta cost model"
            )
        updates[alpha_field] = float(alpha)
        updates[beta_field] = float(1.0 / inv_beta)
    return replace(base, **updates)


def synthetic_comm_samples(
    cal: SummitCalibration = SUMMIT,
    *,
    seed: int = 0,
    n: int = 24,
    noise: float = 0.02,
    group_size: int = 4,
) -> list[CommSample]:
    """Seeded synthetic timing draws from ``cal``'s own cost models.

    Message sizes are log-uniform over 64 KiB – 64 MiB and each timing
    is the ground-truth channel model times ``(1 + noise * N(0, 1))``
    (clamped positive), so :func:`fit_calibration` on these samples
    recovers ``cal``'s alpha/beta up to the noise level — and exactly,
    at ``noise=0``. Deterministic per ``seed`` (via
    :func:`repro.rng.resolve_rng`), which is what makes the drift
    report's calibration block byte-reproducible.
    """
    from ..rng import resolve_rng  # late: rng is a leaf, avoid import-order ties

    if n < 4:
        raise ValueError(f"need n >= 4 samples (2 per channel), got {n}")
    rng = resolve_rng(seed)
    sizes = np.exp(
        rng.uniform(np.log(64 * 1024), np.log(64 * 1024**2), size=n)
    ).astype(np.int64)
    jitter = 1.0 + noise * rng.standard_normal(n)
    samples: list[CommSample] = []
    for i, (nbytes, j) in enumerate(zip(sizes.tolist(), jitter.tolist())):
        if i % 2 == 0:
            t = cal.p2p_alpha + nbytes / cal.p2p_beta
            samples.append(
                CommSample("p2p", nbytes, max(t * j, 1e-12))
            )
        else:
            g = group_size
            t = 2 * (g - 1) * cal.coll_alpha + (2 * (g - 1) / g) * nbytes / cal.coll_beta
            samples.append(
                CommSample("collective", nbytes, max(t * j, 1e-12), group_size=g)
            )
    return samples
