"""Simulated GPU device: compute-time and memory-capacity model."""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import SUMMIT, SummitCalibration

__all__ = ["DeviceModel", "ComputeKind"]


class ComputeKind:
    """Workload classes with distinct achieved efficiencies."""

    DENSE_GEMM = "dense_gemm"  # transformer layers on tensor cores
    CONV = "conv"  # CNN convolutions (memory-bound on V100)
    SPARSE_SPUTNIK = "sputnik"  # Sputnik sparse kernels


@dataclass(frozen=True)
class DeviceModel:
    """A V100-like device.

    ``time(flops, kind)`` converts *dense-equivalent* flops into seconds.
    For the Sputnik kind, the caller passes the same dense flops the other
    frameworks would compute (the paper's fair-comparison convention in
    Section V-C) and the device model applies the end-to-end sparse
    slowdown.
    """

    cal: SummitCalibration = SUMMIT

    @property
    def memory_bytes(self) -> int:
        return self.cal.gpu_memory_bytes

    @property
    def peak_flops(self) -> float:
        return self.cal.peak_fp16_flops

    def efficiency(self, kind: str, samples_per_gpu: int | None = None) -> float:
        """Achieved fraction of peak for a workload class.

        For convolutions the efficiency also ramps with the per-GPU batch
        (small batches underutilise the device), which is what flattens
        the CNN strong-scaling curves in the paper's Figure 5.
        """
        if kind == ComputeKind.DENSE_GEMM:
            return self.cal.gemm_efficiency
        if kind == ComputeKind.CONV:
            eff = self.cal.conv_efficiency
            if samples_per_gpu is not None:
                n = max(samples_per_gpu, 1)
                eff *= n / (n + self.cal.conv_half_batch)
            return eff
        if kind == ComputeKind.SPARSE_SPUTNIK:
            return self.cal.gemm_efficiency / self.cal.sputnik_compute_slowdown
        raise KeyError(f"unknown compute kind {kind!r}")

    def time(
        self,
        flops: float,
        kind: str = ComputeKind.DENSE_GEMM,
        samples_per_gpu: int | None = None,
    ) -> float:
        """Seconds to execute ``flops`` dense-equivalent flops."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops / (self.peak_flops * self.efficiency(kind, samples_per_gpu))

    def fits(self, nbytes: int) -> bool:
        """Whether a memory footprint fits in device DRAM."""
        return nbytes <= self.memory_bytes
