"""A minimal discrete-event simulation engine.

Drives the pipeline simulator: events are (time, seq, callback) triples in
a binary heap; callbacks may schedule further events. Deterministic given
deterministic callbacks (ties broken by insertion order).
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventLoop", "SerialResource"]


class EventLoop:
    """Priority-queue event loop with virtual time."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``now + delay`` (delay may be zero, not negative)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.at(self.now + delay, fn)

    def at(self, t: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute virtual time ``t >= now``."""
        if t < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past (t={t} < now={self.now})")
        heapq.heappush(self._heap, (t, self._seq, fn))
        self._seq += 1

    def run(self, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains; returns final time."""
        n = 0
        while self._heap:
            t, _, fn = heapq.heappop(self._heap)
            self.now = t
            fn()
            n += 1
            if n > max_events:
                raise RuntimeError(
                    f"event budget exceeded ({max_events}); likely a scheduling loop"
                )
        self.events_processed += n
        return self.now

    def __repr__(self) -> str:
        return f"EventLoop(now={self.now:.6f}, pending={len(self._heap)})"


class SerialResource:
    """A resource that serves one occupant at a time in FIFO order.

    Models a shared communication link: each :meth:`acquire` books the
    next free window of ``duration`` seconds and returns it, so callers
    can schedule completion events at the window's end. Purely
    bookkeeping — it never touches an :class:`EventLoop` itself.
    """

    def __init__(self, name: str = "", record: bool = False):
        self.name = name
        self.free_at: float = 0.0
        self.busy_time: float = 0.0
        self.acquisitions: int = 0
        #: booked ``(start, end)`` windows, kept only when ``record=True``
        #: (the overlap engine uses them to report bucket timelines)
        self.windows: list[tuple[float, float]] | None = [] if record else None

    def acquire(self, now: float, duration: float) -> tuple[float, float]:
        """Book ``duration`` seconds starting no earlier than ``now``.

        Returns ``(start, end)`` of the booked window; ``start > now``
        means the caller queued behind earlier occupants.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        start = max(now, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        self.acquisitions += 1
        if self.windows is not None:
            self.windows.append((start, end))
        return start, end

    def __repr__(self) -> str:
        return f"SerialResource({self.name!r}, free_at={self.free_at:.6f})"
