"""A minimal discrete-event simulation engine.

Drives the pipeline simulator: events are (time, seq, callback) triples in
a binary heap; callbacks may schedule further events. Deterministic given
deterministic callbacks (ties broken by insertion order).

Both classes are observable through :data:`repro.obs.OBS`: when a real
tracer is installed the loop emits one virtual-time span per callback
and resources label their booked windows; when disabled (the default)
the only cost is one attribute read per :meth:`EventLoop.run` call.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..obs import OBS

__all__ = ["EventLoop", "SerialResource"]


class EventLoop:
    """Priority-queue event loop with virtual time."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``now + delay`` (delay may be zero, not negative)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.at(self.now + delay, fn)

    def at(self, t: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute virtual time ``t >= now``."""
        if t < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past (t={t} < now={self.now})")
        heapq.heappush(self._heap, (t, self._seq, fn))
        self._seq += 1

    def run(self, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains; returns final time.

        ``events_processed`` is kept correct on every exit path — normal
        drain, a budget :class:`RuntimeError`, or a callback raising —
        so post-mortem inspection after a scheduling loop sees the real
        count, not the pre-run value.
        """
        n = 0
        try:
            if not OBS.enabled:  # one check per run, not per event
                while self._heap:
                    t, _, fn = heapq.heappop(self._heap)
                    self.now = t
                    fn()
                    n += 1
                    if n > max_events:
                        raise RuntimeError(
                            f"event budget exceeded ({max_events}) after "
                            f"processing {self.events_processed + n} events; "
                            f"likely a scheduling loop"
                        )
                return self.now
            # traced twin of the loop above: kept branch-free there so the
            # disabled hot path pays nothing per event
            tracer = OBS.tracer
            track = tracer.group("events")
            while self._heap:
                t, seq, fn = heapq.heappop(self._heap)
                self.now = t
                fn()
                n += 1
                # the callback's effects land at self.now; a later `now`
                # would mean fn() re-entered the loop, so t..self.now is
                # the event's span either way
                tracer.record(
                    getattr(fn, "__qualname__", repr(fn)).split(".")[-1],
                    t,
                    self.now,
                    category="event",
                    track=track,
                    seq=seq,
                )
                if n > max_events:
                    raise RuntimeError(
                        f"event budget exceeded ({max_events}) after processing "
                        f"{self.events_processed + n} events; likely a scheduling loop"
                    )
            return self.now
        finally:
            self.events_processed += n
            OBS.metrics.counter("events.processed").inc(n)

    def __repr__(self) -> str:
        return f"EventLoop(now={self.now:.6f}, pending={len(self._heap)})"


class SerialResource:
    """A resource that serves one occupant at a time in FIFO order.

    Models a shared communication link: each :meth:`acquire` books the
    next free window of ``duration`` seconds and returns it, so callers
    can schedule completion events at the window's end. Purely
    bookkeeping — it never touches an :class:`EventLoop` itself.
    """

    def __init__(self, name: str = "", record: bool = False):
        self.name = name
        self.free_at: float = 0.0
        self.busy_time: float = 0.0
        self.acquisitions: int = 0
        #: booked ``(start, end, label)`` windows, kept only when
        #: ``record=True`` (the overlap engine and the Chrome exporter
        #: both read these — one source of truth for occupancy)
        self.windows: list[tuple[float, float, str]] | None = [] if record else None

    def acquire(
        self, now: float, duration: float, label: str = ""
    ) -> tuple[float, float]:
        """Book ``duration`` seconds starting no earlier than ``now``.

        Returns ``(start, end)`` of the booked window; ``start > now``
        means the caller queued behind earlier occupants. ``label``
        names the window in recorded traces (e.g. ``"bucket3"``).
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        start = max(now, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        self.acquisitions += 1
        if self.windows is not None and duration > 0:
            self.windows.append((start, end, label))
        return start, end

    def book(self, start: float, end: float, label: str = "") -> None:
        """Record an occupancy window without serializing on it.

        For full-duplex / uncontended use of the underlying medium:
        keeps the window timeline complete without moving ``free_at``.
        """
        if end < start:
            raise ValueError(f"window ends before it starts ({end} < {start})")
        if self.windows is not None and end > start:
            self.windows.append((start, end, label))

    def __repr__(self) -> str:
        return f"SerialResource({self.name!r}, free_at={self.free_at:.6f})"
