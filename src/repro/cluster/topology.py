"""Cluster topology: nodes, GPUs, and link classes between ranks."""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import SUMMIT, SummitCalibration

__all__ = ["Topology", "LinkClass"]


@dataclass(frozen=True)
class LinkClass:
    """An α-β link: latency (s) plus bandwidth (B/s)."""

    name: str
    alpha: float
    beta: float

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.alpha + nbytes / self.beta


class Topology:
    """Summit-like fat-tree: ``gpus_per_node`` GPUs with NVLink inside a
    node, InfiniBand between nodes.

    Ranks are dense integers; rank r lives on node ``r // gpus_per_node``.
    """

    def __init__(self, n_gpus: int, calibration: SummitCalibration = SUMMIT):
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        self.n_gpus = n_gpus
        self.cal = calibration
        self.intra = LinkClass("nvlink", calibration.p2p_alpha / 4, calibration.nvlink_bw)
        self.inter = LinkClass("infiniband", calibration.p2p_alpha, calibration.p2p_beta)

    @property
    def n_nodes(self) -> int:
        g = self.cal.gpus_per_node
        return (self.n_gpus + g - 1) // g

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.cal.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def link(self, src: int, dst: int) -> LinkClass:
        """Link class used by a message from ``src`` to ``dst``."""
        self._check_rank(src)
        self._check_rank(dst)
        return self.intra if self.same_node(src, dst) else self.inter

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        """Exposed seconds for one point-to-point message."""
        if src == dst:
            return 0.0
        return self.link(src, dst).transfer_time(nbytes)

    def pipeline_link_times(
        self, ranks: list[int], nbytes_per_link: int | list[int]
    ) -> list[float]:
        """Per-hop transfer seconds along a chain of stage ranks.

        ``ranks[i]`` hosts pipeline stage ``i``; hop ``i`` carries the
        activation/gradient traffic between stages ``i`` and ``i + 1``.
        ``nbytes_per_link`` is either one payload size for every hop or a
        list with one entry per hop (skewed partitions cut the model at
        boundaries of different widths).

        Every rank is range-checked up front — ``p2p_time`` alone would
        let an out-of-range placement with duplicated adjacent ranks
        slip through its ``src == dst`` shortcut and silently price the
        hop at zero — and adjacent duplicates are rejected outright: a
        chain that puts two pipeline stages on one GPU is a placement
        bug, not a free link.
        """
        n_links = len(ranks) - 1
        if n_links < 0:
            raise ValueError("need at least one rank")
        for r in ranks:
            self._check_rank(r)
        for a, b in zip(ranks, ranks[1:]):
            if a == b:
                raise ValueError(
                    f"adjacent pipeline stages share rank {a}; invalid placement"
                )
        if isinstance(nbytes_per_link, int):
            sizes = [nbytes_per_link] * n_links
        else:
            sizes = list(nbytes_per_link)
            if len(sizes) != n_links:
                raise ValueError(
                    f"nbytes_per_link has {len(sizes)} entries for {n_links} links"
                )
        return [
            self.p2p_time(ranks[i], ranks[i + 1], sizes[i]) for i in range(n_links)
        ]

    def replica_pipeline_ranks(
        self, replica: int, g_inter: int, g_tensor: int = 1
    ) -> list[int]:
        """Ranks hosting each pipeline stage of data-parallel replica
        ``replica``.

        AxoNN's decomposition places replica ``r`` on the contiguous
        rank block ``[r·mpd, (r+1)·mpd)`` (``mpd = g_inter·g_tensor``)
        with stage ``s`` rooted at ``r·mpd + s·g_tensor``. A placement
        that falls off the machine raises instead of silently wrapping
        onto low ranks — replica 0's chain is *not* a stand-in for the
        others, since a chain at a different node offset may straddle a
        node boundary replica 0's does not.
        """
        if replica < 0:
            raise ValueError(f"replica must be non-negative, got {replica}")
        if g_inter < 1 or g_tensor < 1:
            raise ValueError(
                f"g_inter and g_tensor must be >= 1, got {g_inter} and {g_tensor}"
            )
        base = replica * g_inter * g_tensor
        ranks = [base + s * g_tensor for s in range(g_inter)]
        if ranks[-1] >= self.n_gpus:
            raise IndexError(
                f"replica {replica} placement needs rank {ranks[-1]} but the "
                f"topology has only {self.n_gpus} GPUs"
            )
        return ranks

    def group_spans_nodes(self, ranks: list[int]) -> bool:
        """True when a communicator group crosses a node boundary."""
        nodes = {self.node_of(r) for r in ranks}
        return len(nodes) > 1

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_gpus:
            raise IndexError(f"rank {rank} out of range [0, {self.n_gpus})")

    def __repr__(self) -> str:
        return f"Topology(gpus={self.n_gpus}, nodes={self.n_nodes})"
