"""Cost models for collective operations (ring algorithms).

Ring all-reduce of ``n`` bytes over ``G`` ranks moves ``2(G-1)/G * n``
bytes per rank in ``2(G-1)`` latency steps — the NCCL baseline both AxoNN
and DeepSpeed rely on. Effective bandwidth comes from the calibration
(measured NCCL efficiency on Summit is well below link peak).
"""

from __future__ import annotations

from .calibration import SUMMIT, SummitCalibration
from .topology import Topology

__all__ = [
    "ring_allreduce_time",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
    "broadcast_time",
]


def _effective_beta(topology: Topology | None, ranks: list[int] | None, cal: SummitCalibration) -> float:
    """Per-rank ring bandwidth: NVLink-class when the group stays inside a
    node, calibrated NCCL cross-node bandwidth otherwise."""
    if topology is not None and ranks is not None and not topology.group_spans_nodes(ranks):
        return cal.nvlink_bw * 0.6  # intra-node NCCL efficiency
    return cal.coll_beta


def ring_allreduce_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
) -> float:
    """Seconds for a ring all-reduce of ``nbytes`` per rank."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if group_size == 1 or nbytes == 0:
        return 0.0
    beta = _effective_beta(topology, ranks, cal)
    g = group_size
    steps = 2 * (g - 1)
    return steps * cal.coll_alpha + (2 * (g - 1) / g) * nbytes / beta


def ring_reduce_scatter_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
) -> float:
    """Seconds for a ring reduce-scatter (half an all-reduce)."""
    if group_size <= 1 or nbytes == 0:
        return 0.0
    beta = _effective_beta(topology, ranks, cal)
    g = group_size
    return (g - 1) * cal.coll_alpha + ((g - 1) / g) * nbytes / beta


def ring_allgather_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
) -> float:
    """Seconds for a ring all-gather (half an all-reduce)."""
    return ring_reduce_scatter_time(nbytes, group_size, cal, topology, ranks)


def broadcast_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
) -> float:
    """Seconds for a (pipelined ring) broadcast.

    Like the other ring collectives, a group that stays inside one node
    runs at NVLink-class bandwidth; without topology/rank information the
    calibrated cross-node bandwidth is the (conservative) default.
    """
    if group_size <= 1 or nbytes == 0:
        return 0.0
    beta = _effective_beta(topology, ranks, cal)
    return (group_size - 1) * cal.coll_alpha + nbytes / beta
