"""Cost models for collective operations (ring algorithms).

Ring all-reduce of ``n`` bytes over ``G`` ranks moves ``2(G-1)/G * n``
bytes per rank in ``2(G-1)`` latency steps — the NCCL baseline both AxoNN
and DeepSpeed rely on. Effective bandwidth comes from the calibration
(measured NCCL efficiency on Summit is well below link peak).

Every collective takes an optional ``scenario`` — a
:class:`repro.parallel.scenarios.ClusterScenario` (duck-typed here to
avoid a circular import: anything exposing ``collective_beta_multiplier``
and ``collective_stall_factor`` works). The scenario degrades the ring's
effective bandwidth (slow ring links, halved cross-node rings) and
stretches the synchronized steps when a rank stalls. With every knob
neutral the multipliers are exactly 1.0, so the pristine-ring costs are
reproduced bit-for-bit.
"""

from __future__ import annotations

from .calibration import SUMMIT, SummitCalibration
from .topology import Topology

__all__ = [
    "ring_allreduce_time",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
    "broadcast_time",
    "allreduce_time",
    "allreduce_algos",
    "register_allreduce_algo",
]


def _effective_beta(
    topology: Topology | None,
    ranks: list[int] | None,
    cal: SummitCalibration,
    group_size: int = 2,
    scenario=None,
) -> float:
    """Per-rank ring bandwidth: NVLink-class when the group stays inside a
    node, calibrated NCCL cross-node bandwidth otherwise, degraded by the
    scenario's collective knobs when one is given."""
    if scenario is not None and not hasattr(scenario, "collective_beta_multiplier"):
        raise TypeError(
            f"scenario must be a ClusterScenario-like object, got {scenario!r}; "
            "resolve preset names via repro.parallel.get_scenario"
        )
    spans_nodes = True
    if topology is not None and ranks is not None:
        spans_nodes = topology.group_spans_nodes(ranks)
    beta = cal.coll_beta if spans_nodes else cal.nvlink_bw * 0.6  # intra-node NCCL efficiency
    if scenario is not None:
        beta *= scenario.collective_beta_multiplier(group_size, spans_nodes=spans_nodes)
    return beta


def ring_allreduce_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
    scenario=None,
) -> float:
    """Seconds for a ring all-reduce of ``nbytes`` per rank."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if group_size == 1 or nbytes == 0:
        return 0.0
    beta = _effective_beta(topology, ranks, cal, group_size, scenario)
    g = group_size
    steps = 2 * (g - 1)
    t = steps * cal.coll_alpha + (2 * (g - 1) / g) * nbytes / beta
    if scenario is not None:
        t *= scenario.collective_stall_factor(group_size, ranks)
    return t


def ring_reduce_scatter_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
    scenario=None,
) -> float:
    """Seconds for a ring reduce-scatter (half an all-reduce)."""
    if group_size <= 1 or nbytes == 0:
        return 0.0
    beta = _effective_beta(topology, ranks, cal, group_size, scenario)
    g = group_size
    t = (g - 1) * cal.coll_alpha + ((g - 1) / g) * nbytes / beta
    if scenario is not None:
        t *= scenario.collective_stall_factor(group_size, ranks)
    return t


def ring_allgather_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
    scenario=None,
) -> float:
    """Seconds for a ring all-gather (half an all-reduce)."""
    return ring_reduce_scatter_time(nbytes, group_size, cal, topology, ranks, scenario)


# ---------------------------------------------------------------------------
# allreduce algorithm registry
# ---------------------------------------------------------------------------

#: algorithm name -> cost function with the uniform signature
#: ``fn(nbytes, group_size, cal, topology=, ranks=, scenario=)``
_ALLREDUCE_ALGOS: dict = {}


def register_allreduce_algo(name: str, fn=None, *, overwrite: bool = False):
    """Register an all-reduce cost model under an algorithm name.

    Scenario members select the algorithm through
    ``ClusterScenario(coll_algo=...)`` and :func:`allreduce_time`
    dispatches on it, so new schedules (tree, two-level, rabenseifner)
    plug in without editing any call site. Usable directly or as a
    decorator; duplicate names raise unless ``overwrite=True``.
    """

    def _register(f):
        if not overwrite and name in _ALLREDUCE_ALGOS:
            raise ValueError(
                f"allreduce algo {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        _ALLREDUCE_ALGOS[name] = f
        return f

    return _register if fn is None else _register(fn)


def allreduce_algos() -> tuple[str, ...]:
    """Registered all-reduce algorithm names, sorted."""
    _ensure_builtin_algos()
    return tuple(sorted(_ALLREDUCE_ALGOS))


def _ensure_builtin_algos() -> None:
    # hierarchical registers itself on import; pull it in so the registry
    # is complete even when only this module was imported
    if "hierarchical" not in _ALLREDUCE_ALGOS:
        from . import hierarchical  # noqa: F401  (import side effect)


def resolve_allreduce_algo(name: str):
    """Look up a registered algorithm; unknown names raise ValueError."""
    _ensure_builtin_algos()
    try:
        return _ALLREDUCE_ALGOS[name]
    except KeyError:
        raise ValueError(
            f"unknown allreduce algo {name!r}; "
            f"registered: {', '.join(allreduce_algos())}"
        ) from None


def allreduce_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
    scenario=None,
    algo: str | None = None,
) -> float:
    """Seconds for an all-reduce under the selected algorithm.

    ``algo=None`` defers to the scenario's ``coll_algo`` knob (the flat
    ring when no scenario is given), so a :class:`ScenarioSet` member can
    price the same workload under a different collective schedule.
    """
    if algo is None:
        algo = getattr(scenario, "coll_algo", None) or "ring"
    fn = resolve_allreduce_algo(algo)
    return fn(nbytes, group_size, cal, topology=topology, ranks=ranks, scenario=scenario)


register_allreduce_algo("ring", ring_allreduce_time)


def broadcast_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
    scenario=None,
) -> float:
    """Seconds for a (pipelined ring) broadcast.

    Like the other ring collectives, a group that stays inside one node
    runs at NVLink-class bandwidth; without topology/rank information the
    calibrated cross-node bandwidth is the (conservative) default.
    """
    if group_size <= 1 or nbytes == 0:
        return 0.0
    beta = _effective_beta(topology, ranks, cal, group_size, scenario)
    t = (group_size - 1) * cal.coll_alpha + nbytes / beta
    if scenario is not None:
        t *= scenario.collective_stall_factor(group_size, ranks)
    return t
