"""Simulated Summit cluster: topology, devices, links, events, collectives.

This substrate replaces the paper's 16 GB V100 nodes (NVLink 50 GB/s, IB
12.5 GB/s, 125 Tflop/s fp16). All calibrated constants and their
provenance live in :mod:`repro.cluster.calibration`.
"""

from .calibration import (
    SUMMIT,
    CommSample,
    SummitCalibration,
    fit_calibration,
    synthetic_comm_samples,
    with_memory_budget,
)
from .collectives import (
    allreduce_algos,
    allreduce_time,
    broadcast_time,
    register_allreduce_algo,
    ring_allgather_time,
    ring_allreduce_time,
    ring_reduce_scatter_time,
)
from .device import ComputeKind, DeviceModel
from .events import EventLoop, SerialResource
from .hierarchical import (
    best_allreduce_time,
    hierarchical_allreduce,
    hierarchical_allreduce_time,
    tree_broadcast_time,
)
from .p2p import p2p_message_time, pipeline_message_bytes
from .topology import LinkClass, Topology

__all__ = [
    "SUMMIT",
    "SummitCalibration",
    "CommSample",
    "fit_calibration",
    "synthetic_comm_samples",
    "with_memory_budget",
    "Topology",
    "LinkClass",
    "DeviceModel",
    "ComputeKind",
    "EventLoop",
    "SerialResource",
    "ring_allreduce_time",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
    "broadcast_time",
    "allreduce_time",
    "allreduce_algos",
    "register_allreduce_algo",
    "p2p_message_time",
    "pipeline_message_bytes",
    "hierarchical_allreduce_time",
    "hierarchical_allreduce",
    "tree_broadcast_time",
    "best_allreduce_time",
]
