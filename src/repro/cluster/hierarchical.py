"""Hierarchical (topology-aware) collectives.

Summit's bandwidth is two-tiered: 50 GB/s NVLink inside a node, 12.5 GB/s
InfiniBand per GPU across nodes. A flat NCCL ring over ``G`` ranks is
bottlenecked by its slowest link, so production NCCL switches to a
hierarchical algorithm: reduce-scatter inside each node over NVLink,
all-reduce the node-local shards across nodes over IB (one logical ring
of node leaders per shard), then all-gather inside the node. The
cross-node traffic drops by the node arity (6 on Summit) — exactly why
the data-parallel all-reduce in Figures 5-8 is not simply ``n/β_IB``.

This module provides both the α-β *cost models* (used by the ablation
bench to quantify the gain over the flat ring) and an *executable*
hierarchical all-reduce over the thread communicator, built purely from
send/recv so it validates the algorithm itself rather than delegating to
the backend's built-in all-reduce.
"""

from __future__ import annotations

import numpy as np

from ..comm.backend import Communicator
from .calibration import SUMMIT, SummitCalibration
from .collectives import register_allreduce_algo, ring_allreduce_time
from .topology import Topology

__all__ = [
    "hierarchical_allreduce_time",
    "tree_broadcast_time",
    "best_allreduce_time",
    "hierarchical_allreduce",
]

#: NVLink-class efficiency of intra-node NCCL rings (same derating the
#: flat-ring model applies to single-node groups).
_INTRA_NODE_EFF = 0.6


def hierarchical_allreduce_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
    scenario=None,
) -> float:
    """Seconds for a node-aware hierarchical all-reduce of ``nbytes``.

    Three phases (the NCCL "tree/hierarchical" layout):

    1. intra-node ring reduce-scatter of ``nbytes`` over NVLink;
    2. inter-node ring all-reduce of the ``nbytes / local`` shard each
       GPU owns, over IB (every GPU participates in the ring of its
       shard-peers, so IB injection bandwidth is fully used);
    3. intra-node ring all-gather of ``nbytes`` over NVLink.

    ``scenario`` (a :class:`~repro.parallel.scenarios.ClusterScenario`,
    duck-typed like the flat-ring models) degrades each tier through the
    same knobs the ring consults: the slowest ring-link multiplier paces
    both tiers, ``cross_node_bw_multiplier`` hits only the inter-node
    phase (the hierarchical schedule's selling point — intra-node traffic
    is immune to fabric congestion), and a stalling rank stretches the
    whole synchronized schedule. Neutral knobs reproduce the pristine
    cost bit-for-bit. ``topology`` is accepted for signature parity with
    the registry but unused: node arity comes from the calibration.
    """
    if scenario is not None and not hasattr(scenario, "collective_beta_multiplier"):
        raise TypeError(
            f"scenario must be a ClusterScenario-like object, got {scenario!r}; "
            "resolve preset names via repro.parallel.get_scenario"
        )
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if group_size == 1 or nbytes == 0:
        return 0.0
    local = min(group_size, cal.gpus_per_node)
    n_nodes = -(-group_size // cal.gpus_per_node)
    beta_nv = cal.nvlink_bw * _INTRA_NODE_EFF
    if scenario is not None and local > 1:
        beta_nv *= scenario.collective_beta_multiplier(local, spans_nodes=False)

    t = 0.0
    if local > 1:
        # reduce-scatter + allgather, each (local-1)/local * n over NVLink
        t += 2 * ((local - 1) * cal.coll_alpha + ((local - 1) / local) * nbytes / beta_nv)
    if n_nodes > 1:
        shard = int(np.ceil(nbytes / local))
        beta_x = cal.coll_beta
        if scenario is not None:
            beta_x *= scenario.collective_beta_multiplier(n_nodes, spans_nodes=True)
        steps = 2 * (n_nodes - 1)
        t += steps * cal.coll_alpha + (2 * (n_nodes - 1) / n_nodes) * shard / beta_x
    if scenario is not None:
        # one group-wide stretch: ring steps in every tier are synchronized,
        # so a stalling rank paces the whole schedule (applied once, not
        # once per tier, to avoid double-charging the same straggler)
        t *= scenario.collective_stall_factor(group_size, ranks)
    return t


def tree_broadcast_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
) -> float:
    """Seconds for a binomial-tree broadcast: ``ceil(log2 G)`` rounds.

    Latency-optimal for small payloads (the ring broadcast's ``(G-1)α``
    term dominates it at scale); bandwidth-suboptimal for large ones.
    """
    if group_size <= 1 or nbytes == 0:
        return 0.0
    rounds = int(np.ceil(np.log2(group_size)))
    return rounds * (cal.coll_alpha + nbytes / cal.coll_beta)


def best_allreduce_time(
    nbytes: int,
    group_size: int,
    cal: SummitCalibration = SUMMIT,
    topology: Topology | None = None,
    ranks: list[int] | None = None,
    scenario=None,
) -> float:
    """min(flat ring, hierarchical) — what a tuned NCCL would pick."""
    return min(
        ring_allreduce_time(nbytes, group_size, cal, topology, ranks, scenario),
        hierarchical_allreduce_time(nbytes, group_size, cal, topology, ranks, scenario),
    )


register_allreduce_algo("hierarchical", hierarchical_allreduce_time)
register_allreduce_algo("best", best_allreduce_time)


# ---------------------------------------------------------------------------
# executable algorithm (thread ranks, send/recv only)
# ---------------------------------------------------------------------------

_TAG_RS = 31  # reduce-scatter phase
_TAG_XN = 33  # cross-node phase
_TAG_AG = 37  # all-gather phase


def hierarchical_allreduce(
    comm: Communicator,
    array: np.ndarray,
    gpus_per_node: int,
    op: str = "sum",
) -> np.ndarray:
    """All-reduce built from p2p messages along the hierarchical schedule.

    Ranks ``[k * gpus_per_node, (k+1) * gpus_per_node)`` form node ``k``
    (the world size must be a whole number of nodes). Result equals the
    backend's ``allreduce`` bitwise for ``op='sum'`` up to float addition
    order within a node (reduction is performed leader-side in rank order,
    so results are deterministic across runs).
    """
    if op not in ("sum", "mean"):
        raise ValueError(f"op must be 'sum' or 'mean', got {op!r}")
    if comm.size % gpus_per_node:
        raise ValueError(
            f"world size {comm.size} is not a whole number of {gpus_per_node}-GPU nodes"
        )
    x = np.asarray(array, dtype=np.float64).reshape(-1)
    node = comm.rank // gpus_per_node
    local_rank = comm.rank % gpus_per_node
    leader = node * gpus_per_node
    n_nodes = comm.size // gpus_per_node

    # Phase 1: node leader reduces its node's contributions (in rank order).
    if local_rank == 0:
        acc = x.copy()
        for r in range(1, gpus_per_node):
            acc += comm.recv(leader + r, tag=_TAG_RS)
    else:
        comm.send(leader, x, tag=_TAG_RS)
        acc = None

    # Phase 2: leaders all-reduce via a ring of partial sums.
    if local_rank == 0 and n_nodes > 1:
        ring = [k * gpus_per_node for k in range(n_nodes)]
        pos = ring.index(leader)
        nxt = ring[(pos + 1) % n_nodes]
        prv = ring[(pos - 1) % n_nodes]
        total = acc.copy()
        carry = acc.copy()
        for _ in range(n_nodes - 1):
            carry = comm.sendrecv(nxt, prv, carry, tag=_TAG_XN)
            total += carry
        acc = total

    # Phase 3: leaders broadcast within their node.
    if local_rank == 0:
        for r in range(1, gpus_per_node):
            comm.send(leader + r, acc, tag=_TAG_AG)
        out = acc
    else:
        out = comm.recv(leader, tag=_TAG_AG)

    if op == "mean":
        out = out / comm.size
    return out.reshape(np.asarray(array).shape).astype(np.asarray(array).dtype)
