"""Search-space enumeration for the autotuner.

:class:`SearchSpace` yields every valid :class:`CandidateConfig` for a
model on ``n_gpus`` GPUs, applying the structural constraints up front:

* ``G_tensor * G_inter * G_data == G`` (exact decomposition);
* ``G_inter <= num_layers`` (at least one layer per stage);
* ``B % (G_data * mbs) == 0`` with at least one microbatch per pipeline;
* ``G_tensor`` stays inside a node (NVLink domain) and is only explored
  for the framework that implements intra-layer parallelism
  (DeepSpeed-3D's Megatron dimension);
* storage modes legal for each framework (:data:`FRAMEWORK_MODES`);
* CNNs run pure data parallel (``G_inter = G_tensor = 1``, no
  checkpointing), as in the paper's Figure 5 setup.

Infeasible-memory branches are cut *before* costing: if the irreducible
per-GPU footprint (activations + framework overhead, which no amount of
pipelining shards away) exceeds the budget, the whole
``(mode, sparsity, mbs, checkpoint)`` branch is dropped; individual
candidates whose state shard cannot fit are likewise pruned by a cheap
lower bound. Only plausible candidates reach the estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..models.spec import ModelSpec
from ..parallel.axonn import FRAMEWORKS
from ..parallel.partitioner import model_state_bytes
from .config import FRAMEWORK_MODES, SPARSE_MODES, CandidateConfig
from .estimator import activation_footprint_bytes

__all__ = ["SearchSpace", "SpaceStats"]


def _divisors(n: int) -> list[int]:
    """All divisors of ``n``, ascending."""
    out = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            out.append(d)
            if d != n // d:
                out.append(n // d)
        d += 1
    return sorted(out)


@dataclass
class SpaceStats:
    """Enumeration accounting (how much pruning saved)."""

    generated: int = 0
    pruned_memory: int = 0
    pruned_branches: int = 0

    def as_dict(self) -> dict:
        return {
            "generated": self.generated,
            "pruned_memory": self.pruned_memory,
            "pruned_branches": self.pruned_branches,
        }


@dataclass
class SearchSpace:
    """Valid hybrid-parallel configurations for one model and GPU count."""

    spec: ModelSpec
    n_gpus: int
    frameworks: tuple[str, ...] = FRAMEWORKS
    sparsities: tuple[float, ...] = (0.9,)
    microbatch_sizes: tuple[int, ...] = (1, 2, 4)
    explore_no_checkpoint: bool = True
    #: cap on the Megatron (intra-layer) degree; also capped by node size
    max_tensor_parallel: int = 4
    cal: SummitCalibration = SUMMIT
    stats: SpaceStats = field(default_factory=SpaceStats)

    def __post_init__(self):
        if self.n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {self.n_gpus}")
        unknown = [f for f in self.frameworks if f not in FRAMEWORK_MODES]
        if unknown:
            raise ValueError(
                f"unknown frameworks {unknown}; known: {sorted(FRAMEWORK_MODES)}"
            )
        for p in self.sparsities:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"sparsity must be in [0,1], got {p}")

    # ------------------------------------------------------------------
    def _tensor_degrees(self, framework: str) -> tuple[int, ...]:
        """Intra-layer degrees to explore for ``framework``.

        Only DeepSpeed-3D models a Megatron dimension; it must divide the
        GPU count and stay within the NVLink domain (node size).
        """
        if framework != "deepspeed-3d":
            return (1,)
        cap = min(self.max_tensor_parallel, self.cal.gpus_per_node)
        degs = [1]
        g = 2
        while g <= cap:
            if self.n_gpus % g == 0:
                degs.append(g)
            g *= 2
        return tuple(degs)

    def _checkpoint_options(self) -> tuple[bool, ...]:
        if self.spec.family == "cnn":
            return (False,)  # the paper's CNNs fit without recompute
        return (True, False) if self.explore_no_checkpoint else (True,)

    # ------------------------------------------------------------------
    def candidates(self) -> Iterator[CandidateConfig]:
        """Yield valid candidates, cheapest structural checks first."""
        if self.spec.family == "cnn":
            yield from self._cnn_candidates()
            return
        budget = self.cal.gpu_memory_bytes
        overhead = self.cal.framework_overhead_bytes
        max_stages = min(self.n_gpus, self.spec.num_layers)
        for framework in self.frameworks:
            for mode in FRAMEWORK_MODES[framework]:
                sparsities = self.sparsities if mode in SPARSE_MODES else (0.0,)
                for sparsity in sparsities:
                    for g_tensor in self._tensor_degrees(framework):
                        remaining = self.n_gpus // g_tensor
                        state = model_state_bytes(
                            self.spec, mode, sparsity, g_data=remaining
                        )
                        for mbs in self.microbatch_sizes:
                            for checkpoint in self._checkpoint_options():
                                # Branch cut: activations + overhead are
                                # irreducible in G_inter — if they alone
                                # blow the budget, no pipeline depth helps.
                                acts = activation_footprint_bytes(
                                    self.spec, mbs, checkpoint
                                )
                                if acts // g_tensor + overhead > budget:
                                    self.stats.pruned_branches += 1
                                    continue
                                yield from self._pipeline_depths(
                                    framework, mode, sparsity, g_tensor,
                                    remaining, state, mbs, checkpoint,
                                    acts, budget, overhead, max_stages,
                                )

    def _pipeline_depths(
        self, framework, mode, sparsity, g_tensor, remaining,
        state, mbs, checkpoint, acts, budget, overhead, max_stages,
    ) -> Iterator[CandidateConfig]:
        for g_inter in _divisors(remaining):
            if g_inter > max_stages:
                continue
            g_data = remaining // g_inter
            # batch divisibility: every pipeline gets whole microbatches
            # (divisibility of a positive batch also guarantees >= 1 each)
            if self.spec.batch_size % (g_data * mbs):
                continue
            # Candidate-level memory lower bound before costing.
            mem_lb = (
                state // (g_tensor * g_inter) + acts // g_tensor + overhead
            )
            if mem_lb > budget:
                self.stats.pruned_memory += 1
                continue
            self.stats.generated += 1
            yield CandidateConfig.create(
                framework=framework,
                g_tensor=g_tensor,
                g_inter=g_inter,
                g_data=g_data,
                mbs=mbs,
                checkpoint_activations=checkpoint,
                mode=mode,
                sparsity=sparsity,
            )

    def _cnn_candidates(self) -> Iterator[CandidateConfig]:
        """Pure data parallel; Sputnik has no sparse convolutions."""
        if self.spec.batch_size % self.n_gpus:
            return
        budget = self.cal.gpu_memory_bytes
        overhead = self.cal.framework_overhead_bytes
        for framework in self.frameworks:
            if framework == "sputnik":
                continue
            for mode in FRAMEWORK_MODES[framework]:
                sparsities = self.sparsities if mode in SPARSE_MODES else (0.0,)
                for sparsity in sparsities:
                    state = model_state_bytes(
                        self.spec, mode, sparsity, g_data=self.n_gpus
                    )
                    acts = activation_footprint_bytes(self.spec, 1, False)
                    if state + acts + overhead > budget:
                        self.stats.pruned_memory += 1
                        continue
                    self.stats.generated += 1
                    yield CandidateConfig.create(
                        framework=framework,
                        g_tensor=1,
                        g_inter=1,
                        g_data=self.n_gpus,
                        mbs=1,
                        checkpoint_activations=False,
                        mode=mode,
                        sparsity=sparsity,
                    )

    def size_upper_bound(self) -> int:
        """Loose bound on candidate count (before pruning), for reports."""
        n_modes = sum(len(FRAMEWORK_MODES[f]) for f in self.frameworks)
        return (
            n_modes
            * max(len(self.sparsities), 1)
            * len(self.microbatch_sizes)
            * len(self._checkpoint_options())
            * len(_divisors(self.n_gpus))
            * len(self._tensor_degrees("deepspeed-3d"))
        )
