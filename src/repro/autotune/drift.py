"""Cross-fidelity drift report over the paper's Fig. 6-8 templates.

One question, asked three ways: *how far apart are the closed forms,
the event engine, and the executed schedule?* For each figure template
(model, GPU count, framework) the report prices the workload's
decomposition under ``analytic`` (ground reference), ``analytic-batch``
(the vectorized array program, audited through its real
``evaluate_batch`` path), ``sim`` (the event-driven 1F1B engine) and
``measured`` (:mod:`repro.autotune.measured` — the executed proxy
schedule), and records per-phase relative drift against the analytic
row. A calibration block runs
:func:`repro.cluster.calibration.fit_calibration` on seeded synthetic
timings and records the recovery error of every fitted constant.

Everything here is byte-deterministic per seed: the measured fidelity
prices a deterministic event replay (wall clock never enters), the
synthetic calibration samples come from :mod:`repro.rng`-seeded
streams, and the JSON document is emitted with sorted keys — the CI
smoke runs the report twice and ``cmp``'s the bytes.

:data:`DRIFT_TOLERANCES` is the enforced contract: the ``repro drift``
CLI and ``benchmarks/bench_fidelity_drift.py`` both fail when any
measured phase drifts beyond its floor. The floors are generous where
the structures genuinely differ (the executed GPipe warmup/drain vs
Eq. 7's closed form; boundary-stage message counts vs Eq. 9's
interior-GPU accounting) and tight where they must agree (compute,
which shares the device model).
"""

from __future__ import annotations

import json

from ..cluster.calibration import (
    SUMMIT,
    SummitCalibration,
    fit_calibration,
    synthetic_comm_samples,
)
from ..models import get_spec
from .config import CandidateConfig

__all__ = [
    "FIG_TEMPLATES",
    "DRIFT_PHASES",
    "DRIFT_TOLERANCES",
    "candidate_for_workload",
    "drift_report",
    "drift_report_json",
    "render_drift_report",
]

#: the Fig. 6-8 config templates: (figure, model, n_gpus, framework)
FIG_TEMPLATES = (
    ("fig6", "gpt3-xl", 64, "axonn"),
    ("fig6", "gpt3-xl", 64, "axonn+samo"),
    ("fig6", "gpt3-2.7b", 128, "axonn"),
    ("fig6", "gpt3-2.7b", 128, "axonn+samo"),
    ("fig7", "gpt3-6.7b", 256, "axonn+samo"),
    ("fig7", "gpt3-13b", 512, "axonn+samo"),
    ("fig8", "gpt3-2.7b", 256, "axonn"),
    ("fig8", "gpt3-2.7b", 256, "deepspeed-3d"),
)

#: phase rows of the drift report (same order as the CLI drift table)
DRIFT_PHASES = ("compute", "p2p", "bubble", "collective", "other", "total")

#: enforced per-phase ceilings on |measured - analytic| / analytic.
#: compute and other share the device model with the closed form and must
#: track it; p2p admits the boundary-vs-interior message-count gap
#: (first/last stages send 2m messages, Eq. 9 charges every GPU the
#: interior 4m) plus the replay's warmup serialization; bubble admits the
#: replay's message-latency contribution to warmup/drain on top of
#: Eq. 7's compute-only closed form; collective admits the per-bucket
#: latency overhead the executed bucketed all-reduce pays over the
#: monolithic ring.
DRIFT_TOLERANCES = {
    "compute": 1e-6,
    "p2p": 0.60,
    "bubble": 0.80,
    "collective": 0.50,
    "other": 1e-6,
    "total": 0.35,
}


def candidate_for_workload(
    spec, framework: str, n_gpus: int, *,
    sparsity: float = 0.9, mbs: int = 1, cal: SummitCalibration = SUMMIT,
) -> CandidateConfig:
    """The paper-protocol candidate of a (model, GPUs, framework) workload.

    GPT models take the hybrid decomposition the batch engine uses
    (``G_inter`` from the memory model, checkpointing on); CNNs run pure
    data parallel.
    """
    from ..parallel.axonn import _framework_traits
    from ..parallel.partitioner import choose_g_inter

    traits = _framework_traits(framework)
    if spec.family == "cnn":
        return CandidateConfig.create(
            framework, g_data=n_gpus, mbs=mbs,
            mode=traits["mode"], sparsity=sparsity,
        )
    g_inter = choose_g_inter(spec, n_gpus, traits["mode"], sparsity, mbs, cal)
    return CandidateConfig.create(
        framework,
        g_inter=g_inter,
        g_data=n_gpus // g_inter,
        mbs=mbs,
        mode=traits["mode"],
        sparsity=sparsity,
    )


def _phase_entry(reference, others: dict) -> dict:
    entry = {"analytic": reference}
    for fid, value in others.items():
        drift = (
            0.0 if value == reference
            else abs(value - reference) / max(abs(reference), 1e-300)
        )
        entry[fid] = value
        entry[f"{fid}_rel_drift"] = drift
    return entry


def drift_report(
    *,
    seed: int = 0,
    quick: bool = False,
    templates=None,
    cal: SummitCalibration = SUMMIT,
) -> dict:
    """Per-phase analytic/sim/measured drift over the figure templates.

    ``quick`` keeps only the first template (the CI smoke);
    ``templates`` overrides the set entirely. The returned document also
    carries the enforced tolerances, each template's worst offending
    phase, and the calibration-fit recovery block — everything the CLI
    and the bench need to pass or fail a run.
    """
    from .estimator import make_estimator

    if templates is None:
        templates = FIG_TEMPLATES[:1] if quick else FIG_TEMPLATES
    rows = []
    violations = []
    for figure, model, n_gpus, framework in templates:
        spec = get_spec(model)
        config = candidate_for_workload(spec, framework, n_gpus, cal=cal)
        evals = {
            "analytic": make_estimator("analytic", spec, cal).evaluate(config),
            "analytic-batch": (
                make_estimator("analytic-batch", spec, cal)
                .evaluate_batch([config])
                .evaluation(0, 0)
            ),
            "sim": make_estimator("sim", spec, cal).evaluate(config),
            "measured": make_estimator("measured", spec, cal, seed=seed)
            .evaluate(config),
        }
        phases = {}
        worst = {"phase": None, "rel_drift": 0.0}
        for phase in DRIFT_PHASES:
            reference = getattr(evals["analytic"].breakdown, phase)
            entry = _phase_entry(
                reference,
                {
                    fid: getattr(evals[fid].breakdown, phase)
                    for fid in ("analytic-batch", "sim", "measured")
                },
            )
            entry["tolerance"] = DRIFT_TOLERANCES[phase]
            entry["within_tolerance"] = (
                entry["measured_rel_drift"] <= DRIFT_TOLERANCES[phase]
            )
            if not entry["within_tolerance"]:
                violations.append(
                    f"{figure}/{model}/{framework}: {phase} measured drift "
                    f"{entry['measured_rel_drift']:.3f} > "
                    f"{DRIFT_TOLERANCES[phase]:.3f}"
                )
            if entry["measured_rel_drift"] >= worst["rel_drift"]:
                worst = {
                    "phase": phase, "rel_drift": entry["measured_rel_drift"]
                }
            phases[phase] = entry
        rows.append(
            {
                "figure": figure,
                "model": model,
                "n_gpus": n_gpus,
                "framework": framework,
                "config": list(config.canonical_key()),
                "phases": phases,
                "worst_measured": worst,
            }
        )

    base = cal
    fitted = fit_calibration(synthetic_comm_samples(base, seed=seed, noise=0.02), base)
    calibration = {
        "seed": seed,
        "noise": 0.02,
        "constants": {
            name: {
                "base": getattr(base, name),
                "fitted": getattr(fitted, name),
                "rel_error": abs(getattr(fitted, name) / getattr(base, name) - 1.0),
            }
            for name in ("p2p_alpha", "p2p_beta", "coll_alpha", "coll_beta")
        },
    }
    return {
        "seed": seed,
        "tolerances": dict(DRIFT_TOLERANCES),
        "templates": rows,
        "calibration": calibration,
        "violations": violations,
        "ok": not violations,
    }


def drift_report_json(report: dict) -> str:
    """The report as canonical JSON (sorted keys — byte-stable per seed)."""
    return json.dumps(report, indent=2, sort_keys=True)


def render_drift_report(report: dict) -> str:
    """ASCII tables of the report (one per template, plus calibration)."""
    from ..reporting import render_table

    sections = []
    for row in report["templates"]:
        rows = []
        for phase in DRIFT_PHASES:
            e = row["phases"][phase]
            rows.append(
                {
                    "phase": phase,
                    "analytic (s)": f"{e['analytic']:.6f}",
                    "batch drift": f"{e['analytic-batch_rel_drift']:.1e}",
                    "sim (s)": f"{e['sim']:.6f}",
                    "measured (s)": f"{e['measured']:.6f}",
                    "meas drift": f"{e['measured_rel_drift']:.3f}",
                    "tol": f"{e['tolerance']:.2f}",
                    "ok": "y" if e["within_tolerance"] else "N",
                }
            )
        title = (
            f"{row['figure']} · {row['model']} · {row['n_gpus']} GPUs · "
            f"{row['framework']} (drift vs analytic)"
        )
        sections.append(render_table(rows, title=title))
    cal_rows = [
        {
            "constant": name,
            "base": f"{entry['base']:.4g}",
            "fitted": f"{entry['fitted']:.4g}",
            "rel error": f"{entry['rel_error']:.4f}",
        }
        for name, entry in report["calibration"]["constants"].items()
    ]
    sections.append(
        render_table(
            cal_rows,
            title=(
                "fit_calibration recovery on synthetic samples "
                f"(seed={report['calibration']['seed']}, "
                f"noise={report['calibration']['noise']:g})"
            ),
        )
    )
    status = "OK" if report["ok"] else "DRIFT EXCEEDED:\n" + "\n".join(
        report["violations"]
    )
    return "\n\n".join(sections) + f"\n\n{status}\n"
