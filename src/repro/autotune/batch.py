"""Batch evaluation engine — Eqs. 6-11 as array programs over the grid.

The planner used to price one ``(config, scenario)`` pair per Python
call; robust planning multiplies that by the scenario-set size. Every
term of the closed form is an elementwise expression in the candidate's
integer decomposition (``G_tensor``, ``G_inter``, ``G_data``, ``mbs``)
and a handful of per-scenario coefficients (ring-link multipliers,
stall factors, cross-node bandwidth), so the whole candidate grid ×
scenario set evaluates as one structure-of-arrays numpy program —
the lazy build→fuse→realize idiom from ROADMAP's open item.

The scalar :class:`~repro.autotune.estimator.AnalyticEstimator` stays
the ground truth: every array expression below mirrors the scalar
formula op-by-op (same association order, same int→float conversion
points), so each batch cell matches the scalar path to ~1e-9 relative
tolerance — pinned in ``tests/test_batch_eval.py`` across all named
scenario sets and both model families, and auditable any time via
:func:`crosscheck_batch` or ``repro plan --compare-fidelities``.

Integer-exact quantities (model-state bytes, activation footprints,
gradient payloads — Eqs. 1-5) are computed with Python ints per
*distinct* knob combination and broadcast, so memory/feasibility are
bit-identical to the scalar path, not merely close.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..cluster.p2p import p2p_message_time, pipeline_message_bytes
from ..models.spec import ModelSpec
from ..parallel.data_parallel import gradient_bytes_per_gpu
from ..parallel.partitioner import model_state_bytes
from ..parallel.perf_model import BatchBreakdown, ParallelConfig
from ..parallel.scenarios import ClusterScenario, get_scenario
from .config import SPARSE_MODES
from .estimator import (
    AnalyticEstimator,
    Evaluation,
    activation_footprint_bytes,
    register_estimator,
)

__all__ = [
    "EvaluationBatch",
    "VectorizedAnalyticEstimator",
    "crosscheck_batch",
]

#: phase names shared by BatchBreakdown and the SoA arrays
PHASES = ("compute", "p2p", "bubble", "collective", "other")


# ---------------------------------------------------------------------------
# structure-of-arrays result
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EvaluationBatch:
    """A config grid × scenario set costed as structure-of-arrays.

    Row ``i`` is ``configs[i]``, column ``j`` is ``scenarios[j]`` (a
    :class:`~repro.parallel.scenarios.ClusterScenario` or None for the
    pristine machine). Phase arrays are ``(n_configs, n_scenarios)``
    float64 seconds; memory and feasibility are per-config (the memory
    model — Eqs. 1-5 — does not depend on the scenario knobs).
    Cell ``(i, j)`` materialises back into the exact scalar
    :class:`~repro.autotune.estimator.Evaluation` via :meth:`evaluation`,
    which is how the planner back-fills the shared evaluation cache so
    scalar and batch runs interconvert.
    """

    configs: tuple
    scenarios: tuple
    fidelity: str
    batch_size: int
    model: str
    compute: np.ndarray
    p2p: np.ndarray
    bubble: np.ndarray
    collective: np.ndarray
    other: np.ndarray
    memory_bytes: np.ndarray
    feasible: np.ndarray
    #: model family ("gpt"-like pipelined or "cnn") — selects the notes
    #: layout when a cell materialises back into a scalar Evaluation
    family: str = "gpt"
    #: per-config scalar-path note arrays, materialised lazily (building
    #: one dict per config up front would dominate the batch call)
    t_f: np.ndarray | None = None
    t_b: np.ndarray | None = None
    overhead: np.ndarray | None = None
    microbatches: np.ndarray | None = None
    #: pre-materialised cells (row-major), set by the scalar fallback
    cells: tuple | None = field(default=None, repr=False)

    @property
    def n_configs(self) -> int:
        return len(self.configs)

    @property
    def n_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def total(self) -> np.ndarray:
        """Batch seconds per cell, ``(n_configs, n_scenarios)``."""
        return self.compute + self.p2p + self.bubble + self.collective + self.other

    def evaluation(self, i: int, j: int = 0) -> Evaluation:
        """Materialise cell ``(i, j)`` as a scalar :class:`Evaluation`."""
        if self.cells is not None:
            return self.cells[i][j]
        config = self.configs[i]
        mem = int(self.memory_bytes[i])
        if self.family == "cnn":
            pcfg = ParallelConfig(
                n_gpus=config.n_gpus, g_inter=1, g_data=config.n_gpus,
                mbs=config.mbs, microbatches=1,
            )
            notes = {"mode": config.mode, "fidelity": self.fidelity}
        else:
            pcfg = ParallelConfig(
                n_gpus=config.g_inter * config.g_data,
                g_inter=config.g_inter,
                g_data=config.g_data,
                mbs=config.mbs,
                microbatches=int(self.microbatches[i]),
            )
            notes = {
                "t_f": float(self.t_f[i]),
                "t_b": float(self.t_b[i]),
                "overhead": float(self.overhead[i]),
                "mode": config.mode,
                "g_tensor": config.g_tensor,
                "fidelity": self.fidelity,
            }
        breakdown = BatchBreakdown(
            framework=config.framework,
            model=self.model,
            config=pcfg,
            compute=float(self.compute[i, j]),
            p2p=float(self.p2p[i, j]),
            bubble=float(self.bubble[i, j]),
            collective=float(self.collective[i, j]),
            other=float(self.other[i, j]),
            memory_per_gpu=mem,
            notes=notes,
        )
        return Evaluation(
            config=config,
            breakdown=breakdown,
            memory_bytes=mem,
            feasible=bool(self.feasible[i]),
            batch_size=self.batch_size,
            fidelity=self.fidelity,
        )

    def evaluations(self, j: int = 0) -> list[Evaluation]:
        """All rows of scenario column ``j`` as scalar evaluations."""
        return [self.evaluation(i, j) for i in range(self.n_configs)]

    @classmethod
    def from_evaluations(
        cls,
        configs,
        scenarios,
        rows,
        fidelity: str,
        batch_size: int,
    ) -> "EvaluationBatch":
        """Assemble a batch from scalar evaluations (the loop fallback).

        ``rows[i][j]`` is the evaluation of ``configs[i]`` under
        ``scenarios[j]``; the SoA arrays are filled from their
        breakdowns so array consumers (robust reduction, benchmarks)
        see one uniform shape regardless of which path priced the batch.
        """
        configs = tuple(configs)
        scenarios = tuple(scenarios)
        shape = (len(configs), len(scenarios))
        arrays = {p: np.zeros(shape) for p in PHASES}
        memory = np.zeros(len(configs), dtype=np.int64)
        feasible = np.zeros(len(configs), dtype=bool)
        model = ""
        for i, row in enumerate(rows):
            for j, ev in enumerate(row):
                for p in PHASES:
                    arrays[p][i, j] = getattr(ev.breakdown, p)
                model = ev.breakdown.model
            memory[i] = row[0].memory_bytes
            feasible[i] = row[0].feasible
        return cls(
            configs=configs,
            scenarios=scenarios,
            fidelity=fidelity,
            batch_size=batch_size,
            model=model,
            memory_bytes=memory,
            feasible=feasible,
            cells=tuple(tuple(row) for row in rows),
            **arrays,
        )


# ---------------------------------------------------------------------------
# per-scenario coefficient vectors
# ---------------------------------------------------------------------------

def _beta_multiplier(scenario, group_size: int, spans_nodes: bool) -> float:
    """Scenario bandwidth multiplier; exactly 1.0 for the pristine machine
    (``x * 1.0 == x`` bitwise, so the neutral column stays exact)."""
    if scenario is None:
        return 1.0
    return scenario.collective_beta_multiplier(group_size, spans_nodes=spans_nodes)


def _stall_factor(scenario, group_size: int, ranks=None) -> float:
    if scenario is None:
        return 1.0
    return scenario.collective_stall_factor(group_size, ranks)


def _per_column(g_arr: np.ndarray, columns, fn) -> np.ndarray:
    """``out[i, j] = fn(columns[j], g_arr[i])`` via distinct-value loops.

    Scenario coefficients depend only on the (scenario, group-size)
    pair; distinct group sizes number a handful per grid, so the Python
    double loop runs O(scenarios × distinct sizes) times, never
    O(cells).
    """
    out = np.empty((g_arr.size, len(columns)))
    for j, sc in enumerate(columns):
        for g in np.unique(g_arr):
            out[g_arr == int(g), j] = fn(sc, int(g))
    return out


# ---------------------------------------------------------------------------
# the vectorized estimator
# ---------------------------------------------------------------------------

class VectorizedAnalyticEstimator(AnalyticEstimator):
    """Eqs. 6-11 and the memory model as one broadcasted array program.

    ``fidelity="analytic-batch"``. The scalar ``evaluate`` inherited
    from :class:`AnalyticEstimator` is this estimator's own ground
    truth: ``evaluate_batch`` must agree with it element-wise, and the
    fidelity label is a separate cache-key component from the scenario,
    so a scalar warm-start hits the batch planner's cache and vice
    versa.

    Scenario support covers the *collective* knobs (ring-link
    multipliers, a stalling rank, cross-node bandwidth, the allreduce
    schedule) — per-scenario coefficient vectors broadcast against the
    candidate grid. Pipeline knobs (straggler stage, slow link, skew,
    contention) need the event engine's schedule and are rejected at
    construction for pipelined families, exactly like the scalar
    ``analytic`` fidelity; the CNN family runs pure data parallel, so
    any scenario is acceptable there (matching ``sim``'s CNN
    semantics).
    """

    fidelity = "analytic-batch"
    supports_scenarios = True
    supports_batch = True

    def __init__(
        self,
        spec: ModelSpec,
        cal: SummitCalibration = SUMMIT,
        scenario=None,
    ):
        scenario = get_scenario(scenario)
        self._check_scenario(spec, scenario)
        super().__init__(spec, cal, scenario=scenario)

    @staticmethod
    def _check_scenario(spec: ModelSpec, scenario: ClusterScenario | None) -> None:
        if (
            scenario is not None
            and scenario.degrades_pipeline
            and spec.family != "cnn"
        ):
            raise ValueError(
                f"scenario {scenario.name!r} degrades the pipeline phase; "
                "the closed-form analytic-batch fidelity only prices "
                "collective knobs — use fidelity='sim' for pipeline "
                "degradations"
            )

    # -- batch entry --------------------------------------------------------
    def evaluate_batch(self, configs, scenarios=None) -> EvaluationBatch:
        configs = tuple(configs)
        if scenarios is None:
            columns = (self.scenario,)
        else:
            columns = tuple(get_scenario(s) for s in scenarios)
        for sc in columns:
            self._check_scenario(self.spec, sc)
        if self.spec.family == "cnn":
            return self._batch_cnn(configs, columns)
        return self._batch_transformer(configs, columns)

    # -- shared integer-exact pieces ---------------------------------------
    def _memory_arrays(self, configs) -> tuple[np.ndarray, np.ndarray]:
        """Eqs. 1-5 per config with Python-int arithmetic (bit-exact).

        Mirrors :func:`candidate_memory_per_gpu` but memoises its two
        layer-sum terms at their true granularity — state bytes depend
        only on ``(mode, sparsity, G_data)`` and activations only on
        ``(mbs, checkpoint)`` — so the O(layers) sums run once per
        distinct knob value, not once per candidate.
        """
        cal = self.cal
        budget = cal.gpu_memory_bytes
        overhead = cal.framework_overhead_bytes
        state_memo: dict = {}
        act_memo: dict = {}
        mems = []
        for c in configs:
            skey = (c.mode, c.sparsity, c.g_data)
            state = state_memo.get(skey)
            if state is None:
                state = state_memo[skey] = model_state_bytes(
                    self.spec, c.mode, c.sparsity, g_data=c.g_data
                )
            akey = (c.mbs, c.checkpoint_activations)
            acts = act_memo.get(akey)
            if acts is None:
                acts = act_memo[akey] = activation_footprint_bytes(
                    self.spec, c.mbs, c.checkpoint_activations
                )
            mems.append(
                state // c.model_parallel_degree + acts // c.g_tensor + overhead
            )
        memory = np.array(mems, dtype=np.int64)
        feasible = np.array([m <= budget for m in mems], dtype=bool)
        return memory, feasible

    def _gradient_bytes(self, configs) -> np.ndarray:
        """Per-GPU all-reduce payload (Python-int exact, then broadcast)."""
        memo: dict = {}
        out = np.empty(len(configs), dtype=np.int64)
        for i, c in enumerate(configs):
            key = (c.model_parallel_degree, c.mode in SPARSE_MODES, c.sparsity)
            nbytes = memo.get(key)
            if nbytes is None:
                nbytes = memo[key] = gradient_bytes_per_gpu(
                    self.spec, c.model_parallel_degree,
                    c.mode in SPARSE_MODES, c.sparsity,
                )
            out[i] = nbytes
        return out

    # -- data-parallel collective (Eqs. 10-11 + hierarchical schedule) ------
    def _dp_collective(
        self, nbytes: np.ndarray, g_data: np.ndarray, columns
    ) -> np.ndarray:
        """``(n_configs, n_scenarios)`` allreduce seconds, algo-dispatched.

        Mirrors :func:`repro.cluster.collectives.ring_allreduce_time` and
        :func:`repro.cluster.hierarchical.hierarchical_allreduce_time`
        op-by-op; the scenario column selects ring / hierarchical /
        best (elementwise min) through its ``coll_algo`` knob, exactly
        like :func:`~repro.cluster.collectives.allreduce_time`.
        """
        cal = self.cal
        g = g_data.astype(np.float64)[:, None]
        nb = nbytes.astype(np.float64)[:, None]
        live = ((g_data > 1) & (nbytes > 0))[:, None]

        stall = _per_column(g_data, columns, _stall_factor)
        need_ring = any(
            sc is None or sc.coll_algo in ("ring", "best") for sc in columns
        )
        need_hier = any(
            sc is not None and sc.coll_algo in ("hierarchical", "best")
            for sc in columns
        )

        ring_t = None
        if need_ring:
            bm = _per_column(
                g_data, columns, lambda sc, gs: _beta_multiplier(sc, gs, True)
            )
            beta = cal.coll_beta * bm
            steps = (2 * (g_data - 1)).astype(np.float64)[:, None]
            ring_t = steps * cal.coll_alpha + (2 * (g - 1) / g) * nb / beta
            ring_t = ring_t * stall

        hier_t = None
        if need_hier:
            gpn = cal.gpus_per_node
            local = np.minimum(g_data, gpn)
            n_nodes = -(-g_data // gpn)
            bm_local = _per_column(
                local, columns, lambda sc, gs: _beta_multiplier(sc, gs, False)
            )
            beta_nv = (cal.nvlink_bw * 0.6) * bm_local
            loc = local.astype(np.float64)[:, None]
            intra = 2 * ((loc - 1) * cal.coll_alpha + ((loc - 1) / loc) * nb / beta_nv)
            intra = np.where((local > 1)[:, None], intra, 0.0)
            bm_x = _per_column(
                n_nodes, columns, lambda sc, gs: _beta_multiplier(sc, gs, True)
            )
            beta_x = cal.coll_beta * bm_x
            nn = n_nodes.astype(np.float64)[:, None]
            shard = np.ceil(nb / loc)
            steps_x = (2 * (n_nodes - 1)).astype(np.float64)[:, None]
            inter = steps_x * cal.coll_alpha + (2 * (nn - 1) / nn) * shard / beta_x
            inter = np.where((n_nodes > 1)[:, None], inter, 0.0)
            hier_t = (intra + inter) * stall

        out = np.zeros((len(g_data), len(columns)))
        for j, sc in enumerate(columns):
            algo = getattr(sc, "coll_algo", None) or "ring"
            if algo == "ring":
                out[:, j] = ring_t[:, j]
            elif algo == "hierarchical":
                out[:, j] = hier_t[:, j]
            elif algo == "best":
                out[:, j] = np.minimum(ring_t[:, j], hier_t[:, j])
            else:  # pragma: no cover - ClusterScenario validates coll_algo
                raise ValueError(f"unknown allreduce algo {algo!r}")
        return np.where(live, out, 0.0)

    # -- tensor-parallel collective (Megatron intra-layer rings) ------------
    def _tp_collective(
        self, configs, g_tensor: np.ndarray, mbs: np.ndarray,
        m: np.ndarray, g_inter: np.ndarray, columns,
    ) -> np.ndarray:
        """Vectorized :meth:`CostEstimator._tensor_parallel_collective`.

        One ring price per distinct block-activation shape (transformer
        blocks share one), summed in layer order like the scalar
        ``sum()``; the stall factor honours group membership — ranks
        ``0..G_tensor-1`` — exactly like the rank-aware scalar path.
        """
        if not (g_tensor > 1).any():
            return np.zeros((len(configs), len(columns)))
        cal = self.cal
        payload_counts = Counter(
            l.activation_out_elems
            for l in self.spec.layers
            if l.kind == "transformer_block"
        )
        gt = g_tensor.astype(np.float64)[:, None]

        # ranks 0..g-1 stay on one node iff g <= gpus_per_node, so node
        # membership is a function of the group size alone
        def tp_beta(sc, gs):
            spans_nodes = gs > cal.gpus_per_node
            base = cal.coll_beta if spans_nodes else cal.nvlink_bw * 0.6
            return base * _beta_multiplier(sc, gs, spans_nodes)

        def tp_stall(sc, gs):
            return _stall_factor(sc, gs, list(range(gs)))

        beta = _per_column(g_tensor, columns, tp_beta)
        stall = _per_column(g_tensor, columns, tp_stall)
        steps = (2 * (g_tensor - 1)).astype(np.float64)[:, None]
        total = np.zeros((len(configs), len(columns)))
        for elems, n_blocks in payload_counts.items():
            nb = (2 * mbs * elems).astype(np.float64)[:, None]
            t = steps * cal.coll_alpha + (2 * (gt - 1) / gt) * nb / beta
            t = t * stall
            total = total + n_blocks * 4.0 * t
        total = np.where((g_tensor > 1)[:, None], total, 0.0)
        return total * m.astype(np.float64)[:, None] / g_inter.astype(np.float64)[:, None]

    # -- transformer family -------------------------------------------------
    def _batch_transformer(self, configs, columns) -> EvaluationBatch:
        spec, cal = self.spec, self.cal
        n = len(configs)
        B = spec.batch_size

        # -- one extraction pass over the grid ------------------------------
        # Every per-candidate scalar (decomposition, efficiency, message
        # time, the Eqs. 1-5 int-exact byte counts) comes out of a single
        # Python loop; anything with few distinct values is memoised so
        # the O(layers) sums run per distinct knob, never per candidate.
        eff_memo: dict = {}
        msg_memo: dict = {}
        state_memo: dict = {}
        act_memo: dict = {}
        grad_memo: dict = {}
        fw_overhead = cal.framework_overhead_bytes
        max_boundary = self._max_boundary_elems
        gt_l, gi_l, gd_l, mbs_l, m_l = [], [], [], [], []
        eff_l, bwd_l, samo_l, ds_l, msg_l = [], [], [], [], []
        mem_l, grad_l = [], []
        for c in configs:
            g_tensor, g_inter, g_data, mbs_c = c.g_tensor, c.g_inter, c.g_data, c.mbs
            if B % (g_data * mbs_c):
                raise ValueError(
                    f"batch {B} not divisible by G_data*mbs = {g_data}*{mbs_c}"
                )
            gt_l.append(g_tensor)
            gi_l.append(g_inter)
            gd_l.append(g_data)
            mbs_l.append(mbs_c)
            m_l.append(B // (g_data * mbs_c))
            kind = self._compute_kind(c)
            e = eff_memo.get(kind)
            if e is None:
                e = eff_memo[kind] = self.device.efficiency(kind)
            eff_l.append(e)
            bwd_l.append(3.0 if c.checkpoint_activations else 2.0)
            samo_l.append(c.mode.value == "samo")
            ds_l.append(c.framework == "deepspeed-3d")
            t = msg_memo.get(mbs_c)
            if t is None:
                t = msg_memo[mbs_c] = p2p_message_time(
                    pipeline_message_bytes(mbs_c, max_boundary), cal=cal
                )
            msg_l.append(t)
            # memory (Eqs. 1-5), mirroring candidate_memory_per_gpu
            mpd_c = g_tensor * g_inter
            skey = (c.mode, c.sparsity, g_data)
            state = state_memo.get(skey)
            if state is None:
                state = state_memo[skey] = model_state_bytes(
                    spec, c.mode, c.sparsity, g_data=g_data
                )
            akey = (mbs_c, c.checkpoint_activations)
            acts = act_memo.get(akey)
            if acts is None:
                acts = act_memo[akey] = activation_footprint_bytes(
                    spec, mbs_c, c.checkpoint_activations
                )
            mem_l.append(state // mpd_c + acts // g_tensor + fw_overhead)
            # all-reduce payload (Python-int exact)
            gkey = (mpd_c, c.mode in SPARSE_MODES, c.sparsity)
            nb = grad_memo.get(gkey)
            if nb is None:
                nb = grad_memo[gkey] = gradient_bytes_per_gpu(
                    spec, mpd_c, c.mode in SPARSE_MODES, c.sparsity
                )
            grad_l.append(nb)

        gt = np.array(gt_l, dtype=np.int64)
        gi = np.array(gi_l, dtype=np.int64)
        gd = np.array(gd_l, dtype=np.int64)
        mbs = np.array(mbs_l, dtype=np.int64)
        m = np.array(m_l, dtype=np.int64)
        mpd = gt * gi
        memory = np.array(mem_l, dtype=np.int64)
        feasible = memory <= cal.gpu_memory_bytes
        grad_bytes = np.array(grad_l, dtype=np.int64)

        # -- compute (Eq. 6) ------------------------------------------------
        fwd_per_sample = spec.fwd_flops_per_sample()
        eff = np.array(eff_l)
        fwd_flops = fwd_per_sample * mbs.astype(np.float64)
        t_f = fwd_flops / (self.device.peak_flops * eff) / mpd.astype(np.float64)
        bwd_factor = np.array(bwd_l)
        t_b = bwd_factor * t_f
        m_f = m.astype(np.float64)
        compute = m_f * (t_f + t_b)
        is_samo = np.array(samo_l)
        overhead = np.where(
            is_samo,
            cal.samo_compress_cost_per_param
            * (spec.param_count / mpd.astype(np.float64))
            * m_f,
            0.0,
        )

        # -- p2p + bubble (Eqs. 7, 9) ---------------------------------------
        is_pipelined = gi > 1
        t_msg = np.array(msg_l)
        is_deepspeed = np.array(ds_l)
        p2p = 4.0 * m_f * t_msg
        p2p = np.where(is_deepspeed, p2p * cal.deepspeed_p2p_penalty, p2p)
        p2p = np.where(is_pipelined, p2p, 0.0)
        gi_f = gi.astype(np.float64)
        bubble = (t_f * gi_f + t_b * gi_f) * (1.0 - 1.0 / gi_f)
        bubble = np.where(is_deepspeed, bubble * cal.deepspeed_bubble_penalty, bubble)
        bubble = np.where(is_pipelined, bubble, 0.0)

        # -- collectives (Eqs. 10-11) ---------------------------------------
        coll = self._dp_collective(grad_bytes, gd, columns)
        coll = coll + self._tp_collective(configs, gt, mbs, m, gi, columns)

        other = cal.other_fraction * compute

        n_s = len(columns)

        def grid(col: np.ndarray) -> np.ndarray:
            return np.broadcast_to(col[:, None], (n, n_s)).copy()

        return EvaluationBatch(
            configs=configs,
            scenarios=columns,
            fidelity=self.fidelity,
            batch_size=B,
            model=spec.name,
            compute=grid(compute + overhead),
            p2p=grid(p2p),
            bubble=grid(bubble),
            collective=coll,
            other=grid(other),
            memory_bytes=memory,
            feasible=feasible,
            family="gpt",
            t_f=t_f,
            t_b=t_b,
            overhead=overhead,
            microbatches=m,
        )

    # -- CNN family (pure data parallel, Figure 5) --------------------------
    def _batch_cnn(self, configs, columns) -> EvaluationBatch:
        spec, cal = self.spec, self.cal
        n = len(configs)
        B = spec.batch_size
        for c in configs:
            if B % c.n_gpus:
                raise ValueError(f"batch {B} not divisible by {c.n_gpus} GPUs")
        n_gpus = np.array([c.n_gpus for c in configs], dtype=np.int64)
        spg = np.array([B // c.n_gpus for c in configs], dtype=np.int64)
        hint = spec.efficiency_hint
        eff_max = hint.get("eff_max", cal.conv_efficiency)
        half = hint.get("half_batch", cal.conv_half_batch)
        spg_f = spg.astype(np.float64)
        eff = eff_max * spg_f / (spg_f + half)
        fwd = spec.fwd_flops_per_sample()
        compute = 3.0 * fwd * spg_f / (self.device.peak_flops * eff)
        backward = compute * 2.0 / 3.0

        raw = self._dp_collective(self._gradient_bytes(configs), n_gpus, columns)
        frac = cal.dp_overlap_fraction
        if frac > 0.0:
            hidden = np.minimum(raw * frac, backward[:, None])
            coll = np.maximum(raw - hidden, 0.0)
        else:
            coll = raw

        other = cal.other_fraction * compute
        memory, feasible = self._memory_arrays(configs)

        n_s = len(columns)

        def grid(col: np.ndarray) -> np.ndarray:
            return np.broadcast_to(col[:, None], (n, n_s)).copy()

        return EvaluationBatch(
            configs=configs,
            scenarios=columns,
            fidelity=self.fidelity,
            batch_size=B,
            model=spec.name,
            compute=grid(compute),
            p2p=np.zeros((n, n_s)),
            bubble=np.zeros((n, n_s)),
            collective=coll,
            other=grid(other),
            memory_bytes=memory,
            feasible=feasible,
            family="cnn",
        )


# ---------------------------------------------------------------------------
# element-wise cross-check tooling
# ---------------------------------------------------------------------------

def crosscheck_batch(
    estimator,
    configs,
    scenarios=None,
    rel_tol: float = 1e-9,
) -> dict:
    """Element-wise drift of ``evaluate_batch`` against the scalar loop.

    Prices the grid both ways — one ``evaluate_batch`` call, then the
    scalar ``evaluate`` per cell via ``with_scenario`` — and reports the
    worst relative drift per phase plus any cells beyond ``rel_tol``.
    This is the audit the CLI exposes (``repro plan
    --compare-fidelities``) and the parity tests pin.
    """
    batch = estimator.evaluate_batch(configs, scenarios)
    worst = {p: 0.0 for p in PHASES}
    worst["total"] = 0.0
    mismatches = []
    for j, sc in enumerate(batch.scenarios):
        scalar = estimator.with_scenario(sc)
        for i, config in enumerate(batch.configs):
            ev = scalar.evaluate(config)
            ok = (
                int(batch.memory_bytes[i]) == ev.memory_bytes
                and bool(batch.feasible[i]) == ev.feasible
            )
            for p in PHASES + ("total",):
                a = float(getattr(batch, p)[i, j]) if p != "total" else float(
                    batch.total[i, j]
                )
                b = getattr(ev.breakdown, p) if p != "total" else ev.breakdown.total
                drift = abs(a - b) / max(abs(b), 1e-300) if b != a else 0.0
                worst[p] = max(worst[p], drift)
                if drift > rel_tol:
                    ok = False
            if not ok:
                mismatches.append((i, j))
    return {
        "cells": batch.n_configs * batch.n_scenarios,
        "max_rel_drift": worst,
        "mismatches": mismatches,
        "ok": not mismatches,
    }


@register_estimator("analytic-batch")
def _make_analytic_batch(
    spec, cal=SUMMIT, *, scenario=None, partition_mode="flops",
    overlap=False, placement="block",
):
    if partition_mode != "flops":
        raise ValueError(
            "time-balanced partitioning needs the event-driven engine; "
            "use fidelity='sim'"
        )
    if overlap or placement != "block":
        raise ValueError(
            "overlap and placement optimization need the event-driven "
            "engine; use fidelity='sim'"
        )
    return VectorizedAnalyticEstimator(spec, cal, scenario=scenario)
