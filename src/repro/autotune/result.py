"""Plan results: best config, Pareto frontier, and the paper-style "why".

:class:`PlanResult` holds every costed candidate and answers the three
questions a planning tool owes its user:

* **What should I run?** — :attr:`best` (highest-throughput feasible
  config) and :meth:`best_for` (per framework);
* **What are my trade-offs?** — :meth:`pareto_frontier` over
  (throughput, per-GPU memory): configs nothing else beats on both axes;
* **Why?** — :meth:`why` renders the Figure 8-style phase breakdown
  (compute / p2p / bubble / collective / other, via the shared
  :class:`~repro.parallel.perf_model.BatchBreakdown`) of the per-framework
  winners, making the paper's Section IV-B story — SAMO's memory savings
  shrink ``G_inter``, shrinking bubble and p2p — legible per plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..reporting.tables import format_bytes, render_table
from .estimator import Evaluation

__all__ = ["PlanResult"]


@dataclass
class PlanResult:
    """Outcome of one planner search."""

    model: str
    n_gpus: int
    fidelity: str
    budget_bytes: int
    evaluations: list[Evaluation] = field(default_factory=list)
    stats: object = None

    # ------------------------------------------------------------------
    @property
    def feasible(self) -> list[Evaluation]:
        """Feasible candidates, fastest first."""
        return sorted(
            (e for e in self.evaluations if e.feasible),
            key=lambda e: e.total_time,
        )

    @property
    def best(self) -> Evaluation:
        """The fastest feasible configuration."""
        ranked = self.feasible
        if not ranked:
            raise RuntimeError(
                f"{self.model} on {self.n_gpus} GPUs: no feasible configuration "
                f"within {format_bytes(self.budget_bytes)} per GPU"
            )
        return ranked[0]

    def best_for(self, framework: str) -> Evaluation | None:
        """Fastest feasible config of one framework (None if none fit)."""
        ranked = [e for e in self.feasible if e.config.framework == framework]
        return ranked[0] if ranked else None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`.

        Full-precision floats, so two plans serialized from identical
        inputs are diffable artifacts (``repro plan --json``).
        """
        best = self.feasible
        return {
            "model": self.model,
            "n_gpus": self.n_gpus,
            "fidelity": self.fidelity,
            "budget_bytes": self.budget_bytes,
            "best": best[0].to_dict() if best else None,
            "evaluations": [e.to_dict() for e in self.evaluations],
            "stats": self.stats.as_dict() if self.stats is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlanResult":
        from .search import PlannerStats

        stats = data.get("stats")
        return cls(
            model=data["model"],
            n_gpus=data["n_gpus"],
            fidelity=data["fidelity"],
            budget_bytes=data["budget_bytes"],
            evaluations=[Evaluation.from_dict(e) for e in data["evaluations"]],
            stats=PlannerStats(**stats) if stats is not None else None,
        )

    # ------------------------------------------------------------------
    def pareto_frontier(self) -> list[Evaluation]:
        """Non-dominated feasible configs over (throughput, memory/GPU).

        A config is on the frontier iff no other feasible config has both
        strictly higher throughput and no more memory. Returned sorted by
        descending throughput (so memory ascends along the list).
        """
        ranked = sorted(self.feasible, key=lambda e: (-e.throughput, e.memory_bytes))
        frontier: list[Evaluation] = []
        best_mem = None
        for ev in ranked:
            if best_mem is None or ev.memory_bytes < best_mem:
                frontier.append(ev)
                best_mem = ev.memory_bytes
        return frontier

    # ------------------------------------------------------------------
    def summary_table(self, top: int = 8) -> str:
        rows = [e.as_row() for e in self.feasible[:top]]
        if not rows:
            return "(no feasible configurations)"
        return render_table(
            rows,
            title=(
                f"Top configurations: {self.model} on {self.n_gpus} GPUs "
                f"(budget {format_bytes(self.budget_bytes)}/GPU, "
                f"fidelity={self.fidelity})"
            ),
        )

    def pareto_table(self) -> str:
        rows = [e.as_row() for e in self.pareto_frontier()]
        if not rows:
            return "(empty frontier)"
        return render_table(
            rows, title="Pareto frontier over (throughput, memory/GPU)"
        )

    def why(self) -> str:
        """Phase breakdown of each framework's winner (the Figure 8 view)."""
        frameworks = sorted({e.config.framework for e in self.feasible})
        rows = []
        for fw in frameworks:
            ev = self.best_for(fw)
            if ev is None:
                continue
            b = ev.breakdown
            rows.append({
                "framework": fw,
                "config": (
                    f"Gt={ev.config.g_tensor} Gi={ev.config.g_inter} "
                    f"Gd={ev.config.g_data} mbs={ev.config.mbs}"
                ),
                "compute": round(b.compute, 2),
                "p2p": round(b.p2p, 2),
                "bubble": round(b.bubble, 2),
                "collective": round(b.collective, 2),
                "other": round(b.other, 2),
                "total": round(b.total, 2),
                "mem/GPU": format_bytes(ev.memory_bytes),
            })
        if not rows:
            return "(no feasible configurations to explain)"
        table = render_table(
            rows, title="Why: batch-phase breakdown of each framework's best config (s)"
        )
        return table + "\n" + self._narrative()

    def _narrative(self) -> str:
        """The Section IV-B sentence, instantiated with this plan's numbers."""
        samo = self.best_for("axonn+samo")
        dense = self.best_for("axonn")
        if samo is None or dense is None:
            return ""
        lines = []
        if samo.config.g_inter < dense.config.g_inter:
            lines.append(
                f"SAMO's compressed model state fits a replica on "
                f"G_inter={samo.config.g_inter} GPUs where dense AxoNN needs "
                f"G_inter={dense.config.g_inter}; the shallower pipeline cuts "
                f"bubble {dense.breakdown.bubble:.2f}s -> "
                f"{samo.breakdown.bubble:.2f}s and p2p "
                f"{dense.breakdown.p2p:.2f}s -> {samo.breakdown.p2p:.2f}s."
            )
        speedup = samo.breakdown.speedup_over(dense.breakdown)
        lines.append(
            f"Estimated AxoNN+SAMO speedup over dense AxoNN: {speedup:.0f}%."
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def report(self, top: int = 8) -> str:
        """Full human-readable plan report (what the CLI prints)."""
        parts = []
        try:
            best = self.best
        except RuntimeError as err:
            stats = self.stats.as_dict() if self.stats else {}
            return f"{err}\n(search stats: {stats})"
        parts.append(
            f"Best config for {self.model} on {self.n_gpus} GPUs: "
            f"{best.config.describe()}\n"
            f"  estimated batch time {best.total_time:.2f} s, "
            f"throughput {best.throughput:.0f} samples/s, "
            f"memory {format_bytes(best.memory_bytes)}/GPU"
        )
        parts.append(self.summary_table(top=top))
        parts.append(self.pareto_table())
        parts.append(self.why())
        if self.stats is not None:
            s = self.stats.as_dict()
            parts.append(
                f"search: {s['candidates']} candidates, {s['evaluated']} evaluated, "
                f"{s['cache_hits']} cache hits, "
                f"{s['pruned_memory'] + s['pruned_branches']} pruned before costing, "
                f"{s['wall_seconds']:.3f}s"
            )
        return "\n\n".join(parts)
