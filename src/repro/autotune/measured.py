"""``measured`` fidelity: execute the schedule, then price the ledger.

Every other fidelity in the registry prices the paper's cost model
against itself. This one closes the loop with the *executable* stack:

1. **Execute.** :func:`execute_pipeline` runs the candidate's microbatch
   schedule — GPipe order, activation checkpointing, SAMO compression —
   on small synthetic tensors through
   :class:`~repro.parallel.pipeline_exec.PipelineStageTrainer` over the
   in-process :mod:`repro.comm.backend` thread ranks, and
   :func:`execute_grad_sync` runs the data-parallel
   :class:`~repro.parallel.pipeline_exec.BucketedGradSync`. Per-phase
   wall clock (forward, backward, p2p, collective) is timed under the
   :mod:`repro.obs` span machinery and kept on the profile.
2. **Replay.** The trainer's per-rank event ledger (``fwd``/``bwd``
   compute, tagged sends/recvs) is replayed deterministically by
   :func:`replay_events` with each op priced at the *model-scale* cost
   (``t_f``/``t_b`` from the device model, ``t_msg`` from the p2p
   model): what the execution contributes is the realized schedule
   structure — message counts, FIFO dependencies, warmup/drain idling,
   bucket sizes — not the host's wall clock.
3. **Project.** A scale mapping takes the small executed run onto the
   candidate's full GPU counts: phases linear in the microbatch count
   (compute, p2p) scale by ``m / m_exec``; the warmup/drain bubble
   scales by ``(g_inter - 1) / (g_exec - 1)`` (Eq. 7's structural
   factor); the data-parallel collective prices each *executed* bucket's
   fraction of the model-scale gradient payload. Tensor-parallel
   collectives are not executed and stay analytically priced.

Splitting wall clock (step 1) from pricing (steps 2-3) is what makes
``measured`` both a real execution *and* byte-deterministic per seed —
the drift report (:mod:`repro.autotune.drift`) depends on the latter,
while :func:`measure_comm_samples` +
:func:`repro.cluster.calibration.fit_calibration` consume the former.

Scenarios are rejected (an executed schedule has no degraded-machine
knob), mirroring the analytic estimator's contract.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..cluster.calibration import SUMMIT, CommSample, SummitCalibration
from ..cluster.collectives import allreduce_time
from ..comm.backend import run_parallel
from ..core.config import SAMOConfig
from ..models.spec import ModelSpec
from ..parallel.data_parallel import gradient_bytes_per_gpu
from ..parallel.perf_model import BatchBreakdown, ParallelConfig, microbatches_per_gpu
from ..parallel.pipeline_exec import (
    BucketedGradSync,
    PipelineStageTrainer,
    StageModule,
)
from ..parallel.scenarios import PipelineScenario
from .config import SPARSE_MODES, CandidateConfig
from .estimator import (
    AnalyticEstimator,
    Evaluation,
    candidate_memory_per_gpu,
    register_estimator,
)

__all__ = [
    "MeasuredEstimator",
    "PipelineProfile",
    "CollectiveProfile",
    "ReplayResult",
    "execute_pipeline",
    "execute_grad_sync",
    "replay_events",
    "measure_comm_samples",
    "MAX_EXEC_STAGES",
    "MAX_EXEC_MICROBATCHES",
    "MAX_EXEC_REPLICAS",
]

#: hidden width of the executable proxy blocks (one Linear+GELU per stage)
PROXY_HID = 16
#: samples per proxy microbatch
PROXY_MB_SAMPLES = 2
#: stage-local magnitude-pruning level of the SAMO proxy state
PROXY_SPARSITY = 0.5
#: executable caps: a candidate's ``G_inter``/``m``/``G_data`` beyond
#: these run at the cap and project back up through the scale mapping
MAX_EXEC_STAGES = 6
MAX_EXEC_MICROBATCHES = 4
MAX_EXEC_REPLICAS = 4


def _derived_seeds(seed: int, *key: int) -> tuple[int, int]:
    """Two stable 32-bit seeds for (init, data) from ``seed`` + a shape key.

    Goes through :class:`numpy.random.SeedSequence` so distinct profile
    shapes get decorrelated streams while the whole tree stays pinned by
    one user-facing seed (the ``repro.rng`` discipline).
    """
    state = np.random.SeedSequence([int(seed), *map(int, key)]).generate_state(2)
    return int(state[0]), int(state[1])


# ---------------------------------------------------------------------------
# execution profiles
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PipelineProfile:
    """What one executed pipeline run measured.

    ``events`` (per rank, program order) and the op counts are
    deterministic per seed; ``wall_seconds`` is the host's per-phase
    wall clock (informational — never part of deterministic pricing).
    """

    g_exec: int
    m_exec: int
    events: tuple
    fwd_counts: tuple
    bwd_counts: tuple
    wall_seconds: tuple  # ((phase, seconds), ...) summed across ranks


@dataclass(frozen=True)
class CollectiveProfile:
    """What one executed bucketed grad-sync measured."""

    dp_exec: int
    n_buckets: int
    bucket_bytes: tuple
    bytes_communicated: int
    wall_seconds: float


@dataclass(frozen=True)
class ReplayResult:
    """Deterministic virtual timeline of an event ledger."""

    makespan: float
    busy_compute: tuple
    busy_message: tuple

    @property
    def max_busy(self) -> float:
        return max(
            c + m for c, m in zip(self.busy_compute, self.busy_message)
        )

    @property
    def max_message_seconds(self) -> float:
        return max(self.busy_message)


def execute_pipeline(
    g_inter: int,
    m: int,
    *,
    samo: bool = False,
    checkpoint: bool = False,
    seed: int = 0,
) -> PipelineProfile:
    """Run one GPipe-ordered training step on ``g_inter`` thread ranks.

    Each rank owns one ``Linear+GELU`` proxy block (identical seeded
    init everywhere, each rank keeping its slice — the test-suite
    convention), trains through the SAMO or dense mixed-precision state,
    and records its event ledger. Returns the per-rank ledgers plus op
    counts and per-phase wall clock.
    """
    if g_inter < 1:
        raise ValueError(f"g_inter must be >= 1, got {g_inter}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    from ..tensor import Tensor, functional as F

    init_seed, data_seed = _derived_seeds(
        seed, 1, g_inter, m, int(samo), int(checkpoint)
    )
    data_rng = np.random.default_rng(data_seed)
    n = m * PROXY_MB_SAMPLES
    x = data_rng.normal(size=(n, PROXY_HID)).astype(np.float32)
    y = data_rng.integers(0, PROXY_HID, size=n)
    mbs = [x[i * PROXY_MB_SAMPLES : (i + 1) * PROXY_MB_SAMPLES] for i in range(m)]
    tgts = [y[i * PROXY_MB_SAMPLES : (i + 1) * PROXY_MB_SAMPLES] for i in range(m)]

    def worker(comm):
        rng = np.random.default_rng(init_seed)
        blocks = [_proxy_block(rng) for _ in range(comm.size)]
        tr = PipelineStageTrainer(
            comm,
            [blocks[comm.rank]],
            head=(lambda b: Tensor(b)) if comm.rank == 0 else None,
            loss_head=(
                (lambda out, t: F.cross_entropy(out, t))
                if comm.rank == comm.size - 1
                else None
            ),
            samo_sparsity=PROXY_SPARSITY if samo else None,
            config=SAMOConfig(),
            checkpoint_segments=1 if checkpoint else 0,
            record_events=True,
        )
        tr.train_step(mbs, tgts, schedule="gpipe")
        return tuple(tr.events), dict(tr.phase_seconds)

    results = run_parallel(g_inter, worker)
    events = tuple(ev for ev, _ in results)
    wall: dict[str, float] = {}
    for _, phases in results:
        for phase, sec in phases.items():
            wall[phase] = wall.get(phase, 0.0) + sec
    return PipelineProfile(
        g_exec=g_inter,
        m_exec=m,
        events=events,
        fwd_counts=tuple(sum(e[0] == "fwd" for e in ev) for ev in events),
        bwd_counts=tuple(sum(e[0] == "bwd" for e in ev) for ev in events),
        wall_seconds=tuple(sorted(wall.items())),
    )


def execute_grad_sync(
    g_data: int,
    *,
    samo: bool = False,
    n_buckets: int = 4,
    seed: int = 0,
) -> CollectiveProfile:
    """Run one bucketed data-parallel all-reduce on ``g_data`` ranks.

    Every rank holds the same seeded proxy module, produces a gradient
    from rank-local data, and reduces through
    :class:`~repro.parallel.pipeline_exec.BucketedGradSync`. The bucket
    byte split the greedy bucketer *actually produced* is the
    measurement the collective pricing projects onto the model-scale
    payload.
    """
    if g_data < 2:
        raise ValueError(f"g_data must be >= 2, got {g_data}")
    from ..tensor import Tensor, functional as F

    init_seed, data_seed = _derived_seeds(seed, 2, g_data, int(samo), n_buckets)

    def worker(comm):
        rng = np.random.default_rng(init_seed)
        module = StageModule([_proxy_block(rng) for _ in range(3)])
        if samo:
            from ..core import SAMOTrainingState
            from ..pruning.magnitude import magnitude_prune

            mask = magnitude_prune(module, PROXY_SPARSITY)
            state = SAMOTrainingState(module, mask, SAMOConfig())
        else:
            from ..train.mixed_precision import DenseMixedPrecisionState

            state = DenseMixedPrecisionState(module, SAMOConfig())
        rank_rng = np.random.default_rng([data_seed, comm.rank])
        xb = rank_rng.normal(size=(4, PROXY_HID)).astype(np.float32)
        yb = rank_rng.integers(0, PROXY_HID, size=4)
        loss = F.cross_entropy(module(Tensor(xb)), yb)
        loss.backward()
        state.compress_gradients()
        sync = BucketedGradSync(comm, n_buckets=n_buckets)
        sync(state)
        return tuple(sync.bucket_bytes), sync.bytes_communicated, sync.seconds

    results = run_parallel(g_data, worker)
    bucket_bytes, total, _ = results[0]
    return CollectiveProfile(
        dp_exec=g_data,
        n_buckets=n_buckets,
        bucket_bytes=bucket_bytes,
        bytes_communicated=total,
        wall_seconds=sum(r[2] for r in results),
    )


def _proxy_block(rng):
    from ..tensor import GELU, Linear, Sequential

    return Sequential(Linear(PROXY_HID, PROXY_HID, rng=rng), GELU())


# ---------------------------------------------------------------------------
# deterministic replay
# ---------------------------------------------------------------------------

def replay_events(
    events, *, t_f: float, t_b: float, t_msg: float
) -> ReplayResult:
    """Replay per-rank event ledgers on a virtual clock.

    ``events[r]`` is rank ``r``'s program-order ledger from
    :class:`~repro.parallel.pipeline_exec.PipelineStageTrainer`
    (``record_events=True``). Compute ops cost ``t_f``/``t_b``; each
    send and each recv costs ``t_msg`` of link busy time on its endpoint
    (Eq. 9's four-messages-per-microbatch accounting for an interior
    GPU); a recv additionally waits for the matching send's completion
    through a per-``(src, dst, tag)`` FIFO — exactly the backend's
    matching rule, so warmup/drain and message-wait idling surface in
    the makespan. Pure function of its arguments: replays are
    byte-deterministic however the real threads interleaved.
    """
    from collections import deque

    n = len(events)
    clock = [0.0] * n
    ptr = [0] * n
    busy_compute = [0.0] * n
    busy_message = [0.0] * n
    arrivals: dict[tuple, deque] = {}
    remaining = sum(len(ev) for ev in events)
    while remaining:
        progressed = False
        for r in range(n):
            while ptr[r] < len(events[r]):
                ev = events[r][ptr[r]]
                kind = ev[0]
                if kind == "fwd":
                    clock[r] += t_f
                    busy_compute[r] += t_f
                elif kind == "bwd":
                    clock[r] += t_b
                    busy_compute[r] += t_b
                elif kind == "send":
                    clock[r] += t_msg
                    busy_message[r] += t_msg
                    arrivals.setdefault((r, ev[1], ev[2]), deque()).append(clock[r])
                elif kind == "recv":
                    queue = arrivals.get((ev[1], r, ev[2]))
                    if not queue:
                        break  # blocked on a send not yet replayed
                    clock[r] = max(clock[r], queue.popleft()) + t_msg
                    busy_message[r] += t_msg
                else:
                    raise ValueError(f"unknown event kind {kind!r}")
                ptr[r] += 1
                remaining -= 1
                progressed = True
        if remaining and not progressed:
            raise RuntimeError(
                "event replay deadlocked: a recv has no matching send "
                "(truncated or corrupted ledger)"
            )
    return ReplayResult(
        makespan=max(clock) if clock else 0.0,
        busy_compute=tuple(busy_compute),
        busy_message=tuple(busy_message),
    )


# ---------------------------------------------------------------------------
# wall-clock communication sampling
# ---------------------------------------------------------------------------

def measure_comm_samples(
    sizes=(256 * 1024, 1024 * 1024, 4 * 1024 * 1024),
    *,
    repeats: int = 3,
    group_size: int = 2,
) -> list[CommSample]:
    """Wall-clock :class:`~repro.cluster.calibration.CommSample` runs.

    Times the in-process backend itself: p2p samples are half the
    best-of-``repeats`` ping-pong round trip between two thread ranks,
    collective samples the best-of-``repeats`` ring all-reduce across
    ``group_size`` ranks. Feeding these to
    :func:`repro.cluster.calibration.fit_calibration` yields the *host
    transport's* alpha/beta (memcpy-class, far from Summit's) — the
    measurement path; the deterministic drift report uses the seeded
    synthetic sampler instead.
    """
    samples: list[CommSample] = []
    for nbytes in sizes:
        payload = np.zeros(max(nbytes // 4, 1), dtype=np.float32)

        def pingpong(comm, payload=payload):
            best = float("inf")
            for _ in range(repeats + 1):  # first lap warms the mailboxes
                t0 = time.perf_counter()
                if comm.rank == 0:
                    comm.send(1, payload, tag=1)
                    comm.recv(1, tag=2)
                else:
                    comm.recv(0, tag=1)
                    comm.send(0, payload, tag=2)
                best = min(best, time.perf_counter() - t0)
            return best

        rtt = max(run_parallel(2, pingpong))
        samples.append(CommSample("p2p", payload.nbytes, max(rtt / 2, 1e-9)))

        def ring(comm, payload=payload):
            best = float("inf")
            for _ in range(repeats + 1):
                t0 = time.perf_counter()
                comm.allreduce(payload)
                best = min(best, time.perf_counter() - t0)
            return best

        coll = max(run_parallel(group_size, ring))
        samples.append(
            CommSample(
                "collective", payload.nbytes, max(coll, 1e-9), group_size=group_size
            )
        )
    return samples


# ---------------------------------------------------------------------------
# the estimator
# ---------------------------------------------------------------------------

class MeasuredEstimator(AnalyticEstimator):
    """Price candidates from executed schedules (see the module docstring).

    Inherits the analytic per-op primitives (``_stage_times``,
    ``_boundary_message_time``, memory model, tensor-parallel
    collectives) — the measured phases replace the *structural* closed
    forms (Eqs. 7/9 and the monolithic all-reduce) with the executed
    schedule's replay. ``seed`` pins the synthetic tensors and the SAMO
    masks; a non-default seed lands in the fidelity label so cache keys
    cannot alias runs of different seeds. Execution profiles are
    memoized per executable shape, so planning a whole search space
    triggers only a handful of real runs.
    """

    fidelity = "measured"
    supports_scenarios = False

    def __init__(
        self,
        spec: ModelSpec,
        cal: SummitCalibration = SUMMIT,
        scenario: PipelineScenario | str | None = None,
        seed: int = 0,
    ):
        super().__init__(spec, cal, scenario=scenario)
        self.seed = int(seed)
        if self.seed != 0:
            self.fidelity = f"measured[s{self.seed}]"
        self._profiles: dict = {}
        self._profiles_lock = threading.Lock()

    def with_scenario(self, scenario) -> "MeasuredEstimator":
        from ..parallel.scenarios import get_scenario

        if get_scenario(scenario) == self.scenario:
            return self
        # non-None scenarios are rejected by the base constructor
        return type(self)(self.spec, self.cal, scenario=scenario, seed=self.seed)

    # -- profile memoisation ------------------------------------------------
    def _pipeline_profile(
        self, g_exec: int, m_exec: int, samo: bool, checkpoint: bool
    ) -> PipelineProfile:
        key = ("pipe", g_exec, m_exec, samo, checkpoint)
        with self._profiles_lock:
            prof = self._profiles.get(key)
        if prof is None:
            prof = execute_pipeline(
                g_exec, m_exec, samo=samo, checkpoint=checkpoint, seed=self.seed
            )
            with self._profiles_lock:
                prof = self._profiles.setdefault(key, prof)
        return prof

    def _collective_profile(self, dp_exec: int, samo: bool) -> CollectiveProfile:
        key = ("coll", dp_exec, samo, self.n_buckets)
        with self._profiles_lock:
            prof = self._profiles.get(key)
        if prof is None:
            prof = execute_grad_sync(
                dp_exec, samo=samo, n_buckets=self.n_buckets, seed=self.seed
            )
            with self._profiles_lock:
                prof = self._profiles.setdefault(key, prof)
        return prof

    # -- pricing ------------------------------------------------------------
    def evaluate(self, config: CandidateConfig) -> Evaluation:
        if self.spec.family == "cnn":
            return self._evaluate_cnn(config)
        spec, cal = self.spec, self.cal
        m = microbatches_per_gpu(spec.batch_size, config.g_data, config.mbs)
        t_f, t_b = self._stage_times(config)
        samo_exec = config.mode.value == "samo"
        g = config.g_inter

        if g > 1:
            g_exec = min(g, MAX_EXEC_STAGES)
            m_exec = min(m, MAX_EXEC_MICROBATCHES)
            t_msg = self._boundary_message_time(config)
            if config.framework == "deepspeed-3d":
                t_msg *= cal.deepspeed_p2p_penalty
            prof = self._pipeline_profile(
                g_exec, m_exec, samo_exec, config.checkpoint_activations
            )
            replay = replay_events(prof.events, t_f=t_f, t_b=t_b, t_msg=t_msg)
            scale_m = m / m_exec
            scale_g = (g - 1) / (g_exec - 1)
            p2p = replay.max_message_seconds * scale_m
            bubble = max(replay.makespan - replay.max_busy, 0.0) * scale_g
            if config.framework == "deepspeed-3d":
                bubble *= cal.deepspeed_bubble_penalty
        else:
            g_exec, m_exec = 1, 1
            prof = self._pipeline_profile(
                1, 1, samo_exec, config.checkpoint_activations
            )
            scale_m = float(m)
            p2p = bubble = 0.0
        compute = (
            max(prof.fwd_counts) * t_f + max(prof.bwd_counts) * t_b
        ) * scale_m
        overhead = self._compress_overhead(config, m)

        coll = self._measured_collective(config)
        coll += self._tensor_parallel_collective(config, m)

        other = cal.other_fraction * compute
        mem = candidate_memory_per_gpu(spec, config, cal)
        pcfg = ParallelConfig(
            n_gpus=config.g_inter * config.g_data,
            g_inter=config.g_inter,
            g_data=config.g_data,
            mbs=config.mbs,
            microbatches=m,
        )
        breakdown = BatchBreakdown(
            framework=config.framework,
            model=spec.name,
            config=pcfg,
            compute=compute + overhead,
            p2p=p2p,
            bubble=bubble,
            collective=coll,
            other=other,
            memory_per_gpu=mem,
            notes={
                "t_f": t_f,
                "t_b": t_b,
                "overhead": overhead,
                "mode": config.mode,
                "g_tensor": config.g_tensor,
                "fidelity": self.fidelity,
                "g_exec": g_exec,
                "m_exec": m_exec,
                "seed": self.seed,
            },
        )
        return Evaluation(
            config=config,
            breakdown=breakdown,
            memory_bytes=mem,
            feasible=mem <= cal.gpu_memory_bytes,
            batch_size=spec.batch_size,
            fidelity=self.fidelity,
        )

    def _measured_collective(self, config: CandidateConfig) -> float:
        """Price the executed bucket split at the model-scale payload.

        Each bucket the executed :class:`BucketedGradSync` produced
        rings its byte *fraction* of the candidate's gradient payload
        across the candidate's full ``G_data`` — so bucket-count alpha
        overhead is measured, payload and group size stay model-scale.
        """
        if config.g_data <= 1:
            return 0.0
        sparse = config.mode in SPARSE_MODES
        payload = gradient_bytes_per_gpu(
            self.spec, config.model_parallel_degree, sparse, config.sparsity
        )
        prof = self._collective_profile(
            min(config.g_data, MAX_EXEC_REPLICAS),
            config.mode.value == "samo",
        )
        total = sum(prof.bucket_bytes)
        return sum(
            allreduce_time(
                max(round(b / total * payload), 1), config.g_data, self.cal
            )
            for b in prof.bucket_bytes
        )

    def _evaluate_cnn(self, config: CandidateConfig) -> Evaluation:
        """CNNs run pure data parallel: execute one local step plus the
        bucketed sync; compute units come from the conv efficiency curve
        (the analytic path's per-op primitive)."""
        spec, cal = self.spec, self.cal
        n_gpus = config.n_gpus
        if spec.batch_size % n_gpus:
            raise ValueError(f"batch {spec.batch_size} not divisible by {n_gpus} GPUs")
        samples_per_gpu = spec.batch_size // n_gpus
        hint = spec.efficiency_hint
        eff_max = hint.get("eff_max", cal.conv_efficiency)
        half = hint.get("half_batch", cal.conv_half_batch)
        eff = eff_max * samples_per_gpu / (samples_per_gpu + half)
        unit_f = spec.fwd_flops_per_sample() * samples_per_gpu / (
            self.device.peak_flops * eff
        )
        samo_exec = config.mode.value == "samo"
        prof = self._pipeline_profile(1, 1, samo_exec, False)
        compute = max(prof.fwd_counts) * unit_f + max(prof.bwd_counts) * 2.0 * unit_f
        backward_compute = max(prof.bwd_counts) * 2.0 * unit_f
        if n_gpus > 1:
            raw = self._measured_collective(config)
            hidden = min(raw * cal.dp_overlap_fraction, backward_compute)
            coll = max(raw - hidden, 0.0)
        else:
            coll = 0.0
        other = cal.other_fraction * compute
        mem = candidate_memory_per_gpu(spec, config, cal)
        pcfg = ParallelConfig(
            n_gpus=n_gpus, g_inter=1, g_data=n_gpus, mbs=config.mbs, microbatches=1
        )
        breakdown = BatchBreakdown(
            framework=config.framework,
            model=spec.name,
            config=pcfg,
            compute=compute,
            p2p=0.0,
            bubble=0.0,
            collective=coll,
            other=other,
            memory_per_gpu=mem,
            notes={"mode": config.mode, "fidelity": self.fidelity, "seed": self.seed},
        )
        return Evaluation(
            config=config,
            breakdown=breakdown,
            memory_bytes=mem,
            feasible=mem <= cal.gpu_memory_bytes,
            batch_size=spec.batch_size,
            fidelity=self.fidelity,
        )


@register_estimator("measured")
def _make_measured(
    spec, cal=SUMMIT, *, scenario=None, partition_mode="flops",
    overlap=False, placement="block", seed=0,
):
    if partition_mode != "flops":
        raise ValueError(
            "the measured fidelity executes the uniform-stage proxy; "
            "time-balanced partitioning needs fidelity='sim'"
        )
    if overlap or placement != "block":
        raise ValueError(
            "overlap and placement optimization need the event-driven "
            "engine; use fidelity='sim'"
        )
    return MeasuredEstimator(spec, cal, scenario=scenario, seed=seed)
