"""Memoisation of candidate evaluations.

Costing a candidate is pure in ``(model, calibration, fidelity,
config)``, so evaluations are memoised under that key. The cache is
shared process-wide by default (:data:`GLOBAL_CACHE`): a repeated
identical search — or a sweep over overlapping spaces, e.g. planning the
same model at several GPU counts — returns without re-evaluating any
config it has already costed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..cluster.calibration import SummitCalibration
from ..models.spec import ModelSpec
from .config import CandidateConfig
from .estimator import Evaluation

__all__ = [
    "EvaluationCache",
    "GLOBAL_CACHE",
    "spec_signature",
    "evaluation_cache_key",
    "make_cache_key",
]


def spec_signature(spec: ModelSpec) -> tuple:
    """Shape signature identifying a model spec in cache keys.

    Name alone would alias differently-built specs that share a name.
    """
    return (spec.name, spec.param_count, spec.batch_size, spec.num_layers)


def evaluation_cache_key(
    machine,
    spec: ModelSpec,
    fidelity: str,
    config: CandidateConfig,
    scenario=None,
    partition_mode: str = "flops",
) -> tuple:
    """Canonical cache key for one candidate evaluation.

    Derived from the frozen value objects rather than hand-assembled at
    each call site: ``machine`` is an :class:`repro.api.Machine` (its
    :meth:`canonical_key` — a plain ``SummitCalibration`` is accepted for
    the legacy entry points), the model contributes its
    :func:`spec_signature`, the config its canonical hash, and
    ``scenario`` the full frozen
    :class:`~repro.parallel.scenarios.ClusterScenario` (not just its
    name — two differently-parameterised scenarios sharing a name must
    not alias). ``partition_mode`` comes from the
    :class:`~repro.api.Job` and separates flops- from time-balanced
    costings.
    """
    machine_key = (
        machine.canonical_key() if hasattr(machine, "canonical_key") else machine
    )
    return (
        *spec_signature(spec),
        machine_key,
        fidelity,
        scenario,
        partition_mode,
        config.canonical_hash(),
    )


def make_cache_key(
    spec: ModelSpec,
    cal: SummitCalibration,
    fidelity: str,
    config: CandidateConfig,
    scenario=None,
) -> tuple:
    """Legacy key builder; prefer :func:`evaluation_cache_key`.

    Kept so callers holding a bare calibration produce keys compatible
    with the :class:`~repro.api.Machine`-derived ones (a ``Machine``'s
    canonical key *is* its resolved calibration).
    """
    return evaluation_cache_key(cal, spec, fidelity, config, scenario=scenario)


@dataclass
class EvaluationCache:
    """Thread-safe evaluation memo with hit/miss/dedup accounting.

    ``dedup`` counts :meth:`put` calls that overwrote an existing entry
    — concurrent planners racing on the same key each evaluated the
    config, so a rising dedup count flags wasted duplicate work.
    """

    _entries: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    hits: int = 0
    misses: int = 0
    dedup: int = 0

    def get(self, key: tuple) -> Evaluation | None:
        with self._lock:
            ev = self._entries.get(key)
            if ev is None:
                self.misses += 1
            else:
                self.hits += 1
            return ev

    def put(self, key: tuple, evaluation: Evaluation) -> None:
        with self._lock:
            if key in self._entries:
                self.dedup += 1
            self._entries[key] = evaluation

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.dedup = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        """One consistent snapshot of entry count and counters.

        Taken under the lock so a concurrent ``get``/``put`` can never
        produce a torn read (e.g. a hit counted but its entry not yet
        visible).
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "dedup": self.dedup,
            }


#: Process-wide default cache shared by all planners.
GLOBAL_CACHE = EvaluationCache()
