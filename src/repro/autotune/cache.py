"""Memoisation of candidate evaluations.

Costing a candidate is pure in ``(model, calibration, fidelity,
config)``, so evaluations are memoised under that key. The cache is
shared process-wide by default (:data:`GLOBAL_CACHE`): a repeated
identical search — or a sweep over overlapping spaces, e.g. planning the
same model at several GPU counts — returns without re-evaluating any
config it has already costed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..cluster.calibration import SummitCalibration
from ..models.spec import ModelSpec
from .config import CandidateConfig
from .estimator import Evaluation

__all__ = ["EvaluationCache", "GLOBAL_CACHE", "make_cache_key"]


def make_cache_key(
    spec: ModelSpec,
    cal: SummitCalibration,
    fidelity: str,
    config: CandidateConfig,
    scenario=None,
) -> tuple:
    """Canonical cache key for one evaluation.

    The model is identified by name and shape signature (name collisions
    across differently-built specs would otherwise alias), the machine by
    the frozen calibration dataclass, and the config by its canonical
    hash. ``scenario`` is the full frozen
    :class:`~repro.parallel.scenarios.PipelineScenario` (not just its
    name — two differently-parameterised scenarios sharing a name must
    not alias).
    """
    return (
        spec.name,
        spec.param_count,
        spec.batch_size,
        spec.num_layers,
        cal,
        fidelity,
        scenario,
        config.canonical_hash(),
    )


@dataclass
class EvaluationCache:
    """Thread-safe evaluation memo with hit/miss accounting."""

    _entries: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    hits: int = 0
    misses: int = 0

    def get(self, key: tuple) -> Evaluation | None:
        with self._lock:
            ev = self._entries.get(key)
            if ev is None:
                self.misses += 1
            else:
                self.hits += 1
            return ev

    def put(self, key: tuple, evaluation: Evaluation) -> None:
        with self._lock:
            self._entries[key] = evaluation

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def stats(self) -> dict:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}


#: Process-wide default cache shared by all planners.
GLOBAL_CACHE = EvaluationCache()
