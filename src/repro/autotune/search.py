"""The planner: the legacy search front end over the session facade.

:class:`Planner` keeps PR 1's constructor signature but is now a thin
wrapper over :class:`repro.api.Session` — the enumerate / memoise /
thread-pool-evaluate loop lives in
:meth:`repro.api.session.Session._evaluate_space`, with cache keys
derived from the frozen :class:`~repro.api.Machine` identity instead of
hand-assembled tuples. One :meth:`Planner.plan` call still:

1. enumerates the :class:`~repro.autotune.space.SearchSpace` (structural
   constraints and memory pruning happen there, before any costing);
2. partitions candidates into cache hits and misses against the shared
   :data:`~repro.autotune.cache.GLOBAL_CACHE`;
3. costs the misses in a thread-pool batch;
4. returns a :class:`~repro.autotune.result.PlanResult`.

.. deprecated::
    New code should ask a :class:`repro.api.Session` directly:
    ``Session(Machine(cal=cal)).plan(Job(model=..., n_gpus=...))`` —
    and ``Session.robust_plan`` for scenario distributions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..cluster.calibration import SUMMIT, SummitCalibration, with_memory_budget
from ..models.registry import get_spec
from ..models.spec import ModelSpec
from ..parallel.axonn import FRAMEWORKS
from .cache import GLOBAL_CACHE, EvaluationCache
from .estimator import make_estimator
from .result import PlanResult
from .space import SearchSpace

__all__ = ["PlannerStats", "Planner", "plan"]


@dataclass
class PlannerStats:
    """Accounting for one ``plan()`` call."""

    candidates: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    pruned_memory: int = 0
    pruned_branches: int = 0
    wall_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "candidates": self.candidates,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "pruned_memory": self.pruned_memory,
            "pruned_branches": self.pruned_branches,
            "wall_seconds": round(self.wall_seconds, 4),
        }


class Planner:
    """Search the hybrid-parallel configuration space for one workload.

    .. deprecated:: thin wrapper over :class:`repro.api.Session`; new
       code should call ``Session.plan(Job(...))`` directly.
    """

    def __init__(
        self,
        model: str | ModelSpec,
        n_gpus: int,
        *,
        fidelity: str = "analytic",
        scenario=None,  # preset name or PipelineScenario (requires fidelity='sim')
        frameworks: tuple[str, ...] = FRAMEWORKS,
        sparsities: tuple[float, ...] = (0.9,),
        microbatch_sizes: tuple[int, ...] = (1, 2, 4),
        explore_no_checkpoint: bool = True,
        budget_gb: float | None = None,
        cache: EvaluationCache | None = None,
        max_workers: int | None = None,
        cal: SummitCalibration = SUMMIT,
    ):
        self.spec = get_spec(model) if isinstance(model, str) else model
        self.n_gpus = n_gpus
        self.cal = with_memory_budget(budget_gb, cal) if budget_gb is not None else cal
        self.cache = GLOBAL_CACHE if cache is None else cache
        self.max_workers = max_workers or min(8, (os.cpu_count() or 2))
        self.space = SearchSpace(
            spec=self.spec,
            n_gpus=n_gpus,
            frameworks=frameworks,
            sparsities=sparsities,
            microbatch_sizes=microbatch_sizes,
            explore_no_checkpoint=explore_no_checkpoint,
            cal=self.cal,
        )
        self.estimator = make_estimator(fidelity, self.spec, self.cal, scenario=scenario)
        # the estimator's label carries the scenario (e.g. "sim@straggler")
        # so cache keys and reports distinguish degraded-machine plans
        self.fidelity = self.estimator.fidelity
        self.stats = PlannerStats()

    # ------------------------------------------------------------------
    def plan(self) -> PlanResult:
        """Run the search and return the full result object."""
        from ..api.machine import Machine  # deferred: the api wraps this module
        from ..api.session import Session

        session = Session(
            Machine(cal=self.cal), cache=self.cache, max_workers=self.max_workers
        )
        return session._evaluate_space(
            self.spec, self.space, self.estimator, self.n_gpus, self.stats
        )


def plan(model: str | ModelSpec, n_gpus: int, **kwargs) -> PlanResult:
    """One-shot convenience wrapper: ``Planner(...).plan()``.

    .. deprecated:: prefer ``repro.api.Session.plan``.
    """
    return Planner(model, n_gpus, **kwargs).plan()
