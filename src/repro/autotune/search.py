"""The planner: enumerate, prune, memoise, evaluate concurrently.

:class:`Planner` ties the subsystem together. One :meth:`Planner.plan`
call:

1. enumerates the :class:`~repro.autotune.space.SearchSpace` (structural
   constraints and memory pruning happen there, before any costing);
2. partitions candidates into cache hits and misses against the shared
   :data:`~repro.autotune.cache.GLOBAL_CACHE` (keyed on the canonical
   config hash plus model/machine/fidelity identity);
3. costs the misses in a :class:`concurrent.futures.ThreadPoolExecutor`
   batch — the estimators are pure numeric Python, so threads keep the
   shared cache simple while overlapping the event-driven ``sim``
   fidelity's slower evaluations;
4. returns a :class:`~repro.autotune.result.PlanResult` with the best
   config, the (throughput, memory) Pareto frontier, and the paper-style
   phase breakdown for the "why".
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass

from ..cluster.calibration import SUMMIT, SummitCalibration, with_memory_budget
from ..models.registry import get_spec
from ..models.spec import ModelSpec
from ..parallel.axonn import FRAMEWORKS
from .cache import GLOBAL_CACHE, EvaluationCache, make_cache_key
from .config import CandidateConfig
from .estimator import Evaluation, make_estimator
from .result import PlanResult
from .space import SearchSpace

__all__ = ["PlannerStats", "Planner", "plan"]


@dataclass
class PlannerStats:
    """Accounting for one ``plan()`` call."""

    candidates: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    pruned_memory: int = 0
    pruned_branches: int = 0
    wall_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "candidates": self.candidates,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "pruned_memory": self.pruned_memory,
            "pruned_branches": self.pruned_branches,
            "wall_seconds": round(self.wall_seconds, 4),
        }


class Planner:
    """Search the hybrid-parallel configuration space for one workload."""

    def __init__(
        self,
        model: str | ModelSpec,
        n_gpus: int,
        *,
        fidelity: str = "analytic",
        scenario=None,  # preset name or PipelineScenario (requires fidelity='sim')
        frameworks: tuple[str, ...] = FRAMEWORKS,
        sparsities: tuple[float, ...] = (0.9,),
        microbatch_sizes: tuple[int, ...] = (1, 2, 4),
        explore_no_checkpoint: bool = True,
        budget_gb: float | None = None,
        cache: EvaluationCache | None = None,
        max_workers: int | None = None,
        cal: SummitCalibration = SUMMIT,
    ):
        self.spec = get_spec(model) if isinstance(model, str) else model
        self.n_gpus = n_gpus
        self.cal = with_memory_budget(budget_gb, cal) if budget_gb is not None else cal
        self.cache = GLOBAL_CACHE if cache is None else cache
        self.max_workers = max_workers or min(8, (os.cpu_count() or 2))
        self.space = SearchSpace(
            spec=self.spec,
            n_gpus=n_gpus,
            frameworks=frameworks,
            sparsities=sparsities,
            microbatch_sizes=microbatch_sizes,
            explore_no_checkpoint=explore_no_checkpoint,
            cal=self.cal,
        )
        self.estimator = make_estimator(fidelity, self.spec, self.cal, scenario=scenario)
        # the estimator's label carries the scenario (e.g. "sim@straggler")
        # so cache keys and reports distinguish degraded-machine plans
        self.fidelity = self.estimator.fidelity
        self.stats = PlannerStats()

    # ------------------------------------------------------------------
    def plan(self) -> PlanResult:
        """Run the search and return the full result object."""
        t0 = time.perf_counter()
        candidates = list(self.space.candidates())
        self.stats.candidates = len(candidates)
        self.stats.pruned_memory = self.space.stats.pruned_memory
        self.stats.pruned_branches = self.space.stats.pruned_branches

        evaluations: dict[CandidateConfig, Evaluation] = {}
        misses: list[tuple[tuple, CandidateConfig]] = []
        scenario = getattr(self.estimator, "scenario", None)
        for config in candidates:
            key = make_cache_key(
                self.spec, self.cal, self.fidelity, config, scenario=scenario
            )
            cached = self.cache.get(key)
            if cached is not None:
                evaluations[config] = cached
                self.stats.cache_hits += 1
            else:
                misses.append((key, config))

        if misses:
            self.stats.evaluated = len(misses)
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers
            ) as pool:
                for (key, config), ev in zip(
                    misses, pool.map(self.estimator.evaluate, (c for _, c in misses))
                ):
                    self.cache.put(key, ev)
                    evaluations[config] = ev

        self.stats.wall_seconds = time.perf_counter() - t0
        return PlanResult(
            model=self.spec.name,
            n_gpus=self.n_gpus,
            fidelity=self.fidelity,
            budget_bytes=self.cal.gpu_memory_bytes,
            evaluations=list(evaluations.values()),
            stats=self.stats,
        )


def plan(model: str | ModelSpec, n_gpus: int, **kwargs) -> PlanResult:
    """One-shot convenience wrapper: ``Planner(...).plan()``."""
    return Planner(model, n_gpus, **kwargs).plan()
