"""Cost estimation layer of the autotuner.

Adapts the repo's existing analytical models — the SAMO memory model
(Eqs. 1-5), the hybrid-parallel performance model (Eqs. 6-11) and the
calibrated device/collective models — behind one ``evaluate(config) ->
Evaluation`` interface, generalised over the axes the batch simulators
hard-code:

* explicit ``G_inter`` (the simulators always take the partitioner's
  minimum) — the search decides the pipeline depth;
* a ``G_tensor`` axis (Megatron-style intra-layer parallelism inside a
  node, used by the DeepSpeed-3D baseline);
* an activation-checkpointing toggle (off: no recompute, 3x-forward
  compute, but the full intermediate-activation footprint stays
  resident).

On the subspace the simulators support (``G_tensor = 1``, checkpointing
on, the framework's default storage mode, the partitioner's ``G_inter``)
the analytic estimator reproduces :func:`repro.parallel.simulate_batch`
exactly — tested in ``tests/test_autotune.py``.

:class:`SimulatorEstimator` (``--fidelity sim``) additionally replaces
the closed-form bubble of Eq. 7 with the event-driven 1F1B schedule
simulation of Figure 3, capturing warmup/drain and message-wait effects
the closed form ignores. Its stage times come from the flops
partitioner's actual (non-uniform) stage loads and its per-link message
times from the cluster topology, priced for every data-parallel
replica's chain (the batch pays the slowest); an optional
:class:`~repro.parallel.scenarios.ClusterScenario` (straggler GPU, slow
link, contention, degraded allreduce rings) lets the planner rank
configs under degraded-machine conditions — the scenario's collective
knobs reach the data-parallel and tensor-parallel ring cost models too.
"""

from __future__ import annotations

import functools
from collections import Counter
from dataclasses import dataclass

from ..cluster.calibration import SUMMIT, SummitCalibration
from ..cluster.collectives import ring_allreduce_time
from ..cluster.device import ComputeKind, DeviceModel
from ..cluster.p2p import p2p_message_time, pipeline_message_bytes
from ..cluster.topology import Topology
from ..models.spec import ModelSpec
from ..parallel.data_parallel import collective_time
from ..parallel.partitioner import activation_bytes_per_gpu, model_state_bytes
from ..parallel.perf_model import (
    BatchBreakdown,
    ParallelConfig,
    bubble_time,
    microbatches_per_gpu,
    transmission_time,
)
from ..parallel.scenarios import (
    PLACEMENTS,
    OVERLAP_BUCKETS,
    PipelineScenario,
    get_scenario,
    overlap_exposed_collective,
    resolve_fidelity,
    simulate_hetero_pipeline,
    stage_payload_fractions,
)
from .config import SPARSE_MODES, CandidateConfig

__all__ = [
    "FULL_ACTIVATION_MULTIPLIER",
    "activation_footprint_bytes",
    "candidate_memory_per_gpu",
    "Evaluation",
    "CostEstimator",
    "AnalyticEstimator",
    "SimulatorEstimator",
    "available_fidelities",
    "register_estimator",
    "make_estimator",
]

#: Without checkpointing a layer retains its intermediate activations for
#: the backward pass, not just its input: attention scores, MLP hidden
#: states, normalisation buffers. We model that as a multiple of the
#: layer-output footprint — the standard transformer accounting puts the
#: resident intermediates at a small single-digit multiple of the block
#: output.
FULL_ACTIVATION_MULTIPLIER = 3.0


def activation_footprint_bytes(spec: ModelSpec, mbs: int, checkpoint: bool) -> int:
    """Per-GPU activation residency in half precision.

    Checkpointed: only each layer's input survives (the partitioner's
    accounting). Uncheckpointed: every layer's intermediates stay live;
    as with the checkpointed case, a stage holds ``layers/G_inter``
    layers times up to ``G_inter`` in-flight microbatches, so the product
    is independent of ``G_inter``.
    """
    if checkpoint:
        return activation_bytes_per_gpu(spec, mbs)
    out_elems = sum(l.activation_out_elems for l in spec.layers)
    return int(2 * FULL_ACTIVATION_MULTIPLIER * out_elems * mbs)


def candidate_memory_per_gpu(
    spec: ModelSpec,
    config: CandidateConfig,
    cal: SummitCalibration = SUMMIT,
) -> int:
    """Per-GPU bytes for a candidate: state shard + activations + overhead.

    Model state shards over the full model-parallel degree
    ``G_tensor * G_inter``; activations shard over ``G_tensor`` only
    (every tensor-parallel rank holds its slice of the same layers).
    """
    state = model_state_bytes(
        spec, config.mode, config.sparsity, g_data=config.g_data
    )
    acts = activation_footprint_bytes(spec, config.mbs, config.checkpoint_activations)
    return (
        state // config.model_parallel_degree
        + acts // config.g_tensor
        + cal.framework_overhead_bytes
    )


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Evaluation:
    """Costed candidate: the Figure-8 breakdown plus memory feasibility."""

    config: CandidateConfig
    breakdown: BatchBreakdown
    memory_bytes: int
    feasible: bool
    batch_size: int
    fidelity: str = "analytic"

    @property
    def total_time(self) -> float:
        return self.breakdown.total

    @property
    def throughput(self) -> float:
        """Samples per second for the global batch."""
        return self.batch_size / self.breakdown.total

    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "config": self.config.to_dict(),
            "breakdown": self.breakdown.to_dict(),
            "memory_bytes": self.memory_bytes,
            "feasible": self.feasible,
            "batch_size": self.batch_size,
            "fidelity": self.fidelity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Evaluation":
        return cls(
            config=CandidateConfig.from_dict(data["config"]),
            breakdown=BatchBreakdown.from_dict(data["breakdown"]),
            memory_bytes=data["memory_bytes"],
            feasible=data["feasible"],
            batch_size=data["batch_size"],
            fidelity=data["fidelity"],
        )

    def as_row(self) -> dict:
        b = self.breakdown
        return {
            "framework": self.config.framework,
            "mode": str(self.config.mode),
            "G_t": self.config.g_tensor,
            "G_i": self.config.g_inter,
            "G_d": self.config.g_data,
            "mbs": self.config.mbs,
            "ckpt": "y" if self.config.checkpoint_activations else "n",
            "p": f"{self.config.sparsity:g}",
            "time (s)": round(b.total, 3),
            "tput (smp/s)": round(self.throughput, 1),
            "mem/GPU (GB)": round(self.memory_bytes / 1e9, 2),
            "feasible": "y" if self.feasible else "n",
        }


# ---------------------------------------------------------------------------
# estimators
# ---------------------------------------------------------------------------

class CostEstimator:
    """Base interface: cost one :class:`CandidateConfig` for one model.

    The degraded-machine ``scenario`` is part of the constructor
    contract: subclasses that cannot price one
    (``supports_scenarios = False``) reject it right here, so a directly
    constructed estimator can never carry a scenario it would silently
    ignore — enforcement no longer lives only in the factory.
    """

    fidelity = "analytic"
    #: whether this estimator can price a degraded-machine scenario
    supports_scenarios = False
    #: overlap-aware collective pricing (only the event engine can)
    overlap = False
    #: replica placement the pipeline is priced at ("block" or "best")
    placement = "block"
    #: bucket count of the overlapped data-parallel all-reduce
    n_buckets = OVERLAP_BUCKETS

    def __init__(
        self,
        spec: ModelSpec,
        cal: SummitCalibration = SUMMIT,
        scenario: PipelineScenario | str | None = None,
    ):
        self.spec = spec
        self.cal = cal
        self.device = DeviceModel(cal)
        scenario = get_scenario(scenario)
        if scenario is not None and not self.supports_scenarios:
            # same shared contradiction check every entry point uses
            resolve_fidelity("analytic", scenario)
        #: degraded-machine scenario threaded into every phase the
        #: estimator prices (pipeline *and* collectives)
        self.scenario: PipelineScenario | None = scenario

    def evaluate(self, config: CandidateConfig) -> Evaluation:
        raise NotImplementedError

    #: whether :meth:`evaluate_batch` is vectorized (the base fallback
    #: just loops :meth:`evaluate`, so planners only reroute when True)
    supports_batch = False

    def with_scenario(self, scenario) -> "CostEstimator":
        """This estimator re-bound to ``scenario`` (self when unchanged).

        The batch protocol prices a config × scenario matrix; scalar
        estimators cover the scenario columns by cloning themselves per
        column. Subclasses with extra costing knobs override this to
        carry them across.
        """
        if get_scenario(scenario) == self.scenario:
            return self
        return type(self)(self.spec, self.cal, scenario=scenario)

    def evaluate_batch(self, configs, scenarios=None) -> "EvaluationBatch":
        """Cost a config grid × scenario set as one structure-of-arrays.

        ``scenarios=None`` prices the single column of the estimator's
        own scenario; otherwise each entry (a scenario, preset name, or
        None) becomes one column, overriding the constructor scenario.
        This base implementation is the scalar-loop fallback — cell
        ``(i, j)`` is exactly ``with_scenario(scenarios[j])
        .evaluate(configs[i])`` — so every registered fidelity answers
        the batch protocol; vectorized subclasses (``supports_batch =
        True``) replace the loop with array programs that must match it
        element-wise.
        """
        from .batch import EvaluationBatch  # deferred: batch builds on this module

        configs = tuple(configs)
        if scenarios is None:
            columns = (self.scenario,)
        else:
            columns = tuple(get_scenario(s) for s in scenarios)
        grid = []
        for sc in columns:
            est = self.with_scenario(sc)
            grid.append([est.evaluate(c) for c in configs])
        # grid is column-major (scenario, config); transpose to (i, j)
        rows = [[grid[j][i] for j in range(len(columns))] for i in range(len(configs))]
        return EvaluationBatch.from_evaluations(
            configs, columns, rows, fidelity=self.fidelity,
            batch_size=self.spec.batch_size,
        )

    # -- shared pieces ------------------------------------------------------
    def _compute_kind(self, config: CandidateConfig) -> str:
        if self.spec.family == "cnn":
            return ComputeKind.CONV
        if config.framework == "sputnik":
            return ComputeKind.SPARSE_SPUTNIK
        return ComputeKind.DENSE_GEMM

    @functools.cached_property
    def _max_boundary_elems(self) -> int:
        """Largest inter-layer boundary of the spec, computed once.

        The spec is fixed for the estimator's lifetime but this max used
        to be recomputed on every ``evaluate`` call — an O(layers) scan
        on the planner's hot path (see
        ``benchmarks/results/lru_cache_micro_note.txt``).
        """
        spec = self.spec
        return max(
            spec.layers[i].activation_out_elems for i in range(spec.num_layers - 1)
        )

    def _boundary_message_time(self, config: CandidateConfig) -> float:
        """Transfer seconds of one pipeline activation/gradient message.

        Sized by the largest inter-layer boundary (the conservative
        payload any stage cut might carry), as in the batch simulators.
        """
        msg_bytes = pipeline_message_bytes(config.mbs, self._max_boundary_elems)
        return p2p_message_time(msg_bytes, cal=self.cal)

    def _tensor_parallel_collective(
        self, config: CandidateConfig, microbatches: int
    ) -> float:
        """Megatron-style intra-layer all-reduces, intra-node.

        Two all-reduces of the block activation per microbatch in the
        forward and two in the backward, per transformer block, across
        the ``G_tensor`` group. ``G_tensor`` is capped at the node size,
        so the ring runs at NVLink-class bandwidth.
        """
        g = config.g_tensor
        if g <= 1:
            return 0.0
        # G_tensor is capped at the node size, so ranks 0..g-1 of a
        # g-GPU topology form an intra-node group: the ring runs at
        # NVLink-class bandwidth, and the scenario's collective knobs
        # (slow ring links, a stalling rank — but not the cross-node
        # one) degrade it through the shared ring cost model.
        topo = Topology(g, self.cal)
        ranks = list(range(g))
        # Transformer blocks share one activation shape, so the ring
        # model is priced once per distinct payload, not once per block
        # (this sits on the planner's hot path).
        payload_counts = Counter(
            2 * config.mbs * l.activation_out_elems
            for l in self.spec.layers
            if l.kind == "transformer_block"
        )
        total = sum(
            n_blocks
            * 4.0
            * ring_allreduce_time(
                nbytes, g, self.cal, topology=topo, ranks=ranks, scenario=self.scenario
            )
            for nbytes, n_blocks in payload_counts.items()
        )
        return total * microbatches / config.g_inter


class AnalyticEstimator(CostEstimator):
    """Closed-form Eqs. 6-11 generalised over the search axes."""

    fidelity = "analytic"

    def evaluate(self, config: CandidateConfig) -> Evaluation:
        spec = self.spec
        if spec.family == "cnn":
            return self._evaluate_cnn(config)
        cal = self.cal
        m = microbatches_per_gpu(spec.batch_size, config.g_data, config.mbs)
        pcfg = ParallelConfig(
            n_gpus=config.g_inter * config.g_data,
            g_inter=config.g_inter,
            g_data=config.g_data,
            mbs=config.mbs,
            microbatches=m,
        )

        # -- compute --------------------------------------------------------
        t_f, t_b = self._stage_times(config)
        compute = m * (t_f + t_b)
        overhead = self._compress_overhead(config, m)

        # -- p2p + bubble ---------------------------------------------------
        p2p, bubble, trace = self._pipeline_costs(config, m, t_f, t_b)

        # -- collectives ----------------------------------------------------
        coll = collective_time(
            spec,
            config.model_parallel_degree,
            config.g_data,
            sparse=config.mode in SPARSE_MODES,
            sparsity=config.sparsity,
            cal=cal,
            scenario=self.scenario,
        )
        overlap_notes = {}
        if self.overlap:
            # one gate shared with the breakdown engine: only frameworks
            # with an asynchronous message-driven schedule can hide the
            # all-reduce behind their drain
            from ..parallel.axonn import _framework_traits  # deferred: axonn wraps this module's results

            if trace is not None and _framework_traits(config.framework)["async_pipeline"]:
                # overlap-aware fidelity: the data-parallel all-reduce hides
                # behind the drain on the event timeline (the tensor-parallel
                # collectives below stay additive — they sit inside the
                # microbatch critical path, not after the flush); each
                # stage rings its actual parameter share of the payload
                fractions = stage_payload_fractions(
                    spec, config.g_inter,
                    getattr(self, "partition_mode", "flops"), self.scenario,
                )
                report = overlap_exposed_collective(
                    trace, coll, self.n_buckets, stage_fractions=fractions
                )
                overlap_notes = {
                    "overlap": True,
                    "collective_additive": report.additive,
                    "collective_hidden": report.hidden,
                }
                coll = report.exposed
            else:
                overlap_notes = {"overlap": False}
        coll += self._tensor_parallel_collective(config, m)

        other = cal.other_fraction * compute
        mem = candidate_memory_per_gpu(spec, config, cal)

        breakdown = BatchBreakdown(
            framework=config.framework,
            model=spec.name,
            config=pcfg,
            compute=compute + overhead,
            p2p=p2p,
            bubble=bubble,
            collective=coll,
            other=other,
            memory_per_gpu=mem,
            notes={
                "t_f": t_f,
                "t_b": t_b,
                "overhead": overhead,
                "mode": config.mode,
                "g_tensor": config.g_tensor,
                "fidelity": self.fidelity,
                **overlap_notes,
            },
        )
        return Evaluation(
            config=config,
            breakdown=breakdown,
            memory_bytes=mem,
            feasible=mem <= cal.gpu_memory_bytes,
            batch_size=spec.batch_size,
            fidelity=self.fidelity,
        )

    # -- helpers ------------------------------------------------------------
    def _stage_times(self, config: CandidateConfig) -> tuple[float, float]:
        """Per-microbatch per-stage forward/backward compute seconds."""
        fwd_flops = self.spec.fwd_flops_per_sample() * config.mbs
        t_f = self.device.time(fwd_flops, self._compute_kind(config)) / (
            config.model_parallel_degree
        )
        bwd_factor = 3.0 if config.checkpoint_activations else 2.0
        return t_f, bwd_factor * t_f

    def _compress_overhead(self, config: CandidateConfig, microbatches: int) -> float:
        """SAMO's backward gradient-compression gather (Section VI-C)."""
        if config.mode.value != "samo":
            return 0.0
        stage_params = self.spec.param_count / config.model_parallel_degree
        return self.cal.samo_compress_cost_per_param * stage_params * microbatches

    def _pipeline_costs(
        self, config: CandidateConfig, m: int, t_f: float, t_b: float
    ) -> tuple:
        """Returns ``(p2p, bubble, trace)``; the closed form has no
        schedule trace (``None``), so overlap can never apply to it."""
        if config.g_inter <= 1:
            return 0.0, 0.0, None
        cal = self.cal
        t_msg = self._boundary_message_time(config)
        p2p = transmission_time(
            self.spec.batch_size, config.g_data, config.mbs, t_msg, config.g_inter
        )
        bubble = bubble_time(config.g_inter, t_f * config.g_inter, t_b * config.g_inter)
        if config.framework == "deepspeed-3d":
            p2p *= cal.deepspeed_p2p_penalty
            bubble *= cal.deepspeed_bubble_penalty
        return p2p, bubble, None

    def _evaluate_cnn(self, config: CandidateConfig) -> Evaluation:
        """Pure data parallel (the paper's CNN regime, Figure 5)."""
        spec, cal = self.spec, self.cal
        n_gpus = config.n_gpus
        if spec.batch_size % n_gpus:
            raise ValueError(f"batch {spec.batch_size} not divisible by {n_gpus} GPUs")
        samples_per_gpu = spec.batch_size // n_gpus
        pcfg = ParallelConfig(
            n_gpus=n_gpus, g_inter=1, g_data=n_gpus, mbs=config.mbs, microbatches=1
        )
        hint = spec.efficiency_hint
        eff_max = hint.get("eff_max", cal.conv_efficiency)
        half = hint.get("half_batch", cal.conv_half_batch)
        eff = eff_max * samples_per_gpu / (samples_per_gpu + half)
        fwd = spec.fwd_flops_per_sample()
        compute = 3.0 * fwd * samples_per_gpu / (self.device.peak_flops * eff)
        backward_compute = compute * 2.0 / 3.0
        coll = collective_time(
            spec,
            1,
            n_gpus,
            sparse=config.mode in SPARSE_MODES,
            sparsity=config.sparsity,
            overlap_with_backward=cal.dp_overlap_fraction,
            backward_compute_time=backward_compute,
            cal=cal,
            scenario=self.scenario,
        )
        other = cal.other_fraction * compute
        mem = candidate_memory_per_gpu(spec, config, cal)
        breakdown = BatchBreakdown(
            framework=config.framework,
            model=spec.name,
            config=pcfg,
            compute=compute,
            p2p=0.0,
            bubble=0.0,
            collective=coll,
            other=other,
            memory_per_gpu=mem,
            notes={"mode": config.mode, "fidelity": self.fidelity},
        )
        return Evaluation(
            config=config,
            breakdown=breakdown,
            memory_bytes=mem,
            feasible=mem <= cal.gpu_memory_bytes,
            batch_size=spec.batch_size,
            fidelity=self.fidelity,
        )


class SimulatorEstimator(AnalyticEstimator):
    """Higher-fidelity pipeline costing via the event-driven 1F1B trace.

    Instead of Eq. 7's closed-form bubble plus a serialized message term,
    run the Figure 3 schedule simulation and report the schedule's time
    beyond the ideal uniform compute — ``makespan - m * (t_f + t_b)`` —
    as the exposed pipeline cost (the p2p phase is folded into it:
    message waits, straggler overhang, and warmup/drain all surface
    there, and the uniform free-message limit is exactly Eq. 7's
    bubble). Stage times follow the flops
    partitioner's actual stage loads and link times follow the topology
    (NVLink intra-node hops vs cross-node hops, per-cut payloads); an
    optional scenario degrades stages/links on top.

    ``overlap=True`` additionally replaces the additive data-parallel
    collective with its event-timeline exposure
    (:func:`~repro.parallel.scenarios.overlap_exposed_collective`), and
    ``placement="best"`` prices every candidate at the optimized replica
    placement (:mod:`repro.parallel.placement`) instead of the block
    layout; both knobs land in the fidelity label so cache keys and
    reports cannot alias the additive numbers.
    """

    fidelity = "sim"
    supports_scenarios = True

    def __init__(
        self,
        spec: ModelSpec,
        cal: SummitCalibration = SUMMIT,
        scenario: PipelineScenario | str | None = None,
        partition_mode: str = "flops",
        overlap: bool = False,
        placement: str = "block",
        n_buckets: int = OVERLAP_BUCKETS,
    ):
        super().__init__(spec, cal, scenario=scenario)
        if partition_mode not in ("flops", "time"):
            raise ValueError(
                f"unknown partition_mode {partition_mode!r}; choose 'flops' or 'time'"
            )
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; choose from {PLACEMENTS}"
            )
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        self.partition_mode = partition_mode
        self.overlap = bool(overlap)
        self.placement = placement
        self.n_buckets = n_buckets
        # the fidelity label carries every costing-relevant knob so cache
        # keys and reports distinguish degraded/rebalanced/overlapped plans
        if self.scenario is not None:
            self.fidelity = f"sim@{self.scenario.name}"
        if partition_mode != "flops":
            self.fidelity = f"{self.fidelity}+{partition_mode}-balanced"
        if self.overlap:
            self.fidelity = f"{self.fidelity}+overlap"
            if n_buckets != OVERLAP_BUCKETS:
                # a different bucket count prices a different exposure;
                # it must not alias the default's cache entries
                self.fidelity = f"{self.fidelity}[{n_buckets}]"
        if self.placement != "block":
            self.fidelity = f"{self.fidelity}+{self.placement}-placement"

    def with_scenario(self, scenario) -> "SimulatorEstimator":
        if get_scenario(scenario) == self.scenario:
            return self
        return type(self)(
            self.spec, self.cal, scenario=scenario,
            partition_mode=self.partition_mode, overlap=self.overlap,
            placement=self.placement, n_buckets=self.n_buckets,
        )

    def _pipeline_costs(
        self, config: CandidateConfig, m: int, t_f: float, t_b: float
    ) -> tuple:
        # A degraded machine hits single-stage configs too (data-parallel
        # sync waits for the slow replica) and overlap needs the schedule
        # trace even for one stage, so only the knob-free g_inter == 1
        # case short-circuits.
        if config.g_inter <= 1 and self.scenario is None and not self.overlap:
            return 0.0, 0.0, None
        blocking = config.framework == "deepspeed-3d"
        trace = simulate_hetero_pipeline(
            self.spec,
            g_inter=config.g_inter,
            m=m,
            mbs=config.mbs,
            t_f_model=t_f * config.g_inter,
            t_b_model=t_b * config.g_inter,
            n_gpus=config.n_gpus,
            g_tensor=config.g_tensor,
            cal=self.cal,
            scenario=self.scenario,
            blocking_sends=blocking,
            partition_mode=self.partition_mode,
            placement=self.placement,
        )
        exposed = max(trace.makespan - m * (t_f + t_b), 0.0)
        return 0.0, exposed, trace


# ---------------------------------------------------------------------------
# fidelity registry
# ---------------------------------------------------------------------------

#: fidelity name -> factory(spec, cal, *, scenario, partition_mode)
_ESTIMATOR_REGISTRY: dict = {}


def register_estimator(fidelity: str, factory=None, *, overwrite: bool = False):
    """Register a costing backend under a fidelity name.

    New fidelities plug in without editing any factory::

        @register_estimator("profiled")
        def _make(spec, cal, *, scenario=None, partition_mode="flops"):
            return ProfiledEstimator(spec, cal, scenario=scenario)

    The factory must hand ``scenario`` to an estimator that carries (or
    rejects) it — :func:`make_estimator` verifies this, so a backend can
    never silently price the pristine machine for a degraded request.

    Usable directly (``register_estimator("sim", factory)``) or as a
    decorator. Duplicate names raise unless ``overwrite=True`` — silent
    replacement of a fidelity would invalidate cache-key semantics.
    """

    def _register(f):
        if not overwrite and fidelity in _ESTIMATOR_REGISTRY:
            raise ValueError(
                f"fidelity {fidelity!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        _ESTIMATOR_REGISTRY[fidelity] = f
        return f

    return _register if factory is None else _register(factory)


def available_fidelities() -> tuple[str, ...]:
    """Registered fidelity names, sorted."""
    return tuple(sorted(_ESTIMATOR_REGISTRY))


def make_estimator(
    fidelity: str,
    spec: ModelSpec,
    cal: SummitCalibration = SUMMIT,
    scenario: PipelineScenario | str | None = None,
    partition_mode: str = "flops",
    overlap: bool = False,
    placement: str = "block",
    seed: int = 0,
) -> CostEstimator:
    """Instantiate the registered estimator for ``fidelity``.

    ``overlap``/``placement``/``seed`` are forwarded only when
    non-default, so registered factories that predate those knobs keep
    working; a factory that cannot honour them fails loudly (TypeError)
    instead of silently pricing the additive block layout (``seed``
    pins the measured fidelity's synthetic execution).
    """
    try:
        factory = _ESTIMATOR_REGISTRY[fidelity]
    except KeyError:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; "
            f"choose from: {', '.join(available_fidelities())}"
        ) from None
    extras = {}
    if overlap:
        extras["overlap"] = True
    if placement != "block":
        extras["placement"] = placement
    if seed != 0:
        extras["seed"] = seed
    estimator = factory(
        spec, cal, scenario=scenario, partition_mode=partition_mode, **extras
    )
    scenario = get_scenario(scenario)
    if scenario is not None and getattr(estimator, "scenario", None) != scenario:
        # a factory that swallows the scenario would silently price the
        # pristine machine (and alias its cache entries) — the exact bug
        # the constructor contract exists to prevent
        raise ValueError(
            f"fidelity {fidelity!r} ignored the requested scenario "
            f"{scenario.name!r}; its factory must pass scenario through "
            "to the estimator (or the estimator must reject it)"
        )
    return estimator


@register_estimator("analytic")
def _make_analytic(
    spec, cal=SUMMIT, *, scenario=None, partition_mode="flops",
    overlap=False, placement="block",
):
    if partition_mode != "flops":
        raise ValueError(
            "time-balanced partitioning needs the event-driven engine; "
            "use fidelity='sim'"
        )
    if overlap or placement != "block":
        raise ValueError(
            "overlap and placement optimization need the event-driven "
            "engine; use fidelity='sim'"
        )
    return AnalyticEstimator(spec, cal, scenario=scenario)


@register_estimator("sim")
def _make_sim(
    spec, cal=SUMMIT, *, scenario=None, partition_mode="flops",
    overlap=False, placement="block",
):
    return SimulatorEstimator(
        spec, cal, scenario=scenario, partition_mode=partition_mode,
        overlap=overlap, placement=placement,
    )
