"""``repro.autotune`` — analytical parallel-configuration planner.

The paper hand-picks one hybrid-parallel configuration per model and GPU
count; this subsystem *searches* the space instead, answering "what is
the best config for model X on N GPUs?" for any framework, sparsity, and
memory budget:

* :class:`SearchSpace` — enumerates valid ``(framework, G_tensor,
  G_inter, G_data, mbs, checkpointing, storage mode, sparsity)`` tuples
  under divisibility and memory constraints, pruning infeasible-memory
  branches before costing;
* :class:`AnalyticEstimator` / :class:`SimulatorEstimator` — the
  existing memory model (Eqs. 1-5), performance model (Eqs. 6-11) and
  event-driven pipeline simulator behind one ``evaluate`` interface;
* :class:`Planner` — memoised (canonical config hash), concurrent
  (thread-pool batch evaluation) search;
* :class:`PlanResult` — best config, the (throughput, memory/GPU)
  Pareto frontier, and a Figure 8-style "why" breakdown.

CLI: ``python -m repro plan --model gpt3-2.7b --gpus 512 --sparsity 0.9``.
"""

from .batch import (
    EvaluationBatch,
    VectorizedAnalyticEstimator,
    crosscheck_batch,
)
from .cache import (
    GLOBAL_CACHE,
    EvaluationCache,
    evaluation_cache_key,
    make_cache_key,
    spec_signature,
)
from .config import FRAMEWORK_MODES, SPARSE_MODES, CandidateConfig
from .estimator import (
    AnalyticEstimator,
    CostEstimator,
    Evaluation,
    SimulatorEstimator,
    activation_footprint_bytes,
    available_fidelities,
    candidate_memory_per_gpu,
    make_estimator,
    register_estimator,
)
from .drift import DRIFT_TOLERANCES, FIG_TEMPLATES, drift_report, render_drift_report
from .measured import (
    MeasuredEstimator,
    execute_grad_sync,
    execute_pipeline,
    measure_comm_samples,
    replay_events,
)
from .result import PlanResult
from .search import Planner, PlannerStats, plan
from .space import SearchSpace, SpaceStats

__all__ = [
    "CandidateConfig",
    "FRAMEWORK_MODES",
    "SPARSE_MODES",
    "SearchSpace",
    "SpaceStats",
    "CostEstimator",
    "AnalyticEstimator",
    "SimulatorEstimator",
    "MeasuredEstimator",
    "execute_pipeline",
    "execute_grad_sync",
    "replay_events",
    "measure_comm_samples",
    "drift_report",
    "render_drift_report",
    "DRIFT_TOLERANCES",
    "FIG_TEMPLATES",
    "VectorizedAnalyticEstimator",
    "EvaluationBatch",
    "crosscheck_batch",
    "make_estimator",
    "register_estimator",
    "available_fidelities",
    "Evaluation",
    "activation_footprint_bytes",
    "candidate_memory_per_gpu",
    "EvaluationCache",
    "GLOBAL_CACHE",
    "make_cache_key",
    "evaluation_cache_key",
    "spec_signature",
    "Planner",
    "PlannerStats",
    "plan",
    "PlanResult",
]
