"""Candidate hybrid-parallel configurations for the autotuner.

A :class:`CandidateConfig` is one point of the search space: which
framework runs the batch, how the ``G = G_tensor x G_inter x G_data``
decomposition splits the machine, the microbatch size, whether
activations are checkpointed, how model state is stored, and at what
sparsity. It is frozen and hashable so it can key the evaluation cache
directly, and :meth:`CandidateConfig.create` canonicalises redundant
axes (dense storage ignores sparsity) so equivalent configs always
produce the same cache entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from ..parallel.partitioner import StorageMode

__all__ = [
    "FRAMEWORK_MODES",
    "SPARSE_MODES",
    "CandidateConfig",
]

#: Storage modes each framework can legally run with. AxoNN variants are
#: defined by their storage strategy; DeepSpeed-3D may run its dense
#: baseline or shard optimizer state with ZeRO-1.
FRAMEWORK_MODES: dict[str, tuple[StorageMode, ...]] = {
    "axonn": (StorageMode.DENSE,),
    "axonn+samo": (StorageMode.SAMO,),
    "deepspeed-3d": (StorageMode.DENSE, StorageMode.ZERO1),
    "sputnik": (StorageMode.SPARSE_KERNEL,),
}

#: Modes whose footprint and gradient payload depend on sparsity.
SPARSE_MODES = frozenset({StorageMode.SAMO, StorageMode.SPARSE_KERNEL})


@dataclass(frozen=True)
class CandidateConfig:
    """One point of the autotuner's search space."""

    framework: str
    g_tensor: int
    g_inter: int
    g_data: int
    mbs: int
    checkpoint_activations: bool
    mode: StorageMode
    sparsity: float

    def __post_init__(self):
        if self.framework not in FRAMEWORK_MODES:
            raise ValueError(
                f"unknown framework {self.framework!r}; "
                f"known: {sorted(FRAMEWORK_MODES)}"
            )
        if self.mode not in FRAMEWORK_MODES[self.framework]:
            raise ValueError(
                f"storage mode {self.mode} is invalid for {self.framework!r}; "
                f"allowed: {[str(m) for m in FRAMEWORK_MODES[self.framework]]}"
            )
        for name in ("g_tensor", "g_inter", "g_data", "mbs"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if not 0.0 <= self.sparsity <= 1.0:
            raise ValueError(f"sparsity must be in [0,1], got {self.sparsity}")
        if self.mode not in SPARSE_MODES and self.sparsity != 0.0:
            raise ValueError(
                f"dense mode {self.mode} must use the canonical sparsity 0.0 "
                f"(got {self.sparsity}); build configs via CandidateConfig.create"
            )

    @classmethod
    def create(
        cls,
        framework: str,
        g_tensor: int = 1,
        g_inter: int = 1,
        g_data: int = 1,
        mbs: int = 1,
        checkpoint_activations: bool = True,
        mode: StorageMode | str | None = None,
        sparsity: float = 0.9,
    ) -> "CandidateConfig":
        """Build a canonical config.

        ``mode`` defaults to the framework's primary storage mode, and
        sparsity is zeroed for dense modes (it has no effect there), so
        two configs that behave identically hash identically.
        """
        if mode is None:
            mode = FRAMEWORK_MODES.get(framework, (StorageMode.DENSE,))[0]
        mode = StorageMode(mode)
        if mode not in SPARSE_MODES:
            sparsity = 0.0
        return cls(
            framework=framework,
            g_tensor=g_tensor,
            g_inter=g_inter,
            g_data=g_data,
            mbs=mbs,
            checkpoint_activations=checkpoint_activations,
            mode=mode,
            sparsity=float(sparsity),
        )

    # ------------------------------------------------------------------
    @property
    def n_gpus(self) -> int:
        return self.g_tensor * self.g_inter * self.g_data

    @property
    def model_parallel_degree(self) -> int:
        """GPUs holding one model replica: ``G_tensor * G_inter``."""
        return self.g_tensor * self.g_inter

    def canonical_key(self) -> tuple:
        """Hashable canonical identity (used in cache keys and tests)."""
        return (
            self.framework,
            self.g_tensor,
            self.g_inter,
            self.g_data,
            self.mbs,
            self.checkpoint_activations,
            self.mode.value,
            round(self.sparsity, 6),
        )

    def canonical_hash(self) -> str:
        """Short stable digest of :meth:`canonical_key`.

        Memoised on the instance (the config is frozen): cache keys
        recompute it for every candidate on every plan, and the sha256
        round-trip was a measurable slice of planner overhead.
        """
        cached = self.__dict__.get("_canonical_hash")
        if cached is None:
            payload = "|".join(str(x) for x in self.canonical_key())
            cached = hashlib.sha256(payload.encode()).hexdigest()[:16]
            object.__setattr__(self, "_canonical_hash", cached)
        return cached

    def with_(self, **changes) -> "CandidateConfig":
        """Functional update preserving validation."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "framework": self.framework,
            "g_tensor": self.g_tensor,
            "g_inter": self.g_inter,
            "g_data": self.g_data,
            "mbs": self.mbs,
            "checkpoint_activations": self.checkpoint_activations,
            "mode": self.mode.value,
            "sparsity": self.sparsity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateConfig":
        return cls(**{**data, "mode": StorageMode(data["mode"])})

    def describe(self) -> str:
        ckpt = "ckpt" if self.checkpoint_activations else "no-ckpt"
        sp = f", p={self.sparsity:g}" if self.mode in SPARSE_MODES else ""
        return (
            f"{self.framework}[{self.mode}] G_tensor={self.g_tensor} "
            f"G_inter={self.g_inter} G_data={self.g_data} "
            f"mbs={self.mbs} {ckpt}{sp}"
        )
