"""Model zoo: GPT-3 family, VGG-19, WideResnet-101 (paper Table I).

Paper-scale models exist as analytical :class:`ModelSpec` objects (exact
shapes, no allocation); tiny runnable variants share the same code path for
functional experiments.
"""

from .flops import (
    narayanan_transformer_flops,
    percent_of_peak,
    spec_batch_flops,
    transformer_activation_bytes,
)
from .gpt import GPT, GPT_CONFIGS, GPTConfig, gpt_spec
from .registry import TABLE_I, WorkloadEntry, get_spec, gpu_counts, table_rows
from .spec import LayerSpec, ModelSpec
from .vgg import VGG, build_vgg, vgg_spec
from .wide_resnet import WideResNet, build_wide_resnet, wide_resnet_spec

__all__ = [
    "LayerSpec",
    "ModelSpec",
    "GPT",
    "GPTConfig",
    "GPT_CONFIGS",
    "gpt_spec",
    "VGG",
    "vgg_spec",
    "build_vgg",
    "WideResNet",
    "wide_resnet_spec",
    "build_wide_resnet",
    "TABLE_I",
    "WorkloadEntry",
    "get_spec",
    "gpu_counts",
    "table_rows",
    "narayanan_transformer_flops",
    "percent_of_peak",
    "spec_batch_flops",
    "transformer_activation_bytes",
]
