"""Analytical model descriptions (:class:`LayerSpec` / :class:`ModelSpec`).

The paper's scaling study uses models of 1.3B–13B parameters, which cannot
(and need not) be materialised in memory to reason about parallel training:
memory footprints, flop counts, and message sizes are pure functions of the
layer shapes. A :class:`ModelSpec` carries exactly that information and is
consumed by the partitioner, the cluster simulator, and the memory model.

Runnable tiny variants of the same architectures (built by
``repro.models.gpt/vgg/wide_resnet``) are real :class:`repro.tensor.Module`
networks used for the functional experiments (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

__all__ = ["LayerSpec", "ModelSpec"]


@dataclass(frozen=True)
class LayerSpec:
    """Shape/compute description of one schedulable layer.

    Attributes
    ----------
    name:
        Stable dotted name matching the runnable module's parameter prefix.
    kind:
        One of ``embedding | transformer_block | final_norm | lm_head |
        conv | bn | linear | pool``. Used by flop and memory accounting.
    param_count:
        Total parameters in the layer.
    prunable_count:
        Parameters eligible for pruning (weight matrices / filters).
    fwd_flops_per_sample:
        Forward floating point operations for one sample (one full sequence
        for language models, one image for CNNs).
    activation_out_elems:
        Elements output per sample — the inter-layer (pipeline) message
        payload when this layer is the last of a stage.
    activation_checkpoint_elems:
        Elements that must be retained per sample when activation
        checkpointing is on (the layer *input* that gets re-materialised).
    """

    name: str
    kind: str
    param_count: int
    prunable_count: int
    fwd_flops_per_sample: float
    activation_out_elems: int
    activation_checkpoint_elems: int = 0

    @property
    def bwd_flops_per_sample(self) -> float:
        """Backward pass costs ~2x forward (two GEMMs per forward GEMM)."""
        return 2.0 * self.fwd_flops_per_sample


@dataclass
class ModelSpec:
    """An ordered list of layers plus workload-level metadata."""

    name: str
    layers: list[LayerSpec] = field(default_factory=list)
    #: samples per global batch used by the paper for this model (Table I)
    batch_size: int = 0
    #: sequence length (language models) or 1 (CNNs)
    seq_len: int = 1
    #: descriptive label for reports
    family: str = ""
    #: optional per-architecture efficiency overrides consumed by the
    #: device model (e.g. {"eff_max": 0.019, "half_batch": 2.0} for CNNs
    #: whose achieved conv throughput differs from the default)
    efficiency_hint: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Layer sums are cached: nothing mutates ``layers`` after
    # construction, and the memory/gradient models read these once per
    # candidate, which made the O(layers) re-sum the planner's hottest
    # line.
    @cached_property
    def param_count(self) -> int:
        """Total parameters (``phi`` in the paper's Eq. 1-5)."""
        return sum(l.param_count for l in self.layers)

    @cached_property
    def prunable_count(self) -> int:
        """Parameters the pruning algorithm may zero."""
        return sum(l.prunable_count for l in self.layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def fwd_flops_per_sample(self) -> float:
        """Forward flops for a single sample through every layer."""
        return sum(l.fwd_flops_per_sample for l in self.layers)

    def total_flops_per_batch(self, with_checkpoint_recompute: bool = True) -> float:
        """Fwd+bwd (+recompute) flops for one global batch.

        With activation checkpointing the forward is recomputed during the
        backward pass, giving the familiar 4x-forward total used by
        Narayanan et al.'s throughput accounting.
        """
        factor = 4.0 if with_checkpoint_recompute else 3.0
        return factor * self.fwd_flops_per_sample() * self.batch_size

    def contiguous_slice(self, start: int, stop: int) -> "ModelSpec":
        """Sub-spec for layers ``[start, stop)`` (one pipeline stage)."""
        sub = ModelSpec(
            name=f"{self.name}[{start}:{stop}]",
            layers=self.layers[start:stop],
            batch_size=self.batch_size,
            seq_len=self.seq_len,
            family=self.family,
        )
        return sub

    def stage_boundary_message_elems(self, stage_end: int) -> int:
        """Per-sample activation elements crossing the boundary after layer
        index ``stage_end - 1`` (the pipeline p2p payload)."""
        if stage_end <= 0 or stage_end > len(self.layers):
            raise IndexError(f"stage_end {stage_end} out of range")
        return self.layers[stage_end - 1].activation_out_elems

    def summary(self) -> str:
        """One-line human description."""
        return (
            f"{self.name}: {self.param_count/1e6:.2f}M params "
            f"({self.prunable_count/1e6:.2f}M prunable), "
            f"{self.num_layers} layers, batch={self.batch_size}"
        )
