"""Floating-point operation accounting.

Implements Narayanan et al.'s transformer iteration-flops formula — the one
the paper uses for its "percentage of peak half-precision throughput"
numbers (Table II) — plus generic spec-based accounting for CNNs.
"""

from __future__ import annotations

from .gpt import GPTConfig
from .spec import ModelSpec

__all__ = [
    "narayanan_transformer_flops",
    "percent_of_peak",
    "spec_batch_flops",
    "transformer_activation_bytes",
]


def narayanan_transformer_flops(
    batch_size: int,
    seq_len: int,
    n_layers: int,
    d_model: int,
    vocab_size: int,
) -> float:
    """Total flops of one training iteration of a GPT-style transformer.

    Narayanan et al. (SC'21), Eq. used by the paper's Section V-C:

    ``F = 96 * B * s * l * h^2 * (1 + s/(6h) + V/(16*l*h))``

    This counts forward + backward + activation-recompute (the 4x-forward
    factor) for all ``l`` transformer layers plus the vocabulary projection.
    """
    b, s, l, h, v = batch_size, seq_len, n_layers, d_model, vocab_size
    return 96.0 * b * s * l * h * h * (1.0 + s / (6.0 * h) + v / (16.0 * l * h))


def narayanan_flops_for_config(config: GPTConfig) -> float:
    """Convenience wrapper taking a :class:`GPTConfig`."""
    return narayanan_transformer_flops(
        config.batch_size, config.seq_len, config.n_layers, config.d_model, config.vocab_size
    )


def percent_of_peak(
    total_flops: float,
    batch_time_s: float,
    n_gpus: int,
    peak_flops_per_gpu: float = 125e12,
) -> float:
    """Percentage of aggregate peak throughput achieved by a batch.

    Matches the paper's metric: divide achieved flop/s by Summit's
    125 Tflop/s fp16 peak per V100 times the GPU count.
    """
    if batch_time_s <= 0:
        raise ValueError("batch_time_s must be positive")
    achieved = total_flops / batch_time_s
    return 100.0 * achieved / (peak_flops_per_gpu * n_gpus)


def spec_batch_flops(spec: ModelSpec, with_checkpoint_recompute: bool = True) -> float:
    """Iteration flops from a :class:`ModelSpec` (fwd+bwd(+recompute))."""
    return spec.total_flops_per_batch(with_checkpoint_recompute=with_checkpoint_recompute)


def transformer_activation_bytes(
    seq_len: int,
    d_model: int,
    n_heads: int,
    microbatch: int = 1,
    checkpointed: bool = False,
) -> int:
    """Activation bytes one transformer layer keeps alive for its backward.

    Korthikanti et al. ("Reducing Activation Recomputation in Large
    Transformer Models", Eq. 2): without checkpointing a standard
    attention+MLP block stores ``s·b·h·34 + 5·a·s²·b`` bytes in mixed
    precision (QKV, attention scores/probabilities, the 4h MLP
    activations, dropout masks, norms). With full activation
    checkpointing only the 2-byte fp16 layer *input* (``2·s·b·h``) is
    retained and everything else is recomputed.
    """
    s, b, h, a = seq_len, microbatch, d_model, n_heads
    if checkpointed:
        return 2 * s * b * h
    return 34 * s * b * h + 5 * a * s * s * b
