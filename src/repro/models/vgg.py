"""VGG networks (Simonyan & Zisserman, 2015).

The paper's CNN study uses VGG-19 (143.67M parameters, Table I) under pure
data parallelism. :func:`vgg_spec` reproduces the exact torchvision VGG-19
shapes for ImageNet (224x224); :class:`VGG` is a runnable variant that can
also be built at CIFAR scale (32x32) for functional pruning/training tests.
"""

from __future__ import annotations

import numpy as np

from ..tensor import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Tensor,
)
from .spec import LayerSpec, ModelSpec

__all__ = ["VGG", "vgg_spec", "VGG_CFGS", "build_vgg"]

#: Channel plans; "M" is a 2x2 max-pool. "E" is VGG-19.
VGG_CFGS: dict[str, list] = {
    "A": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "E": [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
          512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
    # Tiny plan for 32x32 functional tests.
    "tiny": [16, "M", 32, "M", 64, "M"],
}


def vgg_spec(
    cfg: str = "E",
    image_size: int = 224,
    num_classes: int = 1000,
    batch_size: int = 128,
    classifier_width: int = 4096,
    name: str | None = None,
) -> ModelSpec:
    """Analytical spec of a VGG network.

    Conv flops per sample are ``2 * Cin * k^2 * Cout * Hout * Wout`` with
    k=3, stride 1, pad 1 (so Hout=H). Max-pools halve the spatial dims.
    """
    plan = VGG_CFGS[cfg]
    layers: list[LayerSpec] = []
    c_in, hw = 3, image_size
    conv_idx = 0
    for item in plan:
        if item == "M":
            hw //= 2
            layers.append(
                LayerSpec(
                    name=f"features.pool{conv_idx}",
                    kind="pool",
                    param_count=0,
                    prunable_count=0,
                    fwd_flops_per_sample=float(c_in * hw * hw * 4),
                    activation_out_elems=c_in * hw * hw,
                    activation_checkpoint_elems=c_in * hw * hw,
                )
            )
            continue
        c_out = int(item)
        w = c_out * c_in * 9
        b = c_out
        flops = 2.0 * c_in * 9 * c_out * hw * hw
        layers.append(
            LayerSpec(
                name=f"features.conv{conv_idx}",
                kind="conv",
                param_count=w + b,
                prunable_count=w,
                fwd_flops_per_sample=flops,
                activation_out_elems=c_out * hw * hw,
                activation_checkpoint_elems=c_in * hw * hw,
            )
        )
        conv_idx += 1
        c_in = c_out

    flat = c_in * hw * hw
    widths = [classifier_width, classifier_width, num_classes]
    in_f = flat
    for i, out_f in enumerate(widths):
        layers.append(
            LayerSpec(
                name=f"classifier.{i}",
                kind="linear",
                param_count=in_f * out_f + out_f,
                prunable_count=in_f * out_f,
                fwd_flops_per_sample=2.0 * in_f * out_f,
                activation_out_elems=out_f,
                activation_checkpoint_elems=in_f,
            )
        )
        in_f = out_f
    label = name or ("vgg19" if cfg == "E" else f"vgg-{cfg}")
    # Conv-efficiency hint fitted to Fig. 5's absolute VGG-19 batch times on
    # Summit (large contiguous convs: efficiency ramps quickly with batch).
    hint = {"eff_max": 0.019, "half_batch": 2.0}
    return ModelSpec(
        name=label, layers=layers, batch_size=batch_size, seq_len=1,
        family="cnn", efficiency_hint=hint,
    )


class VGG(Module):
    """Runnable VGG classifier (NCHW input)."""

    def __init__(
        self,
        cfg: str = "tiny",
        image_size: int = 32,
        num_classes: int = 10,
        classifier_width: int = 128,
        dropout_p: float = 0.0,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.cfg_name = cfg
        plan = VGG_CFGS[cfg]
        feats: list[Module] = []
        c_in, hw = 3, image_size
        for item in plan:
            if item == "M":
                feats.append(MaxPool2d(2))
                hw //= 2
            else:
                feats.append(Conv2d(c_in, int(item), 3, padding=1, rng=rng))
                feats.append(ReLU())
                c_in = int(item)
        self.features = Sequential(*feats)
        self.flatten = Flatten()
        flat = c_in * hw * hw
        self.classifier = Sequential(
            Linear(flat, classifier_width, rng=rng),
            ReLU(),
            Dropout(dropout_p, rng=rng),
            Linear(classifier_width, classifier_width, rng=rng),
            ReLU(),
            Dropout(dropout_p, rng=rng),
            Linear(classifier_width, num_classes, rng=rng),
        )
        self._spec_args = (cfg, image_size, num_classes, classifier_width)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.flatten(self.features(x)))

    def spec(self) -> ModelSpec:
        cfg, image_size, num_classes, cw = self._spec_args
        return vgg_spec(cfg, image_size, num_classes, classifier_width=cw, name=f"vgg-{cfg}-runnable")


def build_vgg(variant: str = "vgg19", seed: int = 0) -> VGG:
    """Factory for common runnable variants.

    ``vgg19`` builds the full ImageNet network (143M params — large!);
    ``vgg-tiny`` builds the 32x32 test network.
    """
    if variant == "vgg19":
        return VGG(cfg="E", image_size=224, num_classes=1000, classifier_width=4096, seed=seed)
    if variant in ("vgg-tiny", "tiny"):
        return VGG(cfg="tiny", image_size=32, num_classes=10, classifier_width=128, seed=seed)
    raise KeyError(f"unknown VGG variant {variant!r}")
