"""Model registry reproducing the paper's Table I.

Each entry maps a model name to its analytical spec builder, the global
batch size, and the strong-scaling GPU range (chosen so batch/GPU ratio
spans 4 down to 1, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .gpt import GPT_CONFIGS, gpt_spec
from .spec import ModelSpec
from .vgg import vgg_spec
from .wide_resnet import wide_resnet_spec

__all__ = ["WorkloadEntry", "TABLE_I", "get_spec", "gpu_counts", "table_rows"]


@dataclass(frozen=True)
class WorkloadEntry:
    """One row of the paper's Table I."""

    name: str
    spec_builder: Callable[[], ModelSpec]
    batch_size: int
    min_gpus: int
    max_gpus: int
    optimizer: str  # "sgd" for CNNs, "adamw" for GPTs — as in Section V-A
    family: str

    def spec(self) -> ModelSpec:
        return self.spec_builder()


TABLE_I: dict[str, WorkloadEntry] = {
    "wideresnet-101": WorkloadEntry(
        name="wideresnet-101",
        spec_builder=lambda: wide_resnet_spec(batch_size=128),
        batch_size=128,
        min_gpus=16,
        max_gpus=128,
        optimizer="sgd",
        family="cnn",
    ),
    "vgg19": WorkloadEntry(
        name="vgg19",
        spec_builder=lambda: vgg_spec("E", batch_size=128),
        batch_size=128,
        min_gpus=16,
        max_gpus=128,
        optimizer="sgd",
        family="cnn",
    ),
    "gpt3-xl": WorkloadEntry(
        name="gpt3-xl",
        spec_builder=lambda: gpt_spec("gpt3-xl"),
        batch_size=512,
        min_gpus=64,
        max_gpus=512,
        optimizer="adamw",
        family="gpt",
    ),
    "gpt3-2.7b": WorkloadEntry(
        name="gpt3-2.7b",
        spec_builder=lambda: gpt_spec("gpt3-2.7b"),
        batch_size=512,
        min_gpus=64,
        max_gpus=512,
        optimizer="adamw",
        family="gpt",
    ),
    "gpt3-6.7b": WorkloadEntry(
        name="gpt3-6.7b",
        spec_builder=lambda: gpt_spec("gpt3-6.7b"),
        batch_size=1024,
        min_gpus=128,
        max_gpus=1024,
        optimizer="adamw",
        family="gpt",
    ),
    "gpt3-13b": WorkloadEntry(
        name="gpt3-13b",
        spec_builder=lambda: gpt_spec("gpt3-13b"),
        batch_size=2048,
        min_gpus=256,
        max_gpus=2048,
        optimizer="adamw",
        family="gpt",
    ),
}


def get_spec(name: str) -> ModelSpec:
    """Spec for a Table I model (or a tiny GPT config by name)."""
    if name in TABLE_I:
        return TABLE_I[name].spec()
    if name in GPT_CONFIGS:
        return gpt_spec(name)
    raise KeyError(f"unknown model {name!r}; known: {sorted(TABLE_I) + sorted(GPT_CONFIGS)}")


def gpu_counts(entry: WorkloadEntry) -> list[int]:
    """Power-of-two GPU counts from min to max, as plotted in Figs. 5-7."""
    counts = []
    g = entry.min_gpus
    while g <= entry.max_gpus:
        counts.append(g)
        g *= 2
    return counts


def table_rows() -> list[dict]:
    """Rows of Table I for the reporting harness."""
    rows = []
    for entry in TABLE_I.values():
        spec = entry.spec()
        rows.append(
            {
                "Neural Network": entry.name,
                "# Parameters": spec.param_count,
                "Batch Size": entry.batch_size,
                "No. of GPUs": f"{entry.min_gpus}-{entry.max_gpus}",
                "Optimizer": entry.optimizer,
            }
        )
    return rows
