"""Wide residual networks (Zagoruyko & Komodakis, 2016).

Table I uses WideResnet-101 — torchvision's ``wide_resnet101_2``: a
ResNet-101 whose bottleneck inner width is doubled (126.89M parameters).
:func:`wide_resnet_spec` reproduces those exact shapes analytically;
:class:`WideResNet` is a runnable bottleneck ResNet that can be built at
CIFAR scale for functional tests.
"""

from __future__ import annotations

import numpy as np

from ..tensor import (
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    ReLU,
    Tensor,
)
from .spec import LayerSpec, ModelSpec

__all__ = ["WideResNet", "wide_resnet_spec", "build_wide_resnet"]

#: block counts of ResNet-101
RESNET101_BLOCKS = (3, 4, 23, 3)
EXPANSION = 4


def _conv_spec(name, c_in, c_out, k, stride, hw_out, *, bn: bool = True) -> list[LayerSpec]:
    """Conv (+BatchNorm) layer specs; flops = 2*Cin*k^2*Cout*H*W."""
    w = c_out * c_in * k * k
    out: list[LayerSpec] = [
        LayerSpec(
            name=name,
            kind="conv",
            param_count=w,  # torchvision convs have bias=False
            prunable_count=w,
            fwd_flops_per_sample=2.0 * c_in * k * k * c_out * hw_out * hw_out,
            activation_out_elems=c_out * hw_out * hw_out,
            activation_checkpoint_elems=c_in * (hw_out * stride) * (hw_out * stride),
        )
    ]
    if bn:
        out.append(
            LayerSpec(
                name=name + ".bn",
                kind="bn",
                param_count=2 * c_out,
                prunable_count=0,
                fwd_flops_per_sample=float(4 * c_out * hw_out * hw_out),
                activation_out_elems=c_out * hw_out * hw_out,
                activation_checkpoint_elems=c_out * hw_out * hw_out,
            )
        )
    return out


def wide_resnet_spec(
    blocks: tuple[int, ...] = RESNET101_BLOCKS,
    width_factor: int = 2,
    image_size: int = 224,
    num_classes: int = 1000,
    batch_size: int = 128,
    name: str = "wideresnet-101",
) -> ModelSpec:
    """Analytical spec of a bottleneck (Wide)ResNet.

    Per torchvision: stage planes are 64/128/256/512, bottleneck inner width
    is ``planes * width_factor``, block output is ``planes * 4``. Stage 1
    runs at stride 1 after the stem's conv+pool; stages 2-4 downsample 2x.
    """
    layers: list[LayerSpec] = []
    hw = image_size // 2  # 7x7 stride-2 stem
    layers += _conv_spec("stem.conv", 3, 64, 7, 2, hw)
    hw //= 2  # 3x3 stride-2 max pool
    layers.append(
        LayerSpec(
            name="stem.pool",
            kind="pool",
            param_count=0,
            prunable_count=0,
            fwd_flops_per_sample=float(64 * hw * hw * 9),
            activation_out_elems=64 * hw * hw,
            activation_checkpoint_elems=64 * hw * hw,
        )
    )
    c_in = 64
    planes_list = (64, 128, 256, 512)
    for stage, (n_blocks, planes) in enumerate(zip(blocks, planes_list), start=1):
        width = planes * width_factor
        c_out = planes * EXPANSION
        for b in range(n_blocks):
            stride = 2 if (stage > 1 and b == 0) else 1
            if stride == 2:
                hw //= 2
            prefix = f"layer{stage}.{b}"
            block_layers: list[LayerSpec] = []
            block_layers += _conv_spec(f"{prefix}.conv1", c_in, width, 1, 1, hw if stride == 1 else hw * 1)
            block_layers += _conv_spec(f"{prefix}.conv2", width, width, 3, stride, hw)
            block_layers += _conv_spec(f"{prefix}.conv3", width, c_out, 1, 1, hw)
            if b == 0:
                block_layers += _conv_spec(f"{prefix}.downsample", c_in, c_out, 1, stride, hw)
            # Collapse the block into one schedulable LayerSpec: pipeline
            # partitioning never splits a residual block.
            layers.append(
                LayerSpec(
                    name=prefix,
                    kind="conv",
                    param_count=sum(l.param_count for l in block_layers),
                    prunable_count=sum(l.prunable_count for l in block_layers),
                    fwd_flops_per_sample=sum(l.fwd_flops_per_sample for l in block_layers),
                    activation_out_elems=c_out * hw * hw,
                    activation_checkpoint_elems=c_in * (hw * stride) * (hw * stride),
                )
            )
            c_in = c_out
    layers.append(
        LayerSpec(
            name="fc",
            kind="linear",
            param_count=c_in * num_classes + num_classes,
            prunable_count=c_in * num_classes,
            fwd_flops_per_sample=2.0 * c_in * num_classes,
            activation_out_elems=num_classes,
            activation_checkpoint_elems=c_in,
        )
    )
    # Conv-efficiency hint fitted to Fig. 5: WideResnet-101 is deep and
    # latency-bound (100+ sequential convs + BNs on shrinking feature
    # maps), so its per-sample time barely improves with per-GPU batch —
    # the reason its strong-scaling speedups stay flat in the paper.
    hint = {"eff_max": 0.055, "half_batch": 30.0}
    return ModelSpec(
        name=name, layers=layers, batch_size=batch_size, seq_len=1,
        family="cnn", efficiency_hint=hint,
    )


class Bottleneck(Module):
    """Standard bottleneck residual block (1x1 -> 3x3 -> 1x1)."""

    def __init__(self, c_in: int, planes: int, width_factor: int, stride: int, rng):
        super().__init__()
        width = planes * width_factor
        c_out = planes * EXPANSION
        self.conv1 = Conv2d(c_in, width, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(width)
        self.conv2 = Conv2d(width, width, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(width)
        self.conv3 = Conv2d(width, c_out, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(c_out)
        self.relu = ReLU()
        if stride != 1 or c_in != c_out:
            self.down_conv = Conv2d(c_in, c_out, 1, stride=stride, bias=False, rng=rng)
            self.down_bn = BatchNorm2d(c_out)
        else:
            self.down_conv = None
            self.down_bn = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        if self.down_conv is not None:
            identity = self.down_bn(self.down_conv(x))
        return self.relu(out + identity)


class WideResNet(Module):
    """Runnable bottleneck (Wide)ResNet for NCHW input.

    The default arguments build a small CIFAR-scale network (3x3 stem, no
    max pool); pass ``blocks=(3,4,23,3), image_size=224`` for the full
    WideResnet-101 (126.9M params — only do this for memory accounting
    experiments on a big-memory host).
    """

    def __init__(
        self,
        blocks: tuple[int, ...] = (1, 1, 1),
        width_factor: int = 2,
        planes_list: tuple[int, ...] = (16, 32, 64),
        num_classes: int = 10,
        image_size: int = 32,
        imagenet_stem: bool = False,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.imagenet_stem = imagenet_stem
        c0 = planes_list[0]
        if imagenet_stem:
            self.stem = Conv2d(3, c0, 7, stride=2, padding=3, bias=False, rng=rng)
            self.stem_pool = MaxPool2d(2)
        else:
            self.stem = Conv2d(3, c0, 3, padding=1, bias=False, rng=rng)
            self.stem_pool = None
        self.stem_bn = BatchNorm2d(c0)
        self.relu = ReLU()
        stages: list[Module] = []
        c_in = c0
        for stage, (n_blocks, planes) in enumerate(zip(blocks, planes_list), start=1):
            for b in range(n_blocks):
                stride = 2 if (stage > 1 and b == 0) else 1
                stages.append(Bottleneck(c_in, planes, width_factor, stride, rng))
                c_in = planes * EXPANSION
        self.stages = ModuleList(stages)
        self.pool = AdaptiveAvgPool2d(1)
        self.flatten = Flatten()
        self.fc = Linear(c_in, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.stem_bn(self.stem(x)))
        if self.stem_pool is not None:
            x = self.stem_pool(x)
        for block in self.stages:
            x = block(x)
        return self.fc(self.flatten(self.pool(x)))


def build_wide_resnet(variant: str = "wrn-tiny", seed: int = 0) -> WideResNet:
    """Factory: ``wrn-tiny`` (CIFAR-scale tests) or ``wrn-101-2`` (full)."""
    if variant in ("wrn-tiny", "tiny"):
        return WideResNet(seed=seed)
    if variant == "wrn-101-2":
        return WideResNet(
            blocks=RESNET101_BLOCKS,
            width_factor=2,
            planes_list=(64, 128, 256, 512),
            num_classes=1000,
            image_size=224,
            imagenet_stem=True,
            seed=seed,
        )
    raise KeyError(f"unknown WideResNet variant {variant!r}")
