"""GPT-3 style decoder-only transformers (Brown et al., 2020).

Two faces of the same architecture:

* :func:`gpt_spec` — exact-shape :class:`~repro.models.spec.ModelSpec` for
  the paper-scale configurations (XL 1.3B, 2.7B, 6.7B, 13B). These drive
  the memory model, the partitioner, and the cluster simulator without
  allocating billions of floats.
* :class:`GPT` — a runnable NumPy network used at tiny scale for the
  statistical-efficiency experiment (Figure 4) and functional tests.

Configurations follow GPT-3 Table 2.1 with MegatronLM-compatible shapes
(d_model divisible by n_heads).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensor import (
    CausalSelfAttention,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Tensor,
    functional as F,
    init,
)
from .spec import LayerSpec, ModelSpec

__all__ = ["GPTConfig", "GPT", "gpt_spec", "GPT_CONFIGS"]

#: GPT-3 vocabulary (BPE) and context length used throughout the paper.
GPT3_VOCAB = 50257
GPT3_SEQ = 2048


@dataclass(frozen=True)
class GPTConfig:
    """Hyper-parameters of a decoder-only transformer."""

    name: str
    n_layers: int
    d_model: int
    n_heads: int
    vocab_size: int = GPT3_VOCAB
    seq_len: int = GPT3_SEQ
    dropout_p: float = 0.0
    #: global batch size in the paper's strong-scaling runs (Table I)
    batch_size: int = 512

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads

    @property
    def d_ff(self) -> int:
        """Feed-forward inner width (4x, as in GPT)."""
        return 4 * self.d_model


#: Paper-scale configurations (Table I) plus tiny runnable variants.
GPT_CONFIGS: dict[str, GPTConfig] = {
    "gpt3-xl": GPTConfig("gpt3-xl", n_layers=24, d_model=2048, n_heads=16, batch_size=512),
    "gpt3-2.7b": GPTConfig("gpt3-2.7b", n_layers=32, d_model=2560, n_heads=32, batch_size=512),
    "gpt3-6.7b": GPTConfig("gpt3-6.7b", n_layers=32, d_model=4096, n_heads=32, batch_size=1024),
    "gpt3-13b": GPTConfig("gpt3-13b", n_layers=40, d_model=5120, n_heads=40, batch_size=2048),
    # Tiny variants for real training runs on this machine. Character-level
    # vocabulary, short context — same code path, ~300k-1M params.
    "gpt3-tiny": GPTConfig(
        "gpt3-tiny", n_layers=2, d_model=64, n_heads=4, vocab_size=128, seq_len=64, batch_size=16
    ),
    "gpt3-mini": GPTConfig(
        "gpt3-mini", n_layers=4, d_model=128, n_heads=8, vocab_size=128, seq_len=64, batch_size=16
    ),
}


# ---------------------------------------------------------------------------
# analytical spec
# ---------------------------------------------------------------------------
def _block_params(d: int) -> tuple[int, int]:
    """(total, prunable) parameters of one transformer block."""
    attn_w = 3 * d * d + d * d
    attn_b = 3 * d + d
    mlp_w = d * (4 * d) + (4 * d) * d
    mlp_b = 4 * d + d
    ln = 2 * (2 * d)  # two LayerNorms, weight+bias each
    total = attn_w + attn_b + mlp_w + mlp_b + ln
    prunable = attn_w + mlp_w
    return total, prunable


def _block_fwd_flops(d: int, s: int) -> float:
    """Forward flops of one block for a full sequence of length ``s``.

    Per token: QKV 6d^2, scores 2sd, context 2sd, proj 2d^2, MLP 16d^2
    -> s * (24 d^2 + 4 s d), the per-layer term inside Narayanan et al.'s
    96*B*s*l*h^2*(1 + s/6h + V/16lh) iteration formula.
    """
    return s * (24.0 * d * d + 4.0 * s * d)


def gpt_spec(config: GPTConfig | str) -> ModelSpec:
    """Build the analytical :class:`ModelSpec` for a GPT configuration.

    The embedding (token + position) and the tied LM head are modelled as
    separate schedulable layers, matching how AxoNN assigns them to the
    first/last pipeline stages.
    """
    if isinstance(config, str):
        config = GPT_CONFIGS[config]
    d, s, v, nl = config.d_model, config.seq_len, config.vocab_size, config.n_layers

    layers: list[LayerSpec] = []
    emb_params = v * d + s * d  # token + learned position table
    layers.append(
        LayerSpec(
            name="embedding",
            kind="embedding",
            param_count=emb_params,
            prunable_count=v * d,
            fwd_flops_per_sample=0.0,  # lookup, negligible flops
            activation_out_elems=s * d,
            activation_checkpoint_elems=s,  # the int token ids
        )
    )
    btot, bprune = _block_params(d)
    bflops = _block_fwd_flops(d, s)
    for i in range(nl):
        layers.append(
            LayerSpec(
                name=f"blocks.{i}",
                kind="transformer_block",
                param_count=btot,
                prunable_count=bprune,
                fwd_flops_per_sample=bflops,
                activation_out_elems=s * d,
                activation_checkpoint_elems=s * d,
            )
        )
    layers.append(
        LayerSpec(
            name="ln_f",
            kind="final_norm",
            param_count=2 * d,
            prunable_count=0,
            fwd_flops_per_sample=float(10 * s * d),
            activation_out_elems=s * d,
            activation_checkpoint_elems=s * d,
        )
    )
    # LM head shares the token embedding (weight tying): zero extra params
    # but real flops — 2*d*V per token forward.
    layers.append(
        LayerSpec(
            name="lm_head",
            kind="lm_head",
            param_count=0,
            prunable_count=0,
            fwd_flops_per_sample=2.0 * s * d * v,
            activation_out_elems=s * v,
            activation_checkpoint_elems=s * d,
        )
    )
    return ModelSpec(
        name=config.name,
        layers=layers,
        batch_size=config.batch_size,
        seq_len=s,
        family="gpt",
    )


# ---------------------------------------------------------------------------
# runnable model
# ---------------------------------------------------------------------------
class TransformerBlock(Module):
    """Pre-LN transformer block: ``x + attn(ln(x))``, ``x + mlp(ln(x))``."""

    def __init__(self, config: GPTConfig, rng: np.random.Generator):
        super().__init__()
        d = config.d_model
        self.ln1 = LayerNorm(d)
        self.attn = CausalSelfAttention(
            d, config.n_heads, n_layers=config.n_layers, dropout_p=config.dropout_p, rng=rng
        )
        self.ln2 = LayerNorm(d)
        self.fc = Linear(d, config.d_ff, rng=rng, init_fn=lambda s_: init.gpt_init(s_, rng, config.n_layers))
        self.act = GELU()
        self.proj = Linear(
            config.d_ff, d, rng=rng,
            init_fn=lambda s_: init.gpt_init(s_, rng, config.n_layers, residual=True),
        )
        self.drop = Dropout(config.dropout_p, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        h = self.proj(self.act(self.fc(self.ln2(x))))
        return x + self.drop(h)


class GPT(Module):
    """Runnable decoder-only transformer with tied LM head.

    ``forward`` maps integer token ids of shape (B, T) to logits of shape
    (B, T, vocab). Use :func:`gpt_spec` for paper-scale accounting; this
    class is meant to be instantiated with the tiny configs.
    """

    def __init__(self, config: GPTConfig, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.wte = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.wpe = Embedding(config.seq_len, config.d_model, rng=rng, std=0.01)
        self.drop = Dropout(config.dropout_p, rng=rng)
        self.blocks = ModuleList([TransformerBlock(config, rng) for _ in range(config.n_layers)])
        self.ln_f = LayerNorm(config.d_model)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        b, t = tokens.shape
        if t > self.config.seq_len:
            raise ValueError(f"sequence length {t} exceeds context {self.config.seq_len}")
        pos = np.arange(t, dtype=np.int64)
        x = self.wte(tokens) + self.wpe(pos)
        x = self.drop(x)
        for block in self.blocks:
            x = block(x)
        x = self.ln_f(x)
        # tied LM head: logits = x @ wte.T
        return x @ self.wte.weight.T

    def loss(self, tokens: np.ndarray, targets: np.ndarray) -> Tensor:
        """Causal LM cross-entropy."""
        logits = self.forward(tokens)
        return F.cross_entropy(logits, targets)

    def spec(self) -> ModelSpec:
        """Analytical spec matching this instance's configuration."""
        return gpt_spec(self.config)
