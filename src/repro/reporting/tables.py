"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

__all__ = ["render_table", "format_bytes", "format_seconds"]


def render_table(rows: list[dict], columns: list[str] | None = None, title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    columns = columns or list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    srows = []
    for r in rows:
        sr = {c: _fmt(r.get(c, "")) for c in columns}
        srows.append(sr)
        for c in columns:
            widths[c] = max(widths[c], len(sr[c]))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for sr in srows:
        lines.append(" | ".join(sr[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def format_bytes(n: int) -> str:
    """Human-readable byte count (GB with two decimals, like the paper)."""
    for unit, div in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n} B"


def format_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f} s"
    return f"{s * 1e3:.2f} ms"
