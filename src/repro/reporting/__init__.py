"""Report rendering (ASCII tables and plots) for the benchmark harness."""

from .ascii_plots import log2_axis_plot, series_plot
from .tables import format_bytes, format_seconds, render_table

__all__ = ["render_table", "format_bytes", "format_seconds", "series_plot", "log2_axis_plot"]
