"""ASCII line/series plots so benchmark output mirrors the paper's figures."""

from __future__ import annotations

import math

__all__ = ["series_plot", "log2_axis_plot"]


def series_plot(
    series: dict[str, list[float]],
    x: list,
    height: int = 12,
    width: int = 64,
    logy: bool = False,
    title: str | None = None,
    ylabel: str = "",
) -> str:
    """Plot named series against shared x values on a character grid."""
    marks = "ox+*#@%&"
    all_vals = [v for vs in series.values() for v in vs if v is not None]
    if not all_vals:
        return "(no data)"
    tx = (lambda v: math.log10(max(v, 1e-12))) if logy else (lambda v: v)
    lo = min(tx(v) for v in all_vals)
    hi = max(tx(v) for v in all_vals)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    n = len(x)
    for si, (name, vals) in enumerate(series.items()):
        m = marks[si % len(marks)]
        for i, v in enumerate(vals):
            if v is None:
                continue
            col = int(round(i * (width - 1) / max(n - 1, 1)))
            row = int(round((tx(v) - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - row][col] = m
    lines = []
    if title:
        lines.append(title)
    top = f"{10**hi:.3g}" if logy else f"{hi:.3g}"
    bot = f"{10**lo:.3g}" if logy else f"{lo:.3g}"
    lines.append(f"{ylabel} ^ {top}")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width + f"> x  (min={x[0]}, max={x[-1]})")
    legend = "  legend: " + "  ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    lines.append(f"  y-min = {bot}")
    return "\n".join(lines)


def log2_axis_plot(series: dict[str, list[float]], gpu_counts: list[int], **kw) -> str:
    """Strong-scaling plot: x is the power-of-two GPU axis (Figs. 5-7)."""
    return series_plot(series, gpu_counts, logy=True, **kw)
