"""In-process, thread-based communicator with an mpi4py-flavoured API.

This substitutes for NCCL/Spectrum-MPI on Summit: ``run_parallel`` spawns
one thread per rank, each receiving a :class:`Communicator` bound to a
shared :class:`World`. Semantics follow MPI:

* point-to-point ``send``/``recv`` are matched by (source, dest, tag) with
  FIFO ordering per channel;
* collectives are *bulk-synchronous* and must be called by every rank in
  the same order (enforced by a per-rank sequence number — a mismatch
  deadlocks real MPI; here it raises);
* reductions are computed in rank order by a single thread, so results are
  bitwise deterministic regardless of scheduling.

NumPy releases the GIL inside ufuncs/GEMMs, so rank threads genuinely
overlap compute — the same reason mpi4py-style threading works for
NumPy-heavy workloads (see the hpc-parallel guides).
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Sequence

import numpy as np

__all__ = ["World", "Communicator", "run_parallel", "CommError"]


class CommError(RuntimeError):
    """Raised on misuse (rank mismatch, wrong collective order, ...)."""


class World:
    """Shared state for one group of ranks."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self._barrier = threading.Barrier(size)
        self._lock = threading.Lock()
        self._mailboxes: dict[tuple[int, int, int], "queue.Queue"] = {}
        self._slots: dict[tuple[str, int], list] = {}
        self._results: dict[tuple[str, int], object] = {}

    # -- plumbing ------------------------------------------------------------
    def mailbox(self, src: int, dst: int, tag: int) -> "queue.Queue":
        key = (src, dst, tag)
        with self._lock:
            if key not in self._mailboxes:
                self._mailboxes[key] = queue.Queue()
            return self._mailboxes[key]

    def barrier(self) -> None:
        self._barrier.wait()

    def slot(self, op: str, seq: int) -> list:
        key = (op, seq)
        with self._lock:
            if key not in self._slots:
                self._slots[key] = [None] * self.size
            return self._slots[key]

    def publish(self, op: str, seq: int, value) -> None:
        self._results[(op, seq)] = value

    def result(self, op: str, seq: int):
        return self._results[(op, seq)]

    def cleanup(self, op: str, seq: int) -> None:
        self._slots.pop((op, seq), None)
        self._results.pop((op, seq), None)


class Communicator:
    """Rank-local handle; the MPI ``comm`` object equivalent."""

    def __init__(self, world: World, rank: int):
        if not 0 <= rank < world.size:
            raise CommError(f"rank {rank} out of range for world size {world.size}")
        self.world = world
        self.rank = rank
        self._seq = 0

    @property
    def size(self) -> int:
        return self.world.size

    # -- point-to-point --------------------------------------------------------
    def send(self, dst: int, array: np.ndarray, tag: int = 0) -> None:
        """Post a message; the payload is copied (MPI buffer semantics)."""
        if dst == self.rank:
            raise CommError("send to self is not supported (use a local copy)")
        self.world.mailbox(self.rank, dst, tag).put(np.array(array, copy=True))

    def recv(self, src: int, tag: int = 0, timeout: float = 30.0) -> np.ndarray:
        """Block until the matching message arrives."""
        if src == self.rank:
            raise CommError("recv from self is not supported")
        try:
            return self.world.mailbox(src, self.rank, tag).get(timeout=timeout)
        except queue.Empty as e:
            raise CommError(
                f"recv timeout: rank {self.rank} waiting on src={src} tag={tag}"
            ) from e

    def sendrecv(self, dst: int, src: int, array: np.ndarray, tag: int = 0) -> np.ndarray:
        """Concurrent send+recv (deadlock-free neighbour exchange)."""
        self.send(dst, array, tag)
        return self.recv(src, tag)

    # -- collectives -------------------------------------------------------------
    def _next_seq(self) -> int:
        s = self._seq
        self._seq += 1
        return s

    def barrier(self) -> None:
        self.world.barrier()

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """All-reduce; returns a fresh array on every rank.

        Reduction runs on rank 0 in ascending rank order -> deterministic.
        """
        seq = self._next_seq()
        slot = self.world.slot("allreduce", seq)
        slot[self.rank] = np.asarray(array)
        self.world.barrier()
        if self.rank == 0:
            shapes = {a.shape for a in slot}
            if len(shapes) != 1:
                raise CommError(f"allreduce shape mismatch across ranks: {shapes}")
            acc = slot[0].astype(np.float64, copy=True) if op in ("sum", "mean") else np.array(slot[0], copy=True)
            for contrib in slot[1:]:
                if op in ("sum", "mean"):
                    acc += contrib
                elif op == "max":
                    np.maximum(acc, contrib, out=acc)
                elif op == "min":
                    np.minimum(acc, contrib, out=acc)
                else:
                    raise CommError(f"unknown reduction op {op!r}")
            if op == "mean":
                acc /= self.size
            self.world.publish("allreduce", seq, acc.astype(slot[0].dtype))
        self.world.barrier()
        out = np.array(self.world.result("allreduce", seq), copy=True)
        self.world.barrier()
        if self.rank == 0:
            self.world.cleanup("allreduce", seq)
        return out

    def bcast(self, array: np.ndarray | None, root: int = 0) -> np.ndarray:
        """Broadcast ``array`` from ``root`` to every rank."""
        seq = self._next_seq()
        if self.rank == root:
            if array is None:
                raise CommError("root must provide an array to bcast")
            self.world.publish("bcast", seq, np.array(array, copy=True))
        self.world.barrier()
        out = np.array(self.world.result("bcast", seq), copy=True)
        self.world.barrier()
        if self.rank == root:
            self.world.cleanup("bcast", seq)
        return out

    def gather(self, array: np.ndarray, root: int = 0) -> list[np.ndarray] | None:
        """Gather per-rank arrays to ``root`` (None elsewhere)."""
        seq = self._next_seq()
        slot = self.world.slot("gather", seq)
        slot[self.rank] = np.array(array, copy=True)
        self.world.barrier()
        out = [np.array(a, copy=True) for a in slot] if self.rank == root else None
        self.world.barrier()
        if self.rank == root:
            self.world.cleanup("gather", seq)
        return out

    def allgather(self, array: np.ndarray) -> list[np.ndarray]:
        """Gather per-rank arrays to every rank."""
        seq = self._next_seq()
        slot = self.world.slot("allgather", seq)
        slot[self.rank] = np.array(array, copy=True)
        self.world.barrier()
        out = [np.array(a, copy=True) for a in slot]
        self.world.barrier()
        if self.rank == 0:
            self.world.cleanup("allgather", seq)
        return out

    def __repr__(self) -> str:
        return f"Communicator(rank={self.rank}, size={self.size})"


def run_parallel(size: int, fn: Callable, args_per_rank: Sequence[tuple] | None = None,
                 timeout: float = 120.0) -> list:
    """Run ``fn(comm, *args)`` on ``size`` rank threads; return rank results.

    Any rank exception cancels the run and re-raises in the caller (with
    the failing rank noted) — mirroring an MPI abort.
    """
    world = World(size)
    results: list = [None] * size
    errors: list = [None] * size

    def worker(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            extra = args_per_rank[rank] if args_per_rank is not None else ()
            results[rank] = fn(comm, *extra)
        except BaseException as e:  # noqa: BLE001 - must surface rank failures
            errors[rank] = e
            world._barrier.abort()

    threads = [threading.Thread(target=worker, args=(r,), daemon=True) for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            world._barrier.abort()
            raise CommError("parallel run timed out (likely deadlock)")
    # A failing rank aborts the shared barrier, which makes innocent ranks
    # die with BrokenBarrierError. Report the root cause, not the fallout.
    failed = [(r, e) for r, e in enumerate(errors) if e is not None]
    if failed:
        primary = [(r, e) for r, e in failed
                   if not isinstance(e, threading.BrokenBarrierError)]
        rank, e = primary[0] if primary else failed[0]
        raise CommError(f"rank {rank} failed: {e!r}") from e
    return results
