"""In-process communication backend (the NCCL/MPI substitute).

Thread ranks with MPI semantics for functional parallel-training tests;
see :mod:`repro.cluster` for the *performance* model of the same ops.
"""

from .backend import CommError, Communicator, World, run_parallel
from .process_group import GridLayout
from .sparse_collectives import (
    SparseGradientSynchronizer,
    allreduce_compressed,
    mask_digest,
    sparse_allreduce_union,
)

__all__ = [
    "World",
    "Communicator",
    "run_parallel",
    "CommError",
    "GridLayout",
    "SparseGradientSynchronizer",
    "allreduce_compressed",
    "sparse_allreduce_union",
    "mask_digest",
]
