"""Sparse gradient collectives (paper Section IV-A).

SAMO's data-parallel optimisation is to "directly invoke AxoNN's
all-reduce calls on the compressed tensor": because every replica prunes
with the *same* mask, the compressed value arrays are positionally
aligned across ranks and a plain all-reduce over the values synchronises
the gradients at ``(1-p)`` of the dense payload.

This module provides that fast path plus the general one:

* :func:`allreduce_compressed` — values-only all-reduce for mask-aligned
  replicas (the paper's case). A cheap one-time digest check catches
  accidental mask divergence, which would otherwise silently sum
  gradients of *different* parameters.
* :func:`sparse_allreduce_union` — index-union all-reduce for ranks whose
  masks differ (e.g. locally re-pruned replicas): allgather the index
  sets, reduce on the union support, return the union COO result.
* :class:`SparseGradientSynchronizer` — binds a
  :class:`~repro.core.model_state.SAMOTrainingState` to a communicator
  and syncs all compressed + dense gradients with one call, tracking the
  exact payload bytes that the performance model charges.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .backend import CommError, Communicator

__all__ = [
    "mask_digest",
    "allreduce_compressed",
    "sparse_allreduce_union",
    "SparseGradientSynchronizer",
]


def mask_digest(ind: np.ndarray) -> np.ndarray:
    """128-bit digest of an index array as a (2,) uint64 vector.

    Cheap to all-reduce (max == min iff all ranks agree); collision
    probability is negligible for accident detection.
    """
    h = hashlib.blake2b(np.ascontiguousarray(ind, dtype=np.int64).tobytes(), digest_size=16)
    return np.frombuffer(h.digest(), dtype=np.uint64).copy()


def _check_aligned(comm: Communicator, ind: np.ndarray) -> None:
    d = mask_digest(ind)
    hi = comm.allreduce(d, op="max")
    lo = comm.allreduce(d, op="min")
    if not np.array_equal(hi, lo):
        raise CommError(
            "compressed all-reduce requires identical masks on every rank; "
            "index digests differ (use sparse_allreduce_union instead)"
        )


def allreduce_compressed(
    comm: Communicator,
    values: np.ndarray,
    ind: np.ndarray | None = None,
    op: str = "mean",
    check_masks: bool = False,
) -> np.ndarray:
    """All-reduce compressed gradient *values* across replicas.

    Parameters
    ----------
    values:
        This rank's compressed gradient array (any float dtype; fp16 in
        SAMO). Reduced in fp32 for accuracy, returned in the input dtype.
    ind:
        The shared index (only needed when ``check_masks`` is True).
    op:
        ``"mean"`` (gradient averaging, default) or ``"sum"``.
    check_masks:
        Verify via digest that every rank holds the same index set.
        O(1) payload; enable on the first sync of a run.
    """
    if check_masks:
        if ind is None:
            raise ValueError("check_masks=True requires the index array")
        _check_aligned(comm, ind)
    out32 = comm.allreduce(values.astype(np.float32), op=op)
    return out32.astype(values.dtype)


def sparse_allreduce_union(
    comm: Communicator,
    ind: np.ndarray,
    values: np.ndarray,
    op: str = "mean",
) -> tuple[np.ndarray, np.ndarray]:
    """All-reduce COO gradients whose supports differ across ranks.

    Every rank contributes ``(ind, values)`` over the same flattened
    parameter space; the result on every rank is the reduction over the
    *union* support: ``(union_ind, union_values)``, with absent positions
    treated as zero. ``op='mean'`` divides by the world size (matching
    dense all-reduce semantics, not per-support counts).

    This is the fallback path for replicas that re-prune locally; the
    paper's SAMO never needs it because pruning happens once, before
    parallel training starts.
    """
    if ind.shape != values.shape:
        raise ValueError(f"ind and values must align, got {ind.shape} vs {values.shape}")
    index_sets = comm.allgather(np.asarray(ind, dtype=np.int64))
    union = np.unique(np.concatenate(index_sets)) if index_sets else np.array([], np.int64)
    # Scatter local values onto the union support, then reduce densely.
    contrib = np.zeros(union.size, dtype=np.float32)
    pos = np.searchsorted(union, np.asarray(ind, dtype=np.int64))
    contrib[pos] = values.astype(np.float32)
    total = comm.allreduce(contrib, op="sum")
    if op == "mean":
        total /= comm.size
    elif op != "sum":
        raise ValueError(f"op must be 'sum' or 'mean', got {op!r}")
    return union, total.astype(values.dtype)


class SparseGradientSynchronizer:
    """Data-parallel gradient sync for a SAMO training state.

    Drives the paper's Section IV-A path: after the backward pass has
    compressed the gradients (``state.compress_gradients()``), one
    :meth:`sync` call all-reduces every compressed entry's values and
    every dense (non-prunable) entry's gradient among the replicas of a
    data-parallel group.

    Attributes
    ----------
    bytes_last_sync:
        fp16 payload bytes this rank contributed in the last sync —
        the quantity the paper's collective-time model charges.
    """

    def __init__(self, state, comm: Communicator, check_masks_once: bool = True):
        self.state = state
        self.comm = comm
        self._must_check = bool(check_masks_once)
        self.bytes_last_sync = 0

    def dense_bytes(self) -> int:
        """Payload a *dense* (non-SAMO) sync of the same model would send."""
        n = 0
        for e in self.state.compressed:
            n += int(np.prod(e.shape))
        for d in self.state.dense:
            n += d.theta32.size
        return 2 * n  # fp16

    def sync(self, op: str = "mean") -> int:
        """All-reduce all stored gradients in place; returns payload bytes."""
        nbytes = 0
        for e in self.state.compressed:
            if e.grad16_c is None:
                continue
            e.grad16_c = allreduce_compressed(
                self.comm, e.grad16_c, ind=e.ind, op=op, check_masks=self._must_check
            )
            self._must_check = False
            nbytes += 2 * e.grad16_c.size
        for d in self.state.dense:
            if d.grad16 is None:
                continue
            d.grad16 = self.comm.allreduce(
                d.grad16.astype(np.float32), op=op
            ).astype(np.float16)
            nbytes += 2 * d.grad16.size
        self.bytes_last_sync = nbytes
        return nbytes

    def __repr__(self) -> str:
        return (
            f"SparseGradientSynchronizer(rank={self.comm.rank}/{self.comm.size}, "
            f"entries={len(self.state.compressed)}+{len(self.state.dense)})"
        )
