"""Process groups: carve a world into a G_inter x G_data grid.

AxoNN's hybrid decomposition (paper Section II-E) places rank ``r`` at
pipeline stage ``r % G_inter`` of data-parallel replica ``r // G_inter``.
Inter-layer (pipeline) groups share a replica; data-parallel groups
connect the same stage across replicas — those are the ranks whose
gradients all-reduce together.
"""

from __future__ import annotations

__all__ = ["GridLayout"]


class GridLayout:
    """Pure rank arithmetic for the hybrid decomposition."""

    def __init__(self, n_ranks: int, g_inter: int):
        if n_ranks % g_inter:
            raise ValueError(f"G_inter={g_inter} does not divide world size {n_ranks}")
        self.n_ranks = n_ranks
        self.g_inter = g_inter
        self.g_data = n_ranks // g_inter

    def stage_of(self, rank: int) -> int:
        """Pipeline stage index of a rank."""
        self._check(rank)
        return rank % self.g_inter

    def replica_of(self, rank: int) -> int:
        """Data-parallel replica index of a rank."""
        self._check(rank)
        return rank // self.g_inter

    def rank_at(self, stage: int, replica: int) -> int:
        if not 0 <= stage < self.g_inter or not 0 <= replica < self.g_data:
            raise IndexError(f"(stage={stage}, replica={replica}) out of range")
        return replica * self.g_inter + stage

    def pipeline_group(self, rank: int) -> list[int]:
        """Ranks forming this rank's pipeline (same replica)."""
        rep = self.replica_of(rank)
        return [self.rank_at(s, rep) for s in range(self.g_inter)]

    def data_group(self, rank: int) -> list[int]:
        """Ranks holding the same stage across replicas (all-reduce peers)."""
        stage = self.stage_of(rank)
        return [self.rank_at(stage, d) for d in range(self.g_data)]

    def prev_stage(self, rank: int) -> int | None:
        """Upstream pipeline neighbour (None for the first stage)."""
        s = self.stage_of(rank)
        return None if s == 0 else rank - 1

    def next_stage(self, rank: int) -> int | None:
        """Downstream pipeline neighbour (None for the last stage)."""
        s = self.stage_of(rank)
        return None if s == self.g_inter - 1 else rank + 1

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self.n_ranks})")

    def __repr__(self) -> str:
        return f"GridLayout(G={self.n_ranks} = {self.g_inter} inter x {self.g_data} data)"
