"""The workload half of a costing question, as one frozen value object.

A :class:`Job` replaces the kwarg soup the legacy entry points threaded
ad hoc (``simulate_batch(spec, n_gpus, framework, sparsity, mbs,
pipeline_fidelity, scenario, partition_mode)``, ``Planner(...)``'s
overlapping constructor, CLI flag strings): everything that identifies
*what* is being trained and *how it should be costed* lives here,
hashable, serializable, and validated once at construction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

__all__ = ["Job"]

PARTITION_MODES = ("flops", "time")


@dataclass(frozen=True)
class Job:
    """One training workload to cost on a :class:`~repro.api.Machine`.

    ``fidelity=None`` means "unspecified": entry points then pick
    ``"analytic"``, or ``"sim"`` when a scenario is in play (the shared
    :func:`~repro.parallel.scenarios.resolve_fidelity` rule). An
    explicit ``"analytic"`` combined with a scenario raises everywhere.

    ``framework`` matters to :meth:`Session.breakdown`/:meth:`Session.trace`
    (one framework runs the batch); :meth:`Session.plan` searches over
    frameworks and uses the job's sparsity/fidelity/partition_mode only.

    ``overlap=True`` hides the bucketed data-parallel all-reduce behind
    the pipeline drain on the event timeline; ``placement="best"``
    prices the pipeline at the optimized replica placement instead of
    the contiguous block layout. Both need the event engine, so they
    imply ``fidelity="sim"`` when the fidelity is unspecified and raise
    with an explicit ``"analytic"``.

    >>> job = Job(model="gpt3-xl", n_gpus=64, framework="axonn+samo")
    >>> job.with_(overlap=True).overlap
    True
    >>> Job.from_dict(job.to_dict()) == job
    True
    """

    model: str
    n_gpus: int
    framework: str = "axonn"
    sparsity: float = 0.9
    mbs: int = 1
    partition_mode: str = "flops"
    fidelity: str | None = None
    overlap: bool = False
    placement: str = "block"

    def __post_init__(self):
        if not isinstance(self.model, str) or not self.model:
            raise ValueError(f"model must be a non-empty name, got {self.model!r}")
        if self.n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {self.n_gpus}")
        if self.mbs < 1:
            raise ValueError(f"mbs must be >= 1, got {self.mbs}")
        if not 0.0 <= self.sparsity <= 1.0:
            raise ValueError(f"sparsity must be in [0,1], got {self.sparsity}")
        if self.partition_mode not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition_mode {self.partition_mode!r}; "
                f"choose from {PARTITION_MODES}"
            )
        # the engine owns the placement vocabulary; validating against it
        # here keeps Job and simulate_hetero_pipeline from ever drifting
        from ..parallel.scenarios import PLACEMENTS  # deferred: parallel wraps the api

        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; choose from {PLACEMENTS}"
            )
        if not isinstance(self.overlap, bool):
            raise ValueError(f"overlap must be a bool, got {self.overlap!r}")
        from ..parallel.axonn import FRAMEWORKS  # deferred: axonn wraps the api

        if self.framework not in FRAMEWORKS:
            raise ValueError(
                f"unknown framework {self.framework!r}; choose from {FRAMEWORKS}"
            )

    # ------------------------------------------------------------------
    def with_(self, **changes) -> "Job":
        """Functional update preserving validation."""
        return replace(self, **changes)

    def cache_key(self) -> tuple:
        """Hashable canonical identity; equal for equivalently-built Jobs."""
        return (
            self.model,
            self.n_gpus,
            self.framework,
            round(self.sparsity, 6),
            self.mbs,
            self.partition_mode,
            self.fidelity,
            self.overlap,
            self.placement,
        )

    def canonical_hash(self) -> str:
        """Short stable digest of :meth:`cache_key`."""
        payload = "|".join(str(x) for x in self.cache_key())
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def describe(self) -> str:
        fid = self.fidelity if self.fidelity is not None else "auto"
        extras = ""
        if self.overlap:
            extras += ", overlap"
        if self.placement != "block":
            extras += f", placement={self.placement}"
        return (
            f"{self.model} on {self.n_gpus} GPUs "
            f"[{self.framework}, p={self.sparsity:g}, mbs={self.mbs}, "
            f"partition={self.partition_mode}, fidelity={fid}{extras}]"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "model": self.model,
            "n_gpus": self.n_gpus,
            "framework": self.framework,
            "sparsity": self.sparsity,
            "mbs": self.mbs,
            "partition_mode": self.partition_mode,
            "fidelity": self.fidelity,
            "overlap": self.overlap,
            "placement": self.placement,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(**data)
