"""Weighted scenario distributions for robust planning.

A :class:`ScenarioSet` is a frozen, normalised distribution over
:class:`~repro.parallel.scenarios.ClusterScenario` machine conditions
(``None`` = the pristine machine). :meth:`Session.robust_plan` ranks
configurations by *expected* cost over the set and reports the
worst case alongside — the scenario-sampling follow-on the ROADMAP
called for. :data:`SCENARIO_SETS` holds the named distributions the
CLI exposes (``repro plan --scenarios mixed-degraded``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..parallel.scenarios import SCENARIOS, ClusterScenario, get_scenario

__all__ = ["ScenarioSet", "SCENARIO_SETS", "get_scenario_set"]


@dataclass(frozen=True)
class ScenarioSet:
    """A named, weighted set of machine conditions.

    ``members`` pairs each scenario (or ``None`` for the pristine
    machine) with a positive weight; weights are normalised on access.
    Scenarios whose every knob is neutral are canonicalised to ``None``
    at construction, so a "uniform-only" set prices — and caches —
    exactly like no scenario at all.

    >>> s = ScenarioSet.of("uniform", "degraded", weights=(3, 1), name="two-state")
    >>> s.labels()  # the neutral 'uniform' preset canonicalises to None
    ('neutral', 'degraded')
    >>> s.weights
    (0.75, 0.25)
    >>> s.is_neutral_only
    False
    >>> ScenarioSet.from_dict(s.to_dict()) == s
    True
    """

    name: str
    members: tuple

    def __post_init__(self):
        if not self.members:
            raise ValueError(f"scenario set {self.name!r} must not be empty")
        canon = []
        for scenario, weight in self.members:
            scenario = get_scenario(scenario)
            if not (
                isinstance(weight, (int, float))
                and math.isfinite(weight)
                and weight > 0
            ):
                raise ValueError(
                    f"scenario weights must be positive finite numbers, "
                    f"got {weight!r}"
                )
            if scenario is not None and scenario.is_neutral:
                scenario = None
            canon.append((scenario, float(weight)))
        labels = [s.name if s is not None else "neutral" for s, _ in canon]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"scenario set {self.name!r} has duplicate scenario labels: {labels}"
            )
        object.__setattr__(self, "members", tuple(canon))

    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *scenarios, weights=None, name: str = "custom") -> "ScenarioSet":
        """Build a set from scenarios (names or instances), default-uniform."""
        if weights is None:
            weights = (1.0,) * len(scenarios)
        if len(weights) != len(scenarios):
            raise ValueError(
                f"{len(scenarios)} scenarios but {len(weights)} weights"
            )
        return cls(name, tuple(zip(scenarios, weights)))

    @property
    def scenarios(self) -> tuple:
        return tuple(s for s, _ in self.members)

    @property
    def weights(self) -> tuple:
        """Normalised weights, same order as :attr:`scenarios`."""
        total = sum(w for _, w in self.members)
        return tuple(w / total for _, w in self.members)

    def items(self):
        """Yield ``(scenario_or_None, normalised_weight)`` pairs."""
        return tuple(zip(self.scenarios, self.weights))

    @property
    def is_neutral_only(self) -> bool:
        """True when every member is the pristine machine."""
        return all(s is None for s in self.scenarios)

    def labels(self) -> tuple:
        return tuple(
            s.name if s is not None else "neutral" for s in self.scenarios
        )

    def __len__(self) -> int:
        return len(self.members)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "members": [
                {
                    "scenario": s.to_dict() if s is not None else None,
                    "weight": w,
                }
                for s, w in self.members
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSet":
        members = tuple(
            (
                ClusterScenario.from_dict(m["scenario"])
                if m["scenario"] is not None
                else None,
                m["weight"],
            )
            for m in data["members"]
        )
        return cls(data["name"], members)


#: Named scenario distributions (the ``repro plan --scenarios`` choices).
SCENARIO_SETS: dict[str, ScenarioSet] = {
    s.name: s
    for s in (
        # the pristine machine only — robust_plan degenerates to plan
        ScenarioSet("neutral", ((None, 1.0),)),
        # a machine that is usually fine but sometimes degraded somewhere
        ScenarioSet(
            "mixed-degraded",
            (
                (None, 0.40),
                (SCENARIOS["straggler"], 0.20),
                (SCENARIOS["degraded-ring"], 0.15),
                (SCENARIOS["slow-link"], 0.15),
                (SCENARIOS["degraded"], 0.10),
            ),
        ),
        ScenarioSet(
            "pipeline-degraded",
            (
                (SCENARIOS["straggler"], 1.0),
                (SCENARIOS["slow-link"], 1.0),
                (SCENARIOS["skewed"], 1.0),
                (SCENARIOS["contention"], 1.0),
            ),
        ),
        ScenarioSet(
            "collective-degraded",
            (
                (SCENARIOS["degraded-ring"], 1.0),
                (SCENARIOS["ring-straggler"], 1.0),
                (SCENARIOS["slow-ring-link"], 1.0),
            ),
        ),
        # the same machine priced under the two-level allreduce schedule:
        # healthy, on a congested fabric, and the flat-ring baseline for
        # comparison (algo selection is a scenario knob, so a robust plan
        # can weigh collective schedules like any other machine condition)
        ScenarioSet(
            "hierarchical-mixed",
            (
                (None, 0.40),
                (SCENARIOS["hierarchical"], 0.35),
                (SCENARIOS["hierarchical-degraded"], 0.25),
            ),
        ),
    )
}


def get_scenario_set(scenarios) -> ScenarioSet:
    """Resolve a scenario set given by name, instance, or scenario list.

    >>> get_scenario_set("mixed-degraded").name
    'mixed-degraded'
    >>> get_scenario_set(["straggler", "degraded-ring"]).weights
    (0.5, 0.5)
    >>> sorted(SCENARIO_SETS)  # the named distributions the CLI exposes
    ['collective-degraded', 'hierarchical-mixed', 'mixed-degraded', 'neutral', 'pipeline-degraded']
    """
    if isinstance(scenarios, ScenarioSet):
        return scenarios
    if isinstance(scenarios, str):
        try:
            return SCENARIO_SETS[scenarios]
        except KeyError:
            raise ValueError(
                f"unknown scenario set {scenarios!r}; "
                f"named sets: {sorted(SCENARIO_SETS)}"
            ) from None
    if isinstance(scenarios, (list, tuple)):
        return ScenarioSet.of(*scenarios)
    raise TypeError(
        f"expected a ScenarioSet, a named set, or a scenario sequence; "
        f"got {type(scenarios).__name__}"
    )
