"""The one front door to every cost-model entry point.

``Session`` binds a :class:`~repro.api.Machine` to an evaluation cache
and answers the questions the legacy surface scattered over
``simulate_batch`` kwargs, ``Planner``'s constructor, and CLI presets:

* :meth:`Session.breakdown` — the Figure-8 phase breakdown of one
  :class:`~repro.api.Job` (what ``simulate_batch`` computed);
* :meth:`Session.trace` — the event-driven 1F1B schedule trace of the
  job's pipeline (warmup/drain, message waits, per-replica placement);
* :meth:`Session.plan` — search the hybrid-parallel configuration space
  (what ``Planner`` ran), cache keys derived from the frozen
  Job/Machine value objects;
* :meth:`Session.robust_plan` — rank configurations by *expected* cost
  over a weighted :class:`~repro.api.ScenarioSet`, reporting worst-case
  cost alongside; evaluations are shared per (config, scenario) pair
  through the same cache, and a neutral-only set degenerates to
  :meth:`Session.plan` bit-identically;
* :meth:`Session.place` — optimize the data-parallel replica placement
  of the job's pipeline (never worse than the default block layout);
* :meth:`Session.mc_robust_plan` — Monte-Carlo robust ranking over a
  sampled failure process (:mod:`repro.stochastic`): N timelines,
  common random numbers across candidates, 95% confidence intervals;
* :meth:`Session.replan` — ride-vs-repair break-even pricing when a
  degradation arrives mid-job.

The job-level ``overlap``/``placement`` knobs thread through every
question: ``overlap=True`` prices the data-parallel all-reduce at its
event-timeline exposure behind the pipeline drain, and
``placement="best"`` prices the pipeline at the optimized replica
placement.

The legacy entry points (``simulate_batch``, ``Planner``, ``plan()``,
the CLI subcommands) remain as thin wrappers over this facade.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import os
import time
from dataclasses import dataclass, field

import numpy as np

from ..models.registry import get_spec
from ..models.spec import ModelSpec
from ..parallel.axonn import (
    FRAMEWORKS,
    _breakdown_engine,
    _framework_traits,
    _gpt_decomposition,
)
from ..parallel.perf_model import BatchBreakdown
from ..parallel.pipeline import PipelineTrace
from ..parallel.placement import PlacementResult, place_replicas
from ..parallel.scenarios import resolve_fidelity, simulate_hetero_pipeline
from ..autotune.cache import GLOBAL_CACHE, EvaluationCache, evaluation_cache_key
from ..autotune.config import CandidateConfig
from ..autotune.estimator import CostEstimator, Evaluation, make_estimator
from ..autotune.result import PlanResult
from ..autotune.space import SearchSpace
from ..obs import OBS, MetricsRegistry, Tracer, observed, write_chrome_trace
from ..reporting.tables import format_bytes, render_table
from .job import Job
from .machine import Machine
from .scenario_set import ScenarioSet, get_scenario_set

__all__ = ["Session", "RobustEvaluation", "RobustPlanResult"]


# ---------------------------------------------------------------------------
# robust-planning results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RobustEvaluation:
    """One candidate costed across a whole scenario distribution."""

    config: CandidateConfig
    #: probability-weighted batch time over the set
    expected_time: float
    #: slowest batch time over the set, and the scenario that caused it
    worst_time: float
    worst_scenario: str
    #: scenario label -> batch time
    per_scenario: dict
    memory_bytes: int
    feasible: bool
    batch_size: int

    @property
    def expected_throughput(self) -> float:
        return self.batch_size / self.expected_time

    def as_row(self) -> dict:
        return {
            "framework": self.config.framework,
            "G_t": self.config.g_tensor,
            "G_i": self.config.g_inter,
            "G_d": self.config.g_data,
            "mbs": self.config.mbs,
            "E[time] (s)": round(self.expected_time, 3),
            "worst (s)": round(self.worst_time, 3),
            "worst case": self.worst_scenario,
            "E[tput] (smp/s)": round(self.expected_throughput, 1),
            "mem/GPU (GB)": round(self.memory_bytes / 1e9, 2),
        }

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "expected_time": self.expected_time,
            "worst_time": self.worst_time,
            "worst_scenario": self.worst_scenario,
            "per_scenario": dict(self.per_scenario),
            "memory_bytes": self.memory_bytes,
            "feasible": self.feasible,
            "batch_size": self.batch_size,
        }


@dataclass
class RobustPlanResult:
    """Outcome of one robust search over a scenario distribution."""

    model: str
    n_gpus: int
    fidelity: str
    budget_bytes: int
    scenario_set: ScenarioSet
    entries: list = field(default_factory=list)
    #: scenario label -> the per-scenario :class:`PlanResult`
    per_scenario: dict = field(default_factory=dict)
    #: accounting aggregated over the per-scenario searches (scenarios,
    #: candidates, evaluated, cache_hits, wall_seconds)
    stats: dict = field(default_factory=dict)

    @property
    def feasible(self) -> list:
        """Feasible candidates, best expected time first."""
        return sorted(
            (e for e in self.entries if e.feasible),
            key=lambda e: e.expected_time,
        )

    @property
    def best(self) -> RobustEvaluation:
        """Best expected-cost feasible configuration."""
        ranked = self.feasible
        if not ranked:
            raise RuntimeError(
                f"{self.model} on {self.n_gpus} GPUs: no feasible configuration "
                f"within {format_bytes(self.budget_bytes)} per GPU"
            )
        return ranked[0]

    def best_worst_case(self) -> RobustEvaluation:
        """The minimax pick: smallest worst-case time over the set."""
        ranked = sorted(
            (e for e in self.entries if e.feasible), key=lambda e: e.worst_time
        )
        if not ranked:
            raise RuntimeError("no feasible configuration")
        return ranked[0]

    # ------------------------------------------------------------------
    def summary_table(self, top: int = 8) -> str:
        rows = [e.as_row() for e in self.feasible[:top]]
        if not rows:
            return "(no feasible configurations)"
        weights = ", ".join(
            f"{label}={w:.2f}"
            for label, w in zip(self.scenario_set.labels(), self.scenario_set.weights)
        )
        return render_table(
            rows,
            title=(
                f"Robust plan: {self.model} on {self.n_gpus} GPUs over "
                f"'{self.scenario_set.name}' ({weights})"
            ),
        )

    def report(self, top: int = 8) -> str:
        """Full human-readable robust-plan report (what the CLI prints)."""
        try:
            best = self.best
        except RuntimeError as err:
            return str(err)
        parts = [
            f"Best expected config for {self.model} on {self.n_gpus} GPUs "
            f"over scenario set '{self.scenario_set.name}': "
            f"{best.config.describe()}\n"
            f"  E[batch time] {best.expected_time:.2f} s "
            f"(worst {best.worst_time:.2f} s under '{best.worst_scenario}'), "
            f"E[throughput] {best.expected_throughput:.0f} samples/s, "
            f"memory {format_bytes(best.memory_bytes)}/GPU",
            self.summary_table(top=top),
        ]
        minimax = self.best_worst_case()
        if minimax.config != best.config:
            parts.append(
                f"Minimax (best worst-case) pick differs: "
                f"{minimax.config.describe()} — worst {minimax.worst_time:.2f} s "
                f"vs {best.worst_time:.2f} s for the expected-cost winner."
            )
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready mapping of the full robust ranking."""
        feasible = self.feasible
        return {
            "model": self.model,
            "n_gpus": self.n_gpus,
            "fidelity": self.fidelity,
            "budget_bytes": self.budget_bytes,
            "scenario_set": self.scenario_set.to_dict(),
            "best": feasible[0].to_dict() if feasible else None,
            "entries": [e.to_dict() for e in self.entries],
            "stats": dict(self.stats),
        }


# ---------------------------------------------------------------------------
# the facade
# ---------------------------------------------------------------------------

class Session:
    """All cost-model entry points behind one object.

    A session owns a :class:`~repro.api.Machine` and an evaluation
    cache; every question asked through it reuses cached evaluations
    keyed on the frozen (machine, job-derived, config, scenario)
    identity.

    Every session also owns a :class:`~repro.obs.MetricsRegistry`: each
    operation runs under :func:`repro.obs.observed` with the session's
    registry installed, so :meth:`metrics` answers cache hit-rates,
    per-fidelity call counts and wall-time latency histograms without
    any opt-in. Span tracing *is* opt-in — pass ``trace_to="out.json"``
    and every operation's virtual-time schedule (stages, links,
    allreduce buckets) plus wall-time session spans are flushed to a
    Chrome/Perfetto-loadable trace after each call.
    """

    def __init__(
        self,
        machine: Machine | None = None,
        cache: EvaluationCache | None = None,
        max_workers: int | None = None,
        trace_to: str | None = None,
    ):
        self.machine = machine if machine is not None else Machine()
        self.cache = GLOBAL_CACHE if cache is None else cache
        if max_workers is None:
            max_workers = min(8, (os.cpu_count() or 2))
        elif max_workers < 1:
            # 0 used to fall through `max_workers or ...` to the default
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.trace_to = trace_to
        self.registry = MetricsRegistry()
        self.tracer: Tracer | None = Tracer() if trace_to else None

    # -- observability ------------------------------------------------------
    def metrics(self) -> dict:
        """Flat JSON-ready snapshot of every session metric."""
        return self.registry.snapshot()

    def metrics_text(self) -> str:
        """Prometheus-style text rendering of the session metrics."""
        return self.registry.render_prometheus()

    @contextlib.contextmanager
    def _op(self, name: str):
        """Run one public operation under the session's observability.

        Installs the session registry (and tracer, when ``trace_to`` was
        given) into the process-wide :data:`~repro.obs.OBS`, times the
        operation into ``session.op_seconds{op=...}``, and flushes the
        accumulated spans to ``trace_to`` on exit. Nestable —
        ``robust_plan`` re-enters through its per-scenario ``plan``
        calls and the inner exit restores the outer state.
        """
        t0 = time.perf_counter()
        with observed(tracer=self.tracer, metrics=self.registry):
            try:
                yield
            finally:
                self.registry.counter("session.ops", {"op": name}).inc()
                self.registry.histogram("session.op_seconds", {"op": name}).observe(
                    time.perf_counter() - t0
                )
                if self.trace_to and self.tracer is not None:
                    write_chrome_trace(self.trace_to, self.tracer.spans)

    # -- shared plumbing ----------------------------------------------------
    def _resolve_spec(self, job: Job, spec: ModelSpec | None) -> ModelSpec:
        """The job's registered model, or an explicit spec override
        (the escape hatch legacy wrappers use for unregistered specs)."""
        return spec if spec is not None else get_spec(job.model)

    # -- single-config questions -------------------------------------------
    def breakdown(
        self, job: Job, scenario=None, *, spec: ModelSpec | None = None
    ) -> BatchBreakdown:
        """Figure-8 phase breakdown of one training batch of ``job``.

        >>> from repro.api import Job, Machine, Session
        >>> b = Session(Machine.summit()).breakdown(
        ...     Job(model="gpt3-xl", n_gpus=64, framework="axonn+samo"))
        >>> (b.config.g_inter, b.config.g_data)
        (1, 64)
        >>> b.total == b.compute + b.p2p + b.bubble + b.collective + b.other
        True
        """
        spec = self._resolve_spec(job, spec)
        fidelity, scenario = resolve_fidelity(
            job.fidelity, scenario, overlap=job.overlap, placement=job.placement
        )
        with self._op("breakdown"):
            if fidelity in ("analytic", "sim"):
                return _breakdown_engine(
                    spec,
                    n_gpus=job.n_gpus,
                    framework=job.framework,
                    sparsity=job.sparsity,
                    mbs=job.mbs,
                    cal=self.machine.cal,
                    fidelity=fidelity,
                    scenario=scenario,
                    partition_mode=job.partition_mode,
                    overlap=job.overlap,
                    placement=job.placement,
                )
            # registry fidelities (measured, analytic-batch, plugins):
            # price the job's paper-protocol decomposition through the
            # registered estimator instead of the legacy engine switch
            from ..autotune.drift import candidate_for_workload
            from ..autotune.estimator import make_estimator

            estimator = make_estimator(
                fidelity,
                spec,
                self.machine.cal,
                scenario=scenario,
                partition_mode=job.partition_mode,
                overlap=job.overlap,
                placement=job.placement,
            )
            config = candidate_for_workload(
                spec,
                job.framework,
                job.n_gpus,
                sparsity=job.sparsity,
                mbs=job.mbs,
                cal=self.machine.cal,
            )
            return estimator.evaluate(config).breakdown

    def trace(
        self, job: Job, scenario=None, *, spec: ModelSpec | None = None
    ) -> PipelineTrace:
        """Event-driven 1F1B schedule trace of the job's pipeline.

        Always runs the Figure-3 engine (a trace *is* the event-driven
        schedule); the job's fidelity only participates in the shared
        conflict validation, so an explicit ``analytic`` job with a
        scenario raises here like everywhere else.

        >>> from repro.api import Job, Machine, Session
        >>> t = Session(Machine.summit()).trace(
        ...     Job(model="gpt3-2.7b", n_gpus=16))
        >>> (t.g_inter, t.n_replicas)
        (8, 2)
        >>> t.makespan > 0 and t.mean_idle_time() > 0
        True
        """
        spec = self._resolve_spec(job, spec)
        fidelity, scenario = resolve_fidelity(
            job.fidelity, scenario, default="sim",
            overlap=job.overlap, placement=job.placement,
        )
        if fidelity not in ("analytic", "sim"):
            raise ValueError(
                f"unknown pipeline_fidelity {fidelity!r}; "
                "choose 'analytic' or 'sim'"
            )
        if spec.family == "cnn":
            raise ValueError(
                f"{spec.name} runs pure data parallel (no pipeline to trace)"
            )
        traits = _framework_traits(job.framework)
        cal = self.machine.cal
        g_inter, _g_data, m, t_f, t_b = _gpt_decomposition(
            spec, traits, job.n_gpus, job.sparsity, job.mbs, cal
        )
        with self._op("trace"):
            return simulate_hetero_pipeline(
                spec,
                g_inter=g_inter,
                m=m,
                mbs=job.mbs,
                t_f_model=t_f * g_inter,
                t_b_model=t_b * g_inter,
                n_gpus=job.n_gpus,
                cal=cal,
                scenario=scenario,
                blocking_sends=job.framework == "deepspeed-3d",
                partition_mode=job.partition_mode,
                placement=job.placement,
            )

    def place(
        self,
        job: Job,
        scenario=None,
        *,
        spec: ModelSpec | None = None,
        swap_sweeps: int = 2,
    ) -> PlacementResult:
        """Optimize the replica placement of ``job``'s pipeline.

        Searches assignments of pipeline-stage ranks to data-parallel
        replicas (greedy node packing + local swaps over
        :meth:`Topology.replica_pipeline_ranks`-style chains), minimizing
        the slowest replica's chain time under ``scenario``. The result
        is **never worse than the default block layout** — when nothing
        beats it, the block layout is returned.

        >>> from repro.api import Job, Machine, Session
        >>> res = Session(Machine.summit()).place(
        ...     Job(model="gpt3-2.7b", n_gpus=16))
        >>> res.makespan <= res.default_makespan
        True
        >>> res.placement.n_replicas == res.default_placement.n_replicas
        True
        """
        spec = self._resolve_spec(job, spec)
        _fidelity, scenario = resolve_fidelity(
            job.fidelity, scenario, default="sim",
            overlap=job.overlap, placement=job.placement,
        )
        if spec.family == "cnn":
            raise ValueError(
                f"{spec.name} runs pure data parallel (no pipeline to place)"
            )
        traits = _framework_traits(job.framework)
        cal = self.machine.cal
        g_inter, _g_data, m, t_f, t_b = _gpt_decomposition(
            spec, traits, job.n_gpus, job.sparsity, job.mbs, cal
        )
        with self._op("place"):
            return place_replicas(
                spec,
                g_inter=g_inter,
                m=m,
                mbs=job.mbs,
                t_f_model=t_f * g_inter,
                t_b_model=t_b * g_inter,
                n_gpus=job.n_gpus,
                cal=cal,
                scenario=scenario,
                blocking_sends=job.framework == "deepspeed-3d",
                partition_mode=job.partition_mode,
                swap_sweeps=swap_sweeps,
            )

    # -- search questions ---------------------------------------------------
    def plan(
        self,
        job: Job,
        scenario=None,
        *,
        frameworks: tuple = FRAMEWORKS,
        microbatch_sizes: tuple = (1, 2, 4),
        explore_no_checkpoint: bool = True,
        spec: ModelSpec | None = None,
    ) -> PlanResult:
        """Search the configuration space for ``job``'s workload.

        The job contributes model, GPU count, sparsity, fidelity,
        partition mode, and the overlap/placement costing knobs; the
        search axes (frameworks, microbatch sizes, checkpointing) stay
        free kwargs because they enumerate the space rather than
        identify the workload.

        >>> from repro.api import Job, Machine, Session
        >>> plan = Session(Machine.summit()).plan(
        ...     Job(model="gpt3-xl", n_gpus=64))
        >>> plan.best.config.framework
        'axonn+samo'
        >>> plan.best.total_time <= plan.feasible[-1].total_time
        True
        """
        spec = self._resolve_spec(job, spec)
        fidelity, scenario = resolve_fidelity(
            job.fidelity, scenario, overlap=job.overlap, placement=job.placement
        )
        space = SearchSpace(
            spec=spec,
            n_gpus=job.n_gpus,
            frameworks=frameworks,
            sparsities=(job.sparsity,),
            microbatch_sizes=microbatch_sizes,
            explore_no_checkpoint=explore_no_checkpoint,
            cal=self.machine.cal,
        )
        estimator = make_estimator(
            fidelity,
            spec,
            self.machine.cal,
            scenario=scenario,
            partition_mode=job.partition_mode,
            overlap=job.overlap,
            placement=job.placement,
        )
        from ..autotune.search import PlannerStats  # deferred: search wraps the api

        with self._op("plan"):
            return self._evaluate_space(
                spec, space, estimator, job.n_gpus, PlannerStats(),
                partition_mode=job.partition_mode,
            )

    def robust_plan(
        self,
        job: Job,
        scenarios,
        *,
        frameworks: tuple = FRAMEWORKS,
        microbatch_sizes: tuple = (1, 2, 4),
        explore_no_checkpoint: bool = True,
        spec: ModelSpec | None = None,
    ) -> RobustPlanResult:
        """Rank configurations by expected cost over a scenario set.

        Runs one :meth:`plan` per scenario in the set — every
        (config, scenario) evaluation lands in the shared cache, so
        re-planning the same distribution (or any overlapping one) costs
        nothing — then aggregates per candidate: probability-weighted
        expected time and the worst case with its culprit scenario. A
        neutral-only set reproduces :meth:`plan`'s ranking bit-exactly.

        >>> from repro.api import Job, Machine, Session
        >>> res = Session(Machine.summit()).robust_plan(
        ...     Job(model="gpt3-xl", n_gpus=64), "neutral")
        >>> res.best.worst_scenario
        'neutral'
        >>> res.best.expected_time == res.best.worst_time
        True
        """
        spec = self._resolve_spec(job, spec)
        sset = get_scenario_set(scenarios)
        fidelity = job.fidelity
        if fidelity is None:
            # one coherent fidelity for the whole set: degraded members —
            # or an overlap/placement job knob — need the event engine; a
            # neutral-only set without those knobs keeps the default
            needs_engine = (
                not sset.is_neutral_only or job.overlap or job.placement != "block"
            )
            fidelity = "sim" if needs_engine else "analytic"
        job = job.with_(fidelity=fidelity)

        per_scenario: dict[str, PlanResult] = {}
        with self._op("robust_plan"):
            try:
                probe = make_estimator(
                    fidelity, spec, self.machine.cal,
                    partition_mode=job.partition_mode,
                    overlap=job.overlap, placement=job.placement,
                )
            except Exception:
                # contradictions (e.g. analytic + overlap) surface with
                # their canonical message from the per-scenario loop below
                probe = None
            if probe is not None and getattr(probe, "supports_batch", False):
                per_scenario = self._robust_matrix(
                    job, spec, list(sset.labels()), list(sset.scenarios), probe,
                    frameworks=frameworks,
                    microbatch_sizes=microbatch_sizes,
                    explore_no_checkpoint=explore_no_checkpoint,
                )
            else:
                for label, (sc, _w) in zip(sset.labels(), sset.items()):
                    per_scenario[label] = self.plan(
                        job,
                        scenario=sc,
                        frameworks=frameworks,
                        microbatch_sizes=microbatch_sizes,
                        explore_no_checkpoint=explore_no_checkpoint,
                        spec=spec,
                    )

        entries = []
        labels = list(sset.labels())
        first = per_scenario[labels[0]]
        by_config = {
            label: {e.config: e for e in res.evaluations}
            for label, res in per_scenario.items()
        }
        # one (config, scenario) time matrix; expected/worst reduce as
        # array ops regardless of which path priced the cells
        times = np.array(
            [
                [by_config[label][ev.config].total_time for label in labels]
                for ev in first.evaluations
            ]
        )
        if len(labels) == 1:
            # exact degeneration: no float round-trip through the dot
            expected_arr = times[:, 0]
        else:
            expected_arr = times @ np.asarray(sset.weights)
        # argmax picks the first maximum, like max() over labels in order
        worst_idx = np.argmax(times, axis=1)
        for r, ev in enumerate(first.evaluations):
            worst_label = labels[int(worst_idx[r])]
            entries.append(
                RobustEvaluation(
                    config=ev.config,
                    expected_time=float(expected_arr[r]),
                    worst_time=float(times[r, worst_idx[r]]),
                    worst_scenario=worst_label,
                    per_scenario={
                        label: float(times[r, j])
                        for j, label in enumerate(labels)
                    },
                    memory_bytes=ev.memory_bytes,
                    feasible=all(
                        by_config[label][ev.config].feasible for label in labels
                    ),
                    batch_size=ev.batch_size,
                )
            )
        return RobustPlanResult(
            model=spec.name,
            n_gpus=job.n_gpus,
            # the job-level fidelity, not a per-scenario estimator label
            # like "sim@straggler" — this result spans the whole set
            fidelity=fidelity,
            budget_bytes=self.machine.gpu_memory_bytes,
            scenario_set=sset,
            entries=entries,
            per_scenario=per_scenario,
            stats={
                "scenarios": len(labels),
                "candidates": sum(r.stats.candidates for r in per_scenario.values()),
                "evaluated": sum(r.stats.evaluated for r in per_scenario.values()),
                "cache_hits": sum(r.stats.cache_hits for r in per_scenario.values()),
                "wall_seconds": round(
                    sum(r.stats.wall_seconds for r in per_scenario.values()), 4
                ),
            },
        )

    def _robust_matrix(
        self,
        job: Job,
        spec: ModelSpec,
        labels: list,
        columns: list,
        estimator: CostEstimator,
        *,
        frameworks: tuple,
        microbatch_sizes: tuple,
        explore_no_checkpoint: bool,
    ) -> dict[str, PlanResult]:
        """Price the full config × scenario matrix in ONE batch call.

        ``labels``/``columns`` name the scenario columns (a
        :class:`ScenarioSet`'s members for :meth:`robust_plan`, a
        :class:`~repro.stochastic.ScenarioProcess`'s reachable scenarios
        for :meth:`mc_robust_plan`). The scalar path runs one
        :meth:`plan` per scenario; a batch-capable estimator prices
        every cache-missing cell of the whole matrix at once instead,
        then back-fills only the missing cells into the shared cache
        (hit cells keep their cached evaluations). Per-label
        :class:`PlanResult`\\ s come out with the same evaluation
        ordering and accounting a per-scenario loop would produce, so a
        neutral-only column list degenerates to :meth:`plan`
        bit-identically.
        """
        from ..autotune.search import PlannerStats  # deferred: search wraps the api

        t0 = time.perf_counter()
        fidelity = estimator.fidelity
        space = SearchSpace(
            spec=spec,
            n_gpus=job.n_gpus,
            frameworks=frameworks,
            sparsities=(job.sparsity,),
            microbatch_sizes=microbatch_sizes,
            explore_no_checkpoint=explore_no_checkpoint,
            cal=self.machine.cal,
        )
        candidates = list(space.candidates())

        evaluations: dict[str, dict[CandidateConfig, Evaluation]] = {
            label: {} for label in labels
        }
        keys: dict[tuple[CandidateConfig, str], tuple] = {}
        missing: dict[CandidateConfig, set[str]] = {}
        for config in candidates:
            for label, col in zip(labels, columns):
                key = evaluation_cache_key(
                    self.machine, spec, fidelity, config,
                    scenario=col, partition_mode=job.partition_mode,
                )
                keys[(config, label)] = key
                cached = self.cache.get(key)
                if cached is not None:
                    evaluations[label][config] = cached
                else:
                    missing.setdefault(config, set()).add(label)

        metrics = OBS.metrics
        n_cells = len(candidates) * len(labels)
        n_misses = sum(len(v) for v in missing.values())
        metrics.counter("planner.candidates").inc(n_cells)
        metrics.counter("planner.cache.hits").inc(n_cells - n_misses)
        metrics.counter("planner.cache.misses").inc(n_misses)

        # single-flight stores coalesce cells another request is already
        # pricing: we evaluate only the cells we own, then collect the
        # rest from their owners' flights
        single_flight = getattr(self.cache, "supports_single_flight", False)
        flights: dict = {}
        missing_owned = missing
        if missing and single_flight:
            flat = [
                keys[(config, label)]
                for config in candidates
                if config in missing
                for label in labels
                if label in missing[config]
            ]
            owned_keys, flights, ready = self.cache.acquire(flat)
            if flights:
                metrics.counter("serve.inflight_coalesced").inc(len(flights))
            owned_set = set(owned_keys)
            missing_owned = {}
            for config, labs in missing.items():
                owned_labs = {
                    lab for lab in labs if keys[(config, lab)] in owned_set
                }
                if owned_labs:
                    missing_owned[config] = owned_labs
            by_key = {key: cl for cl, key in keys.items()}
            for key, ev in ready.items():
                config, label = by_key[key]
                evaluations[label][config] = ev

        miss_configs = [c for c in candidates if c in missing_owned]
        if miss_configs:
            calls = metrics.counter("estimator.calls", {"fidelity": fidelity})
            latency = metrics.histogram(
                "estimator.evaluate_seconds", {"fidelity": fidelity}
            )
            try:
                t = time.perf_counter()
                batch = estimator.evaluate_batch(miss_configs, scenarios=columns)
                dt = time.perf_counter() - t
                latency.observe(dt)
                calls.inc()
                metrics.counter(
                    "estimator.batch_rows", {"fidelity": fidelity}
                ).inc(len(miss_configs) * len(columns))
                if OBS.enabled:
                    OBS.tracer.record(
                        "estimator.evaluate_batch", t, t + dt,
                        category="robust_plan",
                        rows=len(miss_configs), scenarios=len(columns),
                    )
                for i, config in enumerate(miss_configs):
                    for j, label in enumerate(labels):
                        if label not in missing_owned[config]:
                            continue
                        ev = batch.evaluation(i, j)
                        key = keys[(config, label)]
                        if single_flight:
                            self.cache.fulfil(key, ev)
                        else:
                            self.cache.put(key, ev)
                        evaluations[label][config] = ev
            except BaseException as err:
                if single_flight:
                    for config, labs in missing_owned.items():
                        for lab in labs:
                            self.cache.abandon(keys[(config, lab)], err)
                raise
        for key, flight in flights.items():
            config, label = by_key[key]
            evaluations[label][config] = flight.result()

        wall = (time.perf_counter() - t0) / len(labels)
        per_scenario: dict[str, PlanResult] = {}
        for label in labels:
            stats = PlannerStats()
            stats.candidates = len(candidates)
            stats.pruned_memory = space.stats.pruned_memory
            stats.pruned_branches = space.stats.pruned_branches
            evaluated = sum(
                1 for c in miss_configs if label in missing_owned[c]
            )
            stats.evaluated = evaluated
            stats.cache_hits = len(candidates) - evaluated
            stats.wall_seconds = wall
            # hits land during the candidate scan, misses during
            # back-fill — both in candidate order, exactly like
            # _evaluate_space, so orderings agree across the two paths
            ordered = evaluations[label]
            per_scenario[label] = PlanResult(
                model=spec.name,
                n_gpus=job.n_gpus,
                fidelity=fidelity,
                budget_bytes=self.machine.gpu_memory_bytes,
                evaluations=list(ordered.values()),
                stats=stats,
            )
        return per_scenario

    # -- stochastic questions -----------------------------------------------
    def mc_robust_plan(
        self,
        job: Job,
        process,
        *,
        samples: int = 32,
        seed: int = 0,
        crn: bool = True,
        frameworks: tuple = FRAMEWORKS,
        microbatch_sizes: tuple = (1, 2, 4),
        explore_no_checkpoint: bool = True,
        spec: ModelSpec | None = None,
    ):
        """Monte-Carlo robust plan over a sampled failure process.

        Draws ``samples`` degradation timelines from ``process`` (a
        :class:`~repro.stochastic.ScenarioProcess` or a name from
        :data:`~repro.stochastic.PROCESSES`), prices every candidate on
        every draw — by common random numbers across candidates unless
        ``crn=False`` — and ranks by mean cost with 95% confidence
        intervals; statistically tied leaders are flagged. A process
        that can never fire degenerates to :meth:`plan` bit-identically.

        >>> from repro.api import Job, Machine, Session
        >>> res = Session(Machine.summit()).mc_robust_plan(
        ...     Job(model="gpt3-xl", n_gpus=16), "calm", samples=4, seed=7)
        >>> res.best.std_time == 0.0
        True
        >>> res.fidelity
        'analytic'
        """
        from ..stochastic.monte_carlo import run_mc_robust_plan

        spec = self._resolve_spec(job, spec)
        with self._op("mc_robust_plan"):
            return run_mc_robust_plan(
                self, job, process,
                samples=samples, seed=seed, crn=crn,
                frameworks=frameworks,
                microbatch_sizes=microbatch_sizes,
                explore_no_checkpoint=explore_no_checkpoint,
                spec=spec,
            )

    def replan(
        self,
        job: Job,
        failure,
        *,
        at: float = 0.5,
        horizon_batches: float = 500.0,
        migration_seconds: float | None = None,
        spec: ModelSpec | None = None,
    ):
        """Ride out a mid-job failure, or pay a migration to repair?

        ``failure`` is a scenario (name or instance) — or a sampled
        :class:`~repro.stochastic.ScenarioEvent`, which carries its own
        arrival time. Prices "keep the configuration" against
        time-balanced re-partitioning, optimized re-placement, and both,
        each charged ``migration_seconds`` (default: one stage's fp16
        parameter shard over the calibrated inter-node link), and
        returns the break-even :class:`~repro.stochastic.ReplanDecision`.

        >>> from repro.api import Job, Machine, Session
        >>> d = Session(Machine.summit()).replan(
        ...     Job(model="gpt3-2.7b", n_gpus=16), "straggler", at=0.5)
        >>> d.remaining_batches
        250.0
        >>> d.ride_seconds >= min(o.total_seconds for o in d.options) \\
        ...     or d.decision == "ride"
        True
        """
        from ..stochastic.replan import run_replan

        spec = self._resolve_spec(job, spec)
        with self._op("replan"):
            return run_replan(
                self, job, failure,
                at=at,
                horizon_batches=horizon_batches,
                migration_seconds=migration_seconds,
                spec=spec,
            )

    # -- the search loop (shared with the legacy Planner) -------------------
    def _evaluate_space(
        self,
        spec: ModelSpec,
        space: SearchSpace,
        estimator: CostEstimator,
        n_gpus: int,
        stats,
        partition_mode: str = "flops",
    ) -> PlanResult:
        """Enumerate, memoise, evaluate concurrently, rank.

        Cache keys derive from the frozen Machine identity plus the
        estimator's fidelity label, scenario, and each config's
        canonical hash (:func:`~repro.autotune.cache.evaluation_cache_key`).
        """
        t0 = time.perf_counter()
        fidelity = estimator.fidelity
        candidates = list(space.candidates())
        stats.candidates = len(candidates)
        stats.pruned_memory = space.stats.pruned_memory
        stats.pruned_branches = space.stats.pruned_branches

        evaluations: dict[CandidateConfig, Evaluation] = {}
        misses: list[tuple[tuple, CandidateConfig]] = []
        scenario = getattr(estimator, "scenario", None)
        for config in candidates:
            key = evaluation_cache_key(
                self.machine, spec, fidelity, config,
                scenario=scenario, partition_mode=partition_mode,
            )
            cached = self.cache.get(key)
            if cached is not None:
                evaluations[config] = cached
                stats.cache_hits += 1
            else:
                misses.append((key, config))

        metrics = OBS.metrics
        metrics.counter("planner.candidates").inc(len(candidates))
        metrics.counter("planner.cache.hits").inc(len(candidates) - len(misses))
        metrics.counter("planner.cache.misses").inc(len(misses))

        if misses:
            # single-flight stores (repro.serve) hand each missing key to
            # exactly one concurrent request; everyone else waits on the
            # owner's in-flight evaluation instead of re-pricing it
            single_flight = getattr(self.cache, "supports_single_flight", False)
            if single_flight:
                owned_keys, flights, ready = self.cache.acquire(
                    [k for k, _ in misses]
                )
                if flights:
                    metrics.counter("serve.inflight_coalesced").inc(len(flights))
            else:
                owned_keys, flights, ready = [k for k, _ in misses], {}, {}
            results: dict[tuple, Evaluation] = dict(ready)
            owned_set = set(owned_keys)
            owned = [(k, c) for k, c in misses if k in owned_set]
            stats.evaluated = len(owned)
            stats.cache_hits += len(misses) - len(owned)

            def publish(key: tuple, ev: Evaluation) -> None:
                if single_flight:
                    self.cache.fulfil(key, ev)
                else:
                    self.cache.put(key, ev)
                results[key] = ev

            if owned:
                calls = metrics.counter("estimator.calls", {"fidelity": fidelity})
                latency = metrics.histogram(
                    "estimator.evaluate_seconds", {"fidelity": fidelity}
                )
                try:
                    if getattr(estimator, "supports_batch", False):
                        # vectorized path: price every miss in ONE call,
                        # then back-fill the shared cache cell-by-cell so a
                        # later scalar run (or the reverse) interconverts
                        t = time.perf_counter()
                        batch = estimator.evaluate_batch(c for _, c in owned)
                        dt = time.perf_counter() - t
                        latency.observe(dt)
                        calls.inc()
                        metrics.counter(
                            "estimator.batch_rows", {"fidelity": fidelity}
                        ).inc(len(owned))
                        if OBS.enabled:
                            OBS.tracer.record(
                                "estimator.evaluate_batch", t, t + dt,
                                category="plan", rows=len(owned),
                            )
                        for row, (key, _config) in enumerate(owned):
                            publish(key, batch.evaluation(row, 0))
                    else:
                        def evaluate(config: CandidateConfig) -> Evaluation:
                            t = time.perf_counter()
                            ev = estimator.evaluate(config)
                            latency.observe(time.perf_counter() - t)
                            calls.inc()
                            return ev

                        with concurrent.futures.ThreadPoolExecutor(
                            max_workers=self.max_workers
                        ) as pool:
                            for (key, _config), ev in zip(
                                owned, pool.map(evaluate, (c for _, c in owned))
                            ):
                                publish(key, ev)
                except BaseException as err:
                    if single_flight:
                        # wake coalesced waiters instead of hanging them
                        for key, _config in owned:
                            self.cache.abandon(key, err)
                    raise
            for key, flight in flights.items():
                results[key] = flight.result()
            # hits landed during the candidate scan; misses back-fill here
            # in candidate order regardless of who priced them, so the
            # ordering matches the legacy single-owner path exactly
            for key, config in misses:
                evaluations[config] = results[key]

        stats.wall_seconds = time.perf_counter() - t0
        return PlanResult(
            model=spec.name,
            n_gpus=n_gpus,
            fidelity=fidelity,
            budget_bytes=self.machine.gpu_memory_bytes,
            evaluations=list(evaluations.values()),
            stats=stats,
        )
