"""``repro.api`` — the canonical front door to the cost model.

One session facade over every entry point the repo grew across PRs 1-3
(``simulate_batch`` kwargs, ``Planner``'s constructor, CLI preset
strings), built from three frozen, hashable, serializable value
objects::

    from repro.api import Job, Machine, Session

    session = Session(Machine.summit())
    job = Job(model="gpt3-2.7b", n_gpus=512, framework="axonn+samo")

    session.breakdown(job)                  # Figure-8 phase breakdown
    session.trace(job.with_(fidelity="sim"))  # event-driven 1F1B trace
    session.plan(job)                       # configuration search
    session.robust_plan(job, "mixed-degraded")  # expected-cost ranking
                                                # over a scenario set

* :class:`Job` — what is trained and how it should be costed;
* :class:`Machine` — calibration + memory budget + topology;
* :class:`ScenarioSet` — weighted machine-condition distributions
  (named presets in :data:`SCENARIO_SETS`);
* :class:`Session` — ``breakdown`` / ``trace`` / ``plan`` /
  ``robust_plan``, all sharing one evaluation cache keyed on the frozen
  value objects.

New costing backends plug in through
:func:`~repro.autotune.estimator.register_estimator` instead of editing
a factory. The legacy entry points keep working as thin wrappers over
:class:`Session`.
"""

from ..autotune.estimator import (
    available_fidelities,
    make_estimator,
    register_estimator,
)
from ..parallel.placement import Placement, PlacementResult
from ..stochastic import (
    PROCESSES,
    MCCandidate,
    MCRobustResult,
    ReplanDecision,
    ScenarioProcess,
    get_process,
)
from ..parallel.scenarios import SCENARIOS, ClusterScenario, get_scenario
from .job import Job
from .machine import Machine
from .scenario_set import SCENARIO_SETS, ScenarioSet, get_scenario_set
from .session import RobustEvaluation, RobustPlanResult, Session

__all__ = [
    "Job",
    "Machine",
    "ScenarioSet",
    "SCENARIO_SETS",
    "get_scenario_set",
    "ClusterScenario",
    "SCENARIOS",
    "get_scenario",
    "Session",
    "RobustEvaluation",
    "RobustPlanResult",
    "ScenarioProcess",
    "PROCESSES",
    "get_process",
    "MCCandidate",
    "MCRobustResult",
    "ReplanDecision",
    "Placement",
    "PlacementResult",
    "register_estimator",
    "available_fidelities",
    "make_estimator",
]
