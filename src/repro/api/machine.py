"""The machine half of a costing question: calibration, budget, topology.

A :class:`Machine` is a frozen value object wrapping the calibrated
cluster description every cost-model entry point used to thread by hand
(``cal=...``, ``budget_gb=...``). Being frozen and hashable it can key
evaluation caches directly — the planner's cache keys derive from
:meth:`Machine.canonical_key` instead of hand-assembled tuples.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..cluster.calibration import SUMMIT, SummitCalibration, with_memory_budget
from ..cluster.topology import Topology

__all__ = ["Machine"]


@dataclass(frozen=True)
class Machine:
    """A calibrated cluster: compute/communication constants + memory budget.

    The per-GPU memory budget is folded into the calibration (via
    :func:`~repro.cluster.calibration.with_memory_budget`), so two
    machines with equal calibrations are the same machine — same hash,
    same cache entries.

    >>> m = Machine.summit(budget_gb=12)
    >>> m.gpu_memory_bytes == 12 * 1024**3
    True
    >>> m.gpus_per_node
    6
    >>> m == Machine.summit(budget_gb=12)  # frozen value object
    True
    >>> m.topology(12).n_nodes
    2
    """

    cal: SummitCalibration = SUMMIT
    name: str = "summit"

    @classmethod
    def summit(cls, budget_gb: float | None = None) -> "Machine":
        """The default simulated Summit, optionally re-budgeted."""
        return cls().with_budget(budget_gb)

    def with_budget(self, budget_gb: float | None) -> "Machine":
        """Same machine with a different per-GPU memory budget (GB)."""
        if budget_gb is None:
            return self
        return Machine(cal=with_memory_budget(budget_gb, self.cal), name=self.name)

    # ------------------------------------------------------------------
    @property
    def gpu_memory_bytes(self) -> int:
        return self.cal.gpu_memory_bytes

    @property
    def gpus_per_node(self) -> int:
        return self.cal.gpus_per_node

    def topology(self, n_gpus: int) -> Topology:
        """The node/link layout of ``n_gpus`` ranks on this machine."""
        return Topology(n_gpus, self.cal)

    # ------------------------------------------------------------------
    def canonical_key(self) -> SummitCalibration:
        """Hashable identity used in evaluation cache keys.

        The resolved calibration *is* the machine for costing purposes
        (``name`` is a label), and returning it keeps Machine-derived
        keys compatible with legacy call sites that pass a bare
        calibration.
        """
        return self.cal

    def canonical_hash(self) -> str:
        """Short stable digest of the calibration."""
        payload = repr(self.cal)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "calibration": {
                f: getattr(self.cal, f)
                for f in self.cal.__dataclass_fields__
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Machine":
        return cls(
            cal=SummitCalibration(**data["calibration"]),
            name=data.get("name", "summit"),
        )
