"""repro — reproduction of *Exploiting Sparsity in Pruned Neural Networks
to Optimize Large Model Training* (Singh & Bhatele, IPDPS 2023).

Subpackages
-----------
``repro.core``
    SAMO: compressed shared-index model state, compression/expansion,
    the analytical memory model (Eqs. 1-5), and the SAMO optimizer step.
``repro.tensor``
    NumPy autograd engine (the dense-compute substrate).
``repro.models``
    GPT-3 family / VGG-19 / WideResnet-101 — analytical specs at paper
    scale, runnable tiny variants.
``repro.pruning``
    Early-Bird Tickets, magnitude, iterative (LTH), random masks.
``repro.optim``
    Adam/AdamW/SGD with shared in-place kernels, schedules, clipping.
``repro.sparse``
    spMM/sDDMM kernels + calibrated cuBLAS/cuSPARSE/Sputnik models (Fig 1).
``repro.cluster``
    Simulated Summit: topology, device, events, collectives (calibrated).
``repro.comm``
    Thread-rank communicator with MPI semantics (functional parallelism).
``repro.parallel``
    AxoNN / AxoNN+SAMO / DeepSpeed-3D / Sputnik batch simulators,
    pipeline schedules, partitioner, Eqs. 6-11.
``repro.train``
    Mixed-precision trainer, synthetic corpora, metrics (Fig 4).
``repro.reporting``
    ASCII tables/plots used by the benchmark harness.
``repro.autotune``
    Parallel-configuration planner: enumerates valid ``(framework,
    G_tensor, G_inter, G_data, mbs, checkpointing, storage, sparsity)``
    configs, costs them through the analytical models (or the
    event-driven pipeline simulator), memoises evaluations, and reports
    the best config plus a (throughput, memory) Pareto frontier —
    ``python -m repro plan --model gpt3-2.7b --gpus 512``.
``repro.api``
    The canonical front door: frozen ``Job``/``Machine``/``ScenarioSet``
    value objects consumed by a ``Session`` facade
    (``breakdown``/``trace``/``plan``/``robust_plan``) over every
    cost-model entry point, with robust planning across weighted
    scenario distributions. The legacy surfaces above remain as thin
    wrappers.
``repro.obs``
    Observability: span tracer + metrics registry behind no-op
    defaults, Chrome ``trace_event`` export (Perfetto-loadable), and
    the ``Session``/CLI wiring (``Session(trace_to=...)``,
    ``Session.metrics()``, ``repro trace --chrome out.json``).
"""

from . import (
    api,
    autotune,
    cluster,
    comm,
    core,
    models,
    obs,
    optim,
    parallel,
    pruning,
    reporting,
    sparse,
    tensor,
    train,
)
from .core import (
    SAMOConfig,
    SAMOOptimizer,
    SAMOTrainingState,
    compress,
    expand,
    load_state,
    save_state,
)
from .pruning import EarlyBirdPruner, MaskSet, magnitude_prune, random_prune
from .train import Trainer

__version__ = "1.0.0"

__all__ = [
    "api",
    "autotune",
    "obs",
    "core",
    "tensor",
    "models",
    "pruning",
    "optim",
    "sparse",
    "cluster",
    "comm",
    "parallel",
    "train",
    "reporting",
    "SAMOConfig",
    "SAMOOptimizer",
    "SAMOTrainingState",
    "compress",
    "expand",
    "MaskSet",
    "EarlyBirdPruner",
    "magnitude_prune",
    "random_prune",
    "Trainer",
    "save_state",
    "load_state",
    "__version__",
]
