"""Batch evaluation engine: element-wise parity, cache interop, obs.

The vectorized ``analytic-batch`` fidelity re-expresses Eqs. 6-11 as
numpy array programs over the candidate grid × scenario set. The scalar
:class:`AnalyticEstimator` stays the ground truth, so the contract
pinned here is strict:

* every batch cell matches the scalar path element-wise (time, memory,
  feasibility, and each Figure-8 phase) across ALL named scenario sets
  and both model families — to 1e-9 relative tolerance (in practice the
  drift is exactly 0.0: the array program mirrors the scalar float ops
  in the same association order);
* scalar and batch runs share ``evaluation_cache_key`` entries, so a
  warm-start in either direction is pure cache hits;
* obs counters reconcile on the batch path (``cache.hits +
  cache.misses == planner.candidates``) and the new
  ``estimator.batch_rows`` counter sizes the one-shot pricing;
* ``robust_plan`` prices the full config × scenario matrix in ONE
  ``evaluate_batch`` call and agrees with the per-scenario loop; a
  neutral-only set degenerates to ``plan`` bit-identically;
* the per-stage overlap payloads satellite: uniform fractions reproduce
  the default exactly, and refining one stage's share is monotone.
"""

import numpy as np
import pytest

from repro.api import Job, Machine, Session
from repro.api.scenario_set import SCENARIO_SETS, get_scenario_set
from repro.autotune import (
    AnalyticEstimator,
    CandidateConfig,
    EvaluationCache,
    VectorizedAnalyticEstimator,
    crosscheck_batch,
    evaluation_cache_key,
    make_estimator,
)
from repro.autotune.space import SearchSpace
from repro.models import get_spec
from repro.parallel.scenarios import (
    get_scenario,
    overlap_exposed_collective,
    stage_payload_fractions,
)

#: scenario sets whose every member leaves the pipeline phase alone —
#: the ones the closed-form batch fidelity can price for transformers
COLLECTIVE_ONLY_SETS = ("neutral", "collective-degraded", "hierarchical-mixed")
#: sets with at least one pipeline-degrading member (event engine only)
PIPELINE_SETS = ("mixed-degraded", "pipeline-degraded")


def _columns(set_name):
    return get_scenario_set(set_name).scenarios


@pytest.fixture(scope="module")
def xl_space():
    spec = get_spec("gpt3-xl")
    return spec, list(SearchSpace(spec, 64).candidates())


@pytest.fixture(scope="module")
def cnn_space():
    spec = get_spec("wideresnet-101")
    return spec, list(SearchSpace(spec, 32).candidates())


@pytest.fixture(scope="module")
def session():
    return Session(Machine.summit())


@pytest.fixture(scope="module")
def trace(session):
    return session.trace(
        Job(model="gpt3-2.7b", n_gpus=128, fidelity="sim"), scenario="degraded-ring"
    )


class TestElementWiseParity:
    """evaluate_batch == scalar evaluate, cell by cell, ~1e-9 rel tol."""

    @pytest.mark.parametrize("set_name", COLLECTIVE_ONLY_SETS)
    def test_transformer_grid(self, xl_space, set_name):
        spec, configs = xl_space
        est = VectorizedAnalyticEstimator(spec)
        report = crosscheck_batch(est, configs, _columns(set_name), rel_tol=1e-9)
        assert report["ok"], report["mismatches"]
        assert report["cells"] == len(configs) * len(_columns(set_name))
        assert max(report["max_rel_drift"].values()) <= 1e-9

    @pytest.mark.parametrize("set_name", sorted(SCENARIO_SETS))
    def test_cnn_grid(self, cnn_space, set_name):
        """CNNs run pure data parallel: the pipeline knobs are inert, so
        every named set prices (matching the sim engine's CNN path)."""
        spec, configs = cnn_space
        est = VectorizedAnalyticEstimator(spec)
        report = crosscheck_batch(est, configs, _columns(set_name), rel_tol=1e-9)
        assert report["ok"], report["mismatches"]
        assert max(report["max_rel_drift"].values()) <= 1e-9

    @pytest.mark.parametrize("set_name", PIPELINE_SETS)
    def test_transformer_rejects_pipeline_scenarios(self, xl_space, set_name):
        spec, configs = xl_space
        est = VectorizedAnalyticEstimator(spec)
        with pytest.raises(ValueError, match="degrades the pipeline"):
            est.evaluate_batch(configs[:4], _columns(set_name))

    def test_neutral_column_is_bit_identical_to_plain_analytic(self, xl_space):
        """The neutral column matches AnalyticEstimator exactly — not
        merely within tolerance — so either path may fill the cache."""
        spec, configs = xl_space
        scalar = AnalyticEstimator(spec)
        batch = VectorizedAnalyticEstimator(spec).evaluate_batch(configs)
        for i, config in enumerate(configs):
            ev = scalar.evaluate(config)
            cell = batch.evaluation(i, 0)
            want, got = ev.breakdown.to_dict(), cell.breakdown.to_dict()
            # only the fidelity label may differ — it names the engine
            assert want["notes"].pop("fidelity") == "analytic"
            assert got["notes"].pop("fidelity") == "analytic-batch"
            assert got == want
            assert cell.memory_bytes == ev.memory_bytes
            assert cell.feasible == ev.feasible
            assert cell.batch_size == ev.batch_size

    def test_scalar_fallback_matches_evaluate(self, xl_space):
        """The base-class evaluate_batch (scalar loop) answers the same
        protocol: cell (i, 0) is exactly evaluate(configs[i])."""
        spec, configs = xl_space
        est = AnalyticEstimator(spec)
        assert not est.supports_batch
        batch = est.evaluate_batch(configs[:8])
        assert batch.n_configs == 8 and batch.n_scenarios == 1
        for i, config in enumerate(configs[:8]):
            ev = est.evaluate(config)
            assert batch.evaluation(i, 0).breakdown.total == ev.breakdown.total
            assert float(batch.total[i, 0]) == ev.breakdown.total

    def test_divisibility_error(self):
        """gpt3-xl's batch of 512 does not split across G_data=3."""
        spec = get_spec("gpt3-xl")
        bad = CandidateConfig.create("axonn", g_data=3)
        with pytest.raises(ValueError, match="not divisible"):
            VectorizedAnalyticEstimator(spec).evaluate_batch([bad])


class TestRegistryAndGating:
    def test_registered_fidelity(self):
        spec = get_spec("gpt3-xl")
        est = make_estimator("analytic-batch", spec)
        assert isinstance(est, VectorizedAnalyticEstimator)
        assert est.fidelity == "analytic-batch"
        assert est.supports_batch and est.supports_scenarios

    def test_rejects_engine_only_knobs(self):
        spec = get_spec("gpt3-xl")
        with pytest.raises(ValueError, match="event-driven"):
            make_estimator("analytic-batch", spec, partition_mode="time")
        with pytest.raises(ValueError, match="event-driven"):
            make_estimator("analytic-batch", spec, overlap=True)
        with pytest.raises(ValueError, match="event-driven"):
            make_estimator("analytic-batch", spec, placement="best")

    def test_constructor_gates_pipeline_scenarios_by_family(self):
        with pytest.raises(ValueError, match="degrades the pipeline"):
            VectorizedAnalyticEstimator(get_spec("gpt3-xl"), scenario="straggler")
        # CNNs accept any scenario: pure DP ignores the pipeline knobs
        VectorizedAnalyticEstimator(get_spec("wideresnet-101"), scenario="straggler")

    def test_scenario_names_resolve(self, xl_space):
        spec, configs = xl_space
        batch = VectorizedAnalyticEstimator(spec).evaluate_batch(
            configs[:3], ["degraded-ring"]
        )
        assert batch.scenarios[0] == get_scenario("degraded-ring")


class TestCacheInterop:
    """Scalar and batch runs share evaluation_cache_key entries."""

    def test_scalar_warm_start_makes_batch_all_hits(self):
        cache = EvaluationCache()
        machine = Machine.summit()
        spec = get_spec("gpt3-xl")
        session = Session(machine, cache=cache)
        # warm the cache through the SCALAR path of the same fidelity
        est = VectorizedAnalyticEstimator(spec, machine.cal)
        for config in SearchSpace(spec, 64, cal=machine.cal).candidates():
            key = evaluation_cache_key(
                machine, spec, "analytic-batch", config,
                scenario=None, partition_mode="flops",
            )
            cache.put(key, est.evaluate(config))
        res = session.plan(Job(model="gpt3-xl", n_gpus=64, fidelity="analytic-batch"))
        assert res.stats.cache_hits == res.stats.candidates
        assert res.stats.evaluated == 0

    def test_batch_cold_run_back_fills_scalar_cells(self):
        cache = EvaluationCache()
        machine = Machine.summit()
        spec = get_spec("gpt3-xl")
        session = Session(machine, cache=cache)
        res = session.plan(Job(model="gpt3-xl", n_gpus=64, fidelity="analytic-batch"))
        assert res.stats.evaluated == res.stats.candidates
        est = VectorizedAnalyticEstimator(spec, machine.cal)
        for ev in res.evaluations:
            key = evaluation_cache_key(
                machine, spec, "analytic-batch", ev.config,
                scenario=None, partition_mode="flops",
            )
            cached = cache.get(key)
            assert cached is not None
            scalar = est.evaluate(ev.config)
            assert cached.breakdown.to_dict() == scalar.breakdown.to_dict()
            assert cached.memory_bytes == scalar.memory_bytes

    def test_replan_is_pure_hits(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        job = Job(model="gpt3-xl", n_gpus=64, fidelity="analytic-batch")
        first = session.plan(job)
        again = session.plan(job)
        assert first.best.total_time == again.best.total_time
        assert again.stats.cache_hits == again.stats.candidates

    def test_batch_plan_matches_scalar_plan(self):
        """Same ranking, same totals: only the pricing engine changed."""
        machine = Machine.summit()
        job = Job(model="gpt3-xl", n_gpus=64)
        scalar = Session(machine, cache=EvaluationCache()).plan(
            job.with_(fidelity="analytic")
        )
        batch = Session(machine, cache=EvaluationCache()).plan(
            job.with_(fidelity="analytic-batch")
        )
        assert [e.config for e in batch.evaluations] == [
            e.config for e in scalar.evaluations
        ]
        assert [e.total_time for e in batch.evaluations] == [
            e.total_time for e in scalar.evaluations
        ]


class TestObsReconciliation:
    def test_plan_batch_path_counters(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        res = session.plan(Job(model="gpt3-xl", n_gpus=64, fidelity="analytic-batch"))
        snap = session.registry.snapshot()
        hits = snap.get("planner.cache.hits", 0)
        misses = snap.get("planner.cache.misses", 0)
        assert hits + misses == snap["planner.candidates"] == res.stats.candidates
        assert snap['estimator.batch_rows{fidelity="analytic-batch"}'] == misses
        # ONE pricing call for the whole grid
        assert snap['estimator.calls{fidelity="analytic-batch"}'] == 1

    def test_robust_matrix_counters(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        job = Job(model="gpt3-xl", n_gpus=64, fidelity="analytic-batch")
        res = session.robust_plan(job, "collective-degraded")
        snap = session.registry.snapshot()
        sset = get_scenario_set("collective-degraded")
        n_labels = len(sset.labels())
        n_cells = res.per_scenario[sset.labels()[0]].stats.candidates * n_labels
        hits = snap.get("planner.cache.hits", 0)
        misses = snap.get("planner.cache.misses", 0)
        assert hits + misses == snap["planner.candidates"] == n_cells
        # the whole miss submatrix is priced in one call
        assert snap['estimator.batch_rows{fidelity="analytic-batch"}'] == misses
        assert snap['estimator.calls{fidelity="analytic-batch"}'] == 1


class TestRobustMatrix:
    def test_matrix_equals_per_scenario_loop(self):
        machine = Machine.summit()
        job = Job(model="gpt3-xl", n_gpus=64, fidelity="analytic-batch")
        matrix = Session(machine, cache=EvaluationCache()).robust_plan(
            job, "collective-degraded"
        )
        loop_session = Session(machine, cache=EvaluationCache())
        sset = get_scenario_set("collective-degraded")
        for label, (scenario, _w) in zip(sset.labels(), sset.items()):
            loop = loop_session.plan(job, scenario=scenario)
            mat = matrix.per_scenario[label]
            assert [e.config for e in mat.evaluations] == [
                e.config for e in loop.evaluations
            ], label
            assert [e.total_time for e in mat.evaluations] == [
                e.total_time for e in loop.evaluations
            ], label

    def test_weighted_reduction(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        job = Job(model="gpt3-xl", n_gpus=64, fidelity="analytic-batch")
        res = session.robust_plan(job, "hierarchical-mixed")
        sset = get_scenario_set("hierarchical-mixed")
        weights = np.asarray(sset.weights)
        for entry in res.entries[:10]:
            times = np.array([entry.per_scenario[l] for l in sset.labels()])
            assert entry.expected_time == pytest.approx(
                float(times @ weights), rel=1e-12
            )
            assert entry.worst_time == times.max()
            assert entry.per_scenario[entry.worst_scenario] == entry.worst_time

    def test_neutral_set_degenerates_to_plan_bit_identically(self):
        machine = Machine.summit()
        job = Job(model="gpt3-xl", n_gpus=64, fidelity="analytic-batch")
        robust = Session(machine, cache=EvaluationCache()).robust_plan(job, "neutral")
        plain = Session(machine, cache=EvaluationCache()).plan(job)
        assert robust.best.expected_time == plain.best.total_time
        assert robust.best.worst_time == plain.best.total_time
        assert robust.best.worst_scenario == "neutral"
        assert {e.config: e.expected_time for e in robust.entries} == {
            e.config: e.total_time for e in plain.evaluations
        }


class TestPerStageOverlapPayloads:
    """Satellite: per-stage gradient payloads from the PartitionPlan."""

    COMM = 0.6259578  # the degraded-ring additive collective at 128 GPUs

    def test_uniform_fractions_reproduce_default_exactly(self, trace):
        g = trace.g_inter
        default = overlap_exposed_collective(trace, self.COMM, n_buckets=8)
        uniform = overlap_exposed_collective(
            trace, self.COMM, n_buckets=8, stage_fractions=[1.0 / g] * g
        )
        assert uniform.exposed == default.exposed
        assert uniform.per_stage_exposed == default.per_stage_exposed

    def test_monotone_refinement(self, trace):
        """Growing one stage's payload share (renormalised) never
        decreases that stage's exposure, and the accounting identity
        exposed + hidden == additive holds at every refinement."""
        fractions = list(stage_payload_fractions(get_spec("gpt3-2.7b"), trace.g_inter))
        last = None
        for bump in (1.0, 1.5, 2.0, 3.0):
            f = list(fractions)
            f[0] *= bump
            total = sum(f)
            f = [x / total for x in f]
            rep = overlap_exposed_collective(
                trace, self.COMM, n_buckets=8, stage_fractions=f
            )
            assert rep.exposed + rep.hidden == pytest.approx(self.COMM, abs=1e-12)
            stage0 = rep.per_stage_exposed[0]
            if last is not None:
                assert stage0 >= last - 1e-12, f"bump {bump} decreased stage-0 exposure"
            last = stage0

    def test_fractions_validated(self, trace):
        g = trace.g_inter
        with pytest.raises(ValueError, match="stage_fractions"):
            overlap_exposed_collective(trace, 0.5, stage_fractions=[0.5, 0.5])
        with pytest.raises(ValueError, match="stage_fractions"):
            overlap_exposed_collective(
                trace, 0.5,
                stage_fractions=[-0.1] + [1.1 / (g - 1)] * (g - 1),
            )


class TestEvaluationBatchShape:
    def test_soa_arrays_and_totals(self, xl_space):
        spec, configs = xl_space
        columns = _columns("collective-degraded")
        batch = VectorizedAnalyticEstimator(spec).evaluate_batch(configs, columns)
        n, s = len(configs), len(columns)
        assert batch.total.shape == (n, s)
        for phase in ("compute", "p2p", "bubble", "collective", "other"):
            assert getattr(batch, phase).shape == (n, s)
        assert batch.memory_bytes.shape == (n,)
        assert batch.memory_bytes.dtype == np.int64
        assert batch.feasible.dtype == bool
        total = (
            batch.compute + batch.p2p + batch.bubble + batch.collective + batch.other
        )
        assert np.array_equal(batch.total, total)
