"""Module system, layers, attention, and the model zoo (Table I shapes)."""

import numpy as np
import pytest

from repro.models import (
    GPT,
    GPT_CONFIGS,
    TABLE_I,
    build_vgg,
    build_wide_resnet,
    get_spec,
    gpt_spec,
    gpu_counts,
    narayanan_transformer_flops,
    percent_of_peak,
    table_rows,
    vgg_spec,
    wide_resnet_spec,
)
from repro.tensor import (
    CausalSelfAttention,
    Linear,
    Module,
    Parameter,
    Sequential,
    Tensor,
    functional as F,
)


class TestModuleSystem:
    def test_named_parameters_dotted_paths(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(4, 8)
                self.inner = Sequential(Linear(8, 8), Linear(8, 2))

        names = [n for n, _ in Net().named_parameters()]
        assert "fc1.weight" in names and "inner.0.weight" in names and "inner.1.bias" in names

    def test_prunable_flags(self):
        lin = Linear(4, 8)
        assert lin.weight.prunable and not lin.bias.prunable

    def test_state_dict_roundtrip(self, rng):
        m1, m2 = Linear(4, 8, rng=rng), Linear(4, 8, rng=rng)
        m2.load_state_dict(m1.state_dict())
        assert np.array_equal(m1.weight.data, m2.weight.data)

    def test_state_dict_shape_mismatch_raises(self):
        m1, m2 = Linear(4, 8), Linear(4, 9)
        with pytest.raises(ValueError):
            m2.load_state_dict(m1.state_dict())

    def test_train_eval_recursive(self):
        net = Sequential(Linear(4, 4), Sequential(Linear(4, 4)))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self, rng):
        m = Linear(4, 2, rng=rng)
        m(Tensor(rng.normal(size=(3, 4)).astype(np.float32))).sum().backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None

    def test_num_parameters_prunable_only(self):
        m = Linear(4, 8)
        assert m.num_parameters() == 4 * 8 + 8
        assert m.num_parameters(prunable_only=True) == 4 * 8

    def test_buffers_in_state_dict(self):
        from repro.tensor import BatchNorm2d

        bn = BatchNorm2d(3)
        sd = bn.state_dict()
        assert "buffer:running_mean" in sd


class TestAttention:
    def test_causality(self, rng):
        """Changing a future token must not affect earlier outputs."""
        att = CausalSelfAttention(16, 4, rng=np.random.default_rng(0))
        att.eval()
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        y1 = att(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5] += 10.0  # perturb the last position
        y2 = att(Tensor(x2)).data
        assert np.allclose(y1[0, :5], y2[0, :5], atol=1e-5)
        assert not np.allclose(y1[0, 5], y2[0, 5], atol=1e-3)

    def test_head_divisibility_check(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(10, 3)

    def test_backward_produces_grads(self, rng):
        att = CausalSelfAttention(8, 2, rng=np.random.default_rng(0))
        att(Tensor(rng.normal(size=(2, 4, 8)).astype(np.float32))).sum().backward()
        assert att.qkv.grad is not None and att.proj.grad is not None


class TestGPT:
    def test_forward_shape(self, rng):
        m = GPT(GPT_CONFIGS["gpt3-tiny"], seed=0)
        toks = rng.integers(0, 128, size=(2, 16))
        assert m(toks).shape == (2, 16, 128)

    def test_loss_near_uniform_at_init(self, rng):
        m = GPT(GPT_CONFIGS["gpt3-tiny"], seed=0)
        toks = rng.integers(0, 128, size=(4, 32))
        loss = m.loss(toks[:, :-1], toks[:, 1:]).item()
        assert abs(loss - np.log(128)) < 0.5

    def test_context_overflow_raises(self, rng):
        m = GPT(GPT_CONFIGS["gpt3-tiny"], seed=0)
        with pytest.raises(ValueError):
            m(rng.integers(0, 128, size=(1, 100)))

    def test_seeded_construction_identical(self):
        m1, m2 = GPT(GPT_CONFIGS["gpt3-tiny"], seed=3), GPT(GPT_CONFIGS["gpt3-tiny"], seed=3)
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            assert np.array_equal(p1.data, p2.data)

    def test_tied_lm_head_no_extra_params(self):
        cfg = GPT_CONFIGS["gpt3-tiny"]
        m = GPT(cfg)
        spec = m.spec()
        # runnable count matches spec count exactly (weight tying included)
        assert m.num_parameters() == spec.param_count


class TestSpecs:
    @pytest.mark.parametrize("name,expected_b", [
        ("gpt3-xl", 1.316), ("gpt3-2.7b", 2.652), ("gpt3-6.7b", 6.658), ("gpt3-13b", 12.85),
    ])
    def test_gpt_param_counts_match_table1(self, name, expected_b):
        assert get_spec(name).param_count / 1e9 == pytest.approx(expected_b, rel=0.02)

    def test_vgg19_matches_torchvision_count(self):
        # 143.67M per Table I
        assert vgg_spec("E").param_count == pytest.approx(143.67e6, rel=0.001)

    def test_wideresnet101_matches_torchvision_count(self):
        # 126.89M per Table I
        assert wide_resnet_spec().param_count == pytest.approx(126.89e6, rel=0.002)

    def test_prunable_fraction_high(self):
        for name in TABLE_I:
            spec = get_spec(name)
            assert spec.prunable_count / spec.param_count > 0.95, name

    def test_stage_boundary_elems_gpt(self):
        spec = get_spec("gpt3-2.7b")
        assert spec.stage_boundary_message_elems(2) == 2048 * 2560

    def test_contiguous_slice(self):
        spec = get_spec("gpt3-xl")
        sub = spec.contiguous_slice(1, 5)
        assert sub.num_layers == 4

    def test_boundary_index_error(self):
        with pytest.raises(IndexError):
            get_spec("gpt3-xl").stage_boundary_message_elems(0)

    def test_gpu_counts_match_table1(self):
        assert gpu_counts(TABLE_I["gpt3-2.7b"]) == [64, 128, 256, 512]
        assert gpu_counts(TABLE_I["vgg19"]) == [16, 32, 64, 128]
        assert gpu_counts(TABLE_I["gpt3-13b"]) == [256, 512, 1024, 2048]

    def test_table_rows_complete(self):
        rows = table_rows()
        assert len(rows) == 6
        assert {r["Neural Network"] for r in rows} == set(TABLE_I)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_spec("gpt5")


class TestFlops:
    def test_narayanan_formula_2p7b(self):
        f = narayanan_transformer_flops(512, 2048, 32, 2560, 50257)
        assert f == pytest.approx(2.47e16, rel=0.05)

    def test_spec_flops_close_to_narayanan(self):
        """Layer-level accounting should agree with the closed form ~10%."""
        spec = get_spec("gpt3-2.7b")
        closed = narayanan_transformer_flops(512, 2048, 32, 2560, 50257)
        assert spec.total_flops_per_batch() == pytest.approx(closed, rel=0.1)

    def test_percent_of_peak(self):
        # 1.6e16 flops in 1s on 128 GPUs of 125 Tflop/s = 100%
        assert percent_of_peak(1.6e16, 1.0, 128) == pytest.approx(100.0)

    def test_percent_of_peak_rejects_zero_time(self):
        with pytest.raises(ValueError):
            percent_of_peak(1e12, 0.0, 1)


class TestRunnableCNNs:
    def test_vgg_tiny_forward_backward(self, rng):
        m = build_vgg("vgg-tiny")
        x = Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32))
        out = m(x)
        assert out.shape == (2, 10)
        F.cross_entropy(out, np.array([1, 2])).backward()
        assert all(p.grad is not None for p in m.parameters())

    def test_wrn_tiny_forward_backward(self, rng):
        m = build_wide_resnet("wrn-tiny")
        x = Tensor(rng.normal(size=(2, 3, 32, 32)).astype(np.float32))
        out = m(x)
        assert out.shape == (2, 10)
        out.sum().backward()

    def test_unknown_variants_raise(self):
        with pytest.raises(KeyError):
            build_vgg("vgg99")
        with pytest.raises(KeyError):
            build_wide_resnet("wrn-999")


class TestActivationAccounting:
    """Korthikanti et al. per-layer activation bytes (used by the
    checkpointing ablation)."""

    def test_formula_values(self):
        from repro.models import transformer_activation_bytes

        # s=2048, h=2560, a=32: 34sbh + 5as^2b vs 2sbh checkpointed.
        full = transformer_activation_bytes(2048, 2560, 32)
        ckpt = transformer_activation_bytes(2048, 2560, 32, checkpointed=True)
        assert full == 34 * 2048 * 2560 + 5 * 32 * 2048 * 2048
        assert ckpt == 2 * 2048 * 2560
        assert full > 20 * ckpt

    def test_scales_linearly_with_microbatch(self):
        from repro.models import transformer_activation_bytes

        one = transformer_activation_bytes(128, 256, 4, microbatch=1)
        four = transformer_activation_bytes(128, 256, 4, microbatch=4)
        assert four == 4 * one
