"""SAMO checkpointing: exact round-trip, bit-identical resume, and
compressed-size on-disk accounting."""

import numpy as np
import pytest

from repro.core import (
    SAMOConfig,
    SAMOTrainingState,
    checkpoint_nbytes,
    load_state,
    save_state,
)
from repro.pruning import magnitude_prune
from repro.tensor import Linear, Sequential, Tensor


def _fresh(seed=0, optimizer="adamw", sparsity=0.8):
    rng = np.random.default_rng(seed)
    net = Sequential(Linear(12, 20, rng=rng), Linear(20, 6, rng=rng))
    mask = magnitude_prune(net, sparsity)
    cfg = SAMOConfig(optimizer=optimizer, lr=1e-2, warn_below_break_even=False)
    return net, SAMOTrainingState(net, mask, cfg)


def _train(state, steps, seed=100):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        x = Tensor(rng.standard_normal((5, 12)).astype(np.float32))
        state.model(x).sum().backward()
        state.compress_gradients()
        assert state.step()


def _snapshot(state):
    return {
        "theta32": [e.theta32_c.copy() for e in state.compressed],
        "os": [[s.copy() for s in e.opt_state_c] for e in state.compressed],
        "dense": [d.theta32.copy() for d in state.dense],
        "params": [p.data.copy() for p in state.model.parameters()],
        "step": state.step_count,
    }


class TestRoundTrip:
    @pytest.mark.parametrize("optimizer", ["adamw", "adam", "sgd"])
    def test_exact_roundtrip(self, tmp_path, optimizer):
        net, state = _fresh(optimizer=optimizer)
        _train(state, 3)
        before = _snapshot(state)

        path = tmp_path / "ckpt.npz"
        save_state(state, path)

        net2, _ = _fresh(seed=999, optimizer=optimizer)  # different init
        restored = load_state(net2, path)
        after = _snapshot(restored)

        assert after["step"] == before["step"]
        for a, b in zip(after["theta32"], before["theta32"]):
            assert np.array_equal(a, b)
        for slots_a, slots_b in zip(after["os"], before["os"]):
            for a, b in zip(slots_a, slots_b):
                assert np.array_equal(a, b)
        for a, b in zip(after["dense"], before["dense"]):
            assert np.array_equal(a, b)
        for a, b in zip(after["params"], before["params"]):
            assert np.array_equal(a, b)

    def test_resume_is_bit_identical(self, tmp_path):
        """save -> load -> N steps == uninterrupted N steps."""
        net_a, state_a = _fresh(seed=1)
        _train(state_a, 2, seed=50)
        path = tmp_path / "mid.npz"
        save_state(state_a, path)
        _train(state_a, 3, seed=60)  # uninterrupted reference

        net_b, _ = _fresh(seed=1)
        state_b = load_state(net_b, path)
        _train(state_b, 3, seed=60)  # resumed

        for ea, eb in zip(state_a.compressed, state_b.compressed):
            assert np.array_equal(ea.theta32_c, eb.theta32_c)
            for sa, sb in zip(ea.opt_state_c, eb.opt_state_c):
                assert np.array_equal(sa, sb)
        for da, db in zip(state_a.dense, state_b.dense):
            assert np.array_equal(da.theta32, db.theta32)

    def test_consistency_check_passes_after_load(self, tmp_path):
        net, state = _fresh()
        _train(state, 1)
        path = tmp_path / "c.npz"
        save_state(state, path)
        net2, _ = _fresh(seed=4)
        restored = load_state(net2, path)
        restored.consistency_check()  # raises on any invariant break


class TestValidation:
    def test_shape_mismatch_rejected(self, tmp_path):
        net, state = _fresh()
        path = tmp_path / "c.npz"
        save_state(state, path)
        rng = np.random.default_rng(0)
        wrong = Sequential(Linear(12, 24, rng=rng), Linear(24, 6, rng=rng))
        with pytest.raises((ValueError, KeyError)):
            load_state(wrong, path)

    def test_missing_parameter_rejected(self, tmp_path):
        net, state = _fresh()
        path = tmp_path / "c.npz"
        save_state(state, path)
        rng = np.random.default_rng(0)
        smaller = Sequential(Linear(12, 20, rng=rng))
        with pytest.raises(KeyError):
            load_state(smaller, path)

    def test_version_check(self, tmp_path):
        import json

        net, state = _fresh()
        path = tmp_path / "c.npz"
        save_state(state, path)
        with np.load(path) as z:
            arrays = {k: z[k] for k in z.files}
        header = json.loads(bytes(arrays["header"]).decode())
        header["version"] = 99
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8).copy()
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)
        net2, _ = _fresh(seed=2)
        with pytest.raises(ValueError, match="version"):
            load_state(net2, path)


class TestSizeAccounting:
    def test_checkpoint_is_compressed_size(self, tmp_path):
        """On-disk state scales with nnz, not with φ — the paper's memory
        saving carried to disk."""
        net, state = _fresh(sparsity=0.9)
        logical = checkpoint_nbytes(state)
        # Dense-equivalent: θ32 (4φ) + 2 Adam slots (8φ) over *all* params.
        phi = sum(p.data.size for p in net.parameters())
        dense_equiv = 12 * phi
        assert logical < 0.55 * dense_equiv

        path = tmp_path / "c.npz"
        written = save_state(state, path)
        # Zip adds headers but the file must stay in the logical ballpark.
        assert written < 2 * logical + 16_384

    def test_nbytes_matches_arrays(self):
        net, state = _fresh()
        n = checkpoint_nbytes(state)
        manual = 0
        for e in state.compressed:
            manual += e.ind.nbytes + e.theta32_c.nbytes + sum(s.nbytes for s in e.opt_state_c)
        for d in state.dense:
            manual += d.theta32.nbytes + sum(s.nbytes for s in d.opt_state)
        assert n == manual
