"""Executable intra-layer (Megatron) parallelism and ZeRO-1 sharding:
P-way parallel execution must match serial execution exactly."""

import numpy as np
import pytest

from repro.comm import CommError, run_parallel
from repro.optim.kernels import adam_kernel
from repro.parallel import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelMLP,
    Zero1DataParallel,
    shard_dim,
    zero_memory_bytes,
)
from repro.tensor import GELU, Linear, Sequential, Tensor
from repro.tensor import functional as F


D_IN, D_HID = 8, 16
SEED = 42


def _serial_mlp():
    """Reference MLP drawing weights from the same seeded stream the
    parallel layers use."""
    rng = np.random.default_rng(SEED)
    fc_in = Linear(D_IN, D_HID, rng=None)
    bound = 1.0 / np.sqrt(D_IN)
    fc_in.weight.data[...] = rng.uniform(-bound, bound, (D_HID, D_IN)).astype(np.float32)
    fc_in.bias.data[...] = 0.0
    fc_out = Linear(D_HID, D_IN, rng=None)
    bound = 1.0 / np.sqrt(D_HID)
    fc_out.weight.data[...] = rng.uniform(-bound, bound, (D_IN, D_HID)).astype(np.float32)
    fc_out.bias.data[...] = 0.0
    return Sequential(fc_in, GELU(), fc_out)


class TestShardDim:
    def test_divides(self):
        assert shard_dim(16, 4) == 4

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError, match="not divisible"):
            shard_dim(10, 4)


class TestColumnParallel:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_gathered_forward_matches_serial(self, world, rng):
        x_data = rng.standard_normal((6, D_IN)).astype(np.float32)
        serial = _serial_mlp()
        want = F.linear(Tensor(x_data), serial[0].weight, serial[0].bias).data

        def worker(comm):
            layer = ColumnParallelLinear(
                D_IN, D_HID, comm, gather_output=True,
                rng=np.random.default_rng(SEED),
            )
            return layer(Tensor(x_data)).data

        for got in run_parallel(world, worker):
            assert np.allclose(got, want, atol=1e-5)

    def test_local_output_is_shard(self, rng):
        x_data = rng.standard_normal((3, D_IN)).astype(np.float32)

        def worker(comm):
            layer = ColumnParallelLinear(
                D_IN, D_HID, comm, rng=np.random.default_rng(SEED)
            )
            return layer(Tensor(x_data)).data.shape

        for shape in run_parallel(2, worker):
            assert shape == (3, D_HID // 2)

    def test_gathered_backward_matches_serial(self, rng):
        x_data = rng.standard_normal((4, D_IN)).astype(np.float32)
        serial = _serial_mlp()
        xs = Tensor(x_data.copy(), requires_grad=True)
        F.linear(xs, serial[0].weight, serial[0].bias).sum().backward()
        want_x = xs.grad.copy()
        want_w = serial[0].weight.grad.copy()

        def worker(comm):
            layer = ColumnParallelLinear(
                D_IN, D_HID, comm, gather_output=True,
                rng=np.random.default_rng(SEED),
            )
            x = Tensor(x_data.copy(), requires_grad=True)
            layer(x).sum().backward()
            return x.grad, layer.weight.grad, comm.rank

        world = 2
        for gx, gw, rank in run_parallel(world, worker):
            assert np.allclose(gx, want_x, atol=1e-5)
            rows = D_HID // world
            assert np.allclose(gw, want_w[rank * rows : (rank + 1) * rows], atol=1e-5)


class TestTensorParallelMLP:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_forward_matches_serial(self, world, rng):
        x_data = rng.standard_normal((5, D_IN)).astype(np.float32)
        serial = _serial_mlp()
        want = serial(Tensor(x_data)).data

        def worker(comm):
            mlp = TensorParallelMLP(D_IN, D_HID, comm, rng=np.random.default_rng(SEED))
            return mlp(Tensor(x_data)).data

        for got in run_parallel(world, worker):
            assert np.allclose(got, want, atol=1e-4)

    def test_backward_matches_serial(self, rng):
        x_data = rng.standard_normal((5, D_IN)).astype(np.float32)
        serial = _serial_mlp()
        xs = Tensor(x_data.copy(), requires_grad=True)
        serial(xs).sum().backward()
        want_x = xs.grad.copy()
        w_in_full = serial[0].weight.grad.copy()
        w_out_full = serial[2].weight.grad.copy()

        world = 2

        def worker(comm):
            mlp = TensorParallelMLP(D_IN, D_HID, comm, rng=np.random.default_rng(SEED))
            x = Tensor(x_data.copy(), requires_grad=True)
            mlp(x).sum().backward()
            return x.grad, mlp.fc_in.weight.grad, mlp.fc_out.weight.grad, comm.rank

        for gx, g_in, g_out, rank in run_parallel(world, worker):
            assert np.allclose(gx, want_x, atol=1e-4)
            rows = D_HID // world
            assert np.allclose(g_in, w_in_full[rank * rows : (rank + 1) * rows], atol=1e-4)
            cols = D_HID // world
            assert np.allclose(g_out, w_out_full[:, rank * cols : (rank + 1) * cols], atol=1e-4)

    def test_row_parallel_unsharded_input(self, rng):
        """input_is_sharded=False slices a replicated activation itself."""
        x_data = rng.standard_normal((3, D_HID)).astype(np.float32)
        serial = _serial_mlp()
        want = F.linear(Tensor(x_data), serial[2].weight, serial[2].bias).data

        def worker(comm):
            r = np.random.default_rng(SEED)
            r.uniform(-1.0 / np.sqrt(D_IN), 1.0 / np.sqrt(D_IN), (D_HID, D_IN))  # skip fc_in draw
            layer = RowParallelLinear(
                D_HID, D_IN, comm, input_is_sharded=False, rng=r
            )
            return layer(Tensor(x_data)).data

        for got in run_parallel(2, worker):
            assert np.allclose(got, want, atol=1e-5)


class TestZeroMemoryModel:
    def test_stage1_matches_rajbhandari(self):
        phi = 1_000_000
        assert zero_memory_bytes(phi, 1, stage=1) == 20 * phi
        assert zero_memory_bytes(phi, 4, stage=1) == 4 * phi + 4 * phi

    def test_stages_ordered(self):
        phi, n = 10**6, 16
        s1 = zero_memory_bytes(phi, n, 1)
        s2 = zero_memory_bytes(phi, n, 2)
        s3 = zero_memory_bytes(phi, n, 3)
        assert s1 > s2 > s3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zero_memory_bytes(10, 0)
        with pytest.raises(ValueError):
            zero_memory_bytes(10, 2, stage=4)


def _make_replica(seed=7):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 10, rng=rng), GELU(), Linear(10, 4, rng=rng))


class TestZero1Executable:
    def _per_rank_batches(self, world, steps=3):
        rng = np.random.default_rng(0)
        return [
            [rng.standard_normal((4, 6)).astype(np.float32) for _ in range(world)]
            for _ in range(steps)
        ]

    def test_matches_serial_adam(self):
        """ZeRO-1 over P ranks == serial AdamW on the mean gradient,
        modulo the fp16 parameter wire format (replicated exactly)."""
        world, steps = 4, 3
        batches = self._per_rank_batches(world, steps)
        lr = 1e-2

        # Serial reference with the identical fp16 round-trip.
        model = _make_replica()
        params = [p for _, p in model.named_parameters()]
        master = [p.data.astype(np.float32).copy() for p in params]
        ms = [np.zeros_like(w) for w in master]
        vs = [np.zeros_like(w) for w in master]
        for p, w in zip(params, master):
            p.data[...] = w  # identical start
        for step, xs in enumerate(batches, start=1):
            grads = [np.zeros_like(w) for w in master]
            for x in xs:  # average gradient over the world's shards
                model.zero_grad()
                model(Tensor(x)).sum().backward()
                for g, p in zip(grads, params):
                    g += p.grad / world
            for w, g, m, v in zip(master, grads, ms, vs):
                adam_kernel(w, g, m, v, step=step, lr=lr,
                            beta1=0.9, beta2=0.999, eps=1e-8,
                            weight_decay=0.0, decoupled=True)
            for p, w in zip(params, master):
                p.data[...] = w.astype(np.float16).astype(np.float32)
        want = [p.data.copy() for p in params]

        def worker(comm):
            replica = _make_replica()
            zero = Zero1DataParallel(replica, comm, lr=lr)
            for xs in batches:
                replica(Tensor(xs[comm.rank])).sum().backward()
                zero.step()
            return [p.data.copy() for _, p in replica.named_parameters()]

        for got in run_parallel(world, worker):
            for a, b in zip(got, want):
                assert np.allclose(a, b, atol=1e-3)

    def test_replicas_stay_identical(self):
        world = 3

        def worker(comm):
            replica = _make_replica()
            zero = Zero1DataParallel(replica, comm, lr=5e-3)
            rng = np.random.default_rng(10 + comm.rank)
            for _ in range(2):
                x = rng.standard_normal((4, 6)).astype(np.float32)
                replica(Tensor(x)).sum().backward()
                zero.step()
            return np.concatenate([p.data.reshape(-1) for _, p in replica.named_parameters()])

        results = run_parallel(world, worker)
        for r in results[1:]:
            assert np.array_equal(r, results[0])

    def test_shard_bytes_scale_inverse_with_world(self):
        sizes = {}
        for world in (1, 2, 4):
            def worker(comm):
                return Zero1DataParallel(_make_replica(), comm).shard_bytes()

            sizes[world] = run_parallel(world, worker)[0]
        assert sizes[2] <= 0.6 * sizes[1]
        assert sizes[4] <= 0.6 * sizes[2]

    def test_uneven_total_padded(self):
        """Parameter count not divisible by world size still works."""
        def worker(comm):
            rng = np.random.default_rng(1)
            model = Sequential(Linear(3, 5, rng=rng))  # 3*5+5 = 20 params
            zero = Zero1DataParallel(model, comm, lr=1e-2)
            model(Tensor(np.ones((2, 3), np.float32))).sum().backward()
            zero.step()
            return np.concatenate([p.data.reshape(-1) for p in model.parameters()])

        results = run_parallel(3, worker)  # 20 % 3 != 0
        for r in results[1:]:
            assert np.array_equal(r, results[0])
