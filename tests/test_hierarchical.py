"""Hierarchical collectives: cost models and the executable p2p-built
all-reduce (topology-aware NCCL substitute)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    SUMMIT,
    best_allreduce_time,
    hierarchical_allreduce,
    hierarchical_allreduce_time,
    ring_allreduce_time,
    tree_broadcast_time,
)
from repro.comm import CommError, run_parallel


MB = 1024 * 1024


class TestCostModel:
    def test_trivial_cases(self):
        assert hierarchical_allreduce_time(MB, 1) == 0.0
        assert hierarchical_allreduce_time(0, 48) == 0.0

    def test_beats_flat_ring_at_scale(self):
        """Large payload over many nodes: the hierarchical schedule cuts the
        cross-node bytes by the node arity and must win."""
        nbytes = 256 * MB
        for g in (48, 192, 768):
            flat = ring_allreduce_time(nbytes, g)
            hier = hierarchical_allreduce_time(nbytes, g)
            assert hier < flat, f"G={g}"

    def test_single_node_group_close_to_flat_nvlink(self):
        """Inside one node there is no cross-node phase; cost is the two
        NVLink phases (reduce-scatter + allgather ~= one NVLink allreduce)."""
        t = hierarchical_allreduce_time(64 * MB, 6)
        # two phases of (5/6) * n over 30 GB/s effective NVLink
        expected_bw = 2 * (5 / 6) * 64 * MB / (50e9 * 0.6)
        assert t == pytest.approx(expected_bw + 2 * 5 * SUMMIT.coll_alpha, rel=1e-6)

    def test_monotone_in_bytes(self):
        ts = [hierarchical_allreduce_time(n * MB, 96) for n in (1, 8, 64)]
        assert ts[0] < ts[1] < ts[2]

    def test_tree_broadcast_log_rounds(self):
        t8 = tree_broadcast_time(MB, 8)
        t64 = tree_broadcast_time(MB, 64)
        assert t64 == pytest.approx(2 * t8)  # 6 rounds vs 3

    def test_tree_beats_ring_broadcast_small_payload(self):
        from repro.cluster import broadcast_time

        # 1 KiB over 512 ranks: ring pays 511 alphas, tree pays 9.
        assert tree_broadcast_time(1024, 512) < broadcast_time(1024, 512)

    def test_best_picks_minimum(self):
        for g, n in ((6, MB), (768, 256 * MB), (2, 1024)):
            b = best_allreduce_time(n, g)
            assert b == min(
                ring_allreduce_time(n, g), hierarchical_allreduce_time(n, g)
            )

    @settings(max_examples=40, deadline=None)
    @given(
        nbytes=st.integers(1, 10**9),
        group=st.integers(2, 4096),
    )
    def test_property_nonnegative_and_bounded(self, nbytes, group):
        t = hierarchical_allreduce_time(nbytes, group)
        assert t > 0
        # Never worse than 3 serialized flat rings (sanity envelope).
        assert t < 3 * ring_allreduce_time(nbytes, group) + 1.0


class TestScenarioAware:
    """Scenario-threaded hierarchical cost model + the algo registry."""

    def test_neutral_knob_parity_with_pristine(self):
        from repro.parallel import ClusterScenario

        sc = ClusterScenario("x", coll_algo="hierarchical")
        for g, n in ((6, 64 * MB), (48, 256 * MB), (768, 16 * MB)):
            assert hierarchical_allreduce_time(n, g, scenario=sc) == (
                hierarchical_allreduce_time(n, g)
            )

    def test_single_node_parity_with_flat_ring(self):
        """Inside one node the two-level schedule *is* the NVLink ring:
        reduce-scatter + all-gather == one intra-node ring all-reduce."""
        from repro.cluster import Topology

        topo = Topology(6)
        for n in (1024, MB, 64 * MB):
            assert hierarchical_allreduce_time(n, 6) == ring_allreduce_time(
                n, 6, topology=topo, ranks=list(range(6))
            )

    def test_monotone_under_cross_node_bw_multiplier(self):
        from repro.parallel import ClusterScenario

        ts = [
            hierarchical_allreduce_time(
                256 * MB,
                48,
                scenario=ClusterScenario(
                    "x", coll_algo="hierarchical", cross_node_bw_multiplier=m
                ),
            )
            for m in (1.0, 0.75, 0.5, 0.25)
        ]
        assert ts == sorted(ts) and len(set(ts)) == len(ts)

    def test_cross_node_multiplier_spares_intra_node_phases(self):
        """The hierarchical schedule's selling point: fabric congestion
        hits only the inter-node tier, so a single-node group is immune."""
        from repro.parallel import ClusterScenario

        sc = ClusterScenario(
            "x", coll_algo="hierarchical", cross_node_bw_multiplier=0.25
        )
        assert hierarchical_allreduce_time(64 * MB, 6, scenario=sc) == (
            hierarchical_allreduce_time(64 * MB, 6)
        )

    def test_stall_factor_applied_once(self):
        from repro.parallel import ClusterScenario

        sc = ClusterScenario(
            "x",
            coll_algo="hierarchical",
            coll_straggler_rank=0,
            coll_straggler_factor=2.0,
        )
        assert hierarchical_allreduce_time(256 * MB, 48, scenario=sc) == (
            2.0 * hierarchical_allreduce_time(256 * MB, 48)
        )

    def test_registry_dispatch(self):
        from repro.cluster import allreduce_algos, allreduce_time
        from repro.parallel import SCENARIOS

        assert {"ring", "hierarchical", "best"} <= set(allreduce_algos())
        sc = SCENARIOS["hierarchical"]
        assert allreduce_time(256 * MB, 48, scenario=sc) == (
            hierarchical_allreduce_time(256 * MB, 48)
        )
        # no scenario -> the flat ring, bit-for-bit
        assert allreduce_time(256 * MB, 48) == ring_allreduce_time(256 * MB, 48)
        with pytest.raises(ValueError, match="unknown allreduce algo"):
            allreduce_time(MB, 8, algo="quantum")

    def test_unknown_coll_algo_rejected_at_scenario_construction(self):
        from repro.parallel import ClusterScenario

        with pytest.raises(ValueError, match="unknown allreduce algo"):
            ClusterScenario("x", coll_algo="quantum")

    def test_hierarchical_scenario_is_not_neutral(self):
        from repro.api import ScenarioSet
        from repro.parallel import SCENARIOS

        sc = SCENARIOS["hierarchical"]
        assert not sc.is_neutral and sc.degrades_collectives
        # ScenarioSet must not canonicalise it away as the pristine machine
        sset = ScenarioSet.of(sc, name="just-hier")
        assert sset.scenarios[0] is not None
        assert sc.from_dict(sc.to_dict()) == sc

    def test_breakdown_collective_shrinks_at_scale(self):
        """At 128 GPUs (22 nodes) the two-level schedule cuts cross-node
        bytes by the node arity; the priced collective must drop."""
        from repro.api import Job, Machine, Session

        s = Session(Machine.summit())
        job = Job(model="gpt3-2.7b", n_gpus=128, fidelity="sim")
        ring = s.breakdown(job)
        hier = s.breakdown(job, scenario="hierarchical")
        assert hier.collective < ring.collective
        # the pipeline phases are untouched by a collective-only scenario
        assert hier.compute == ring.compute


class TestExecutable:
    @pytest.mark.parametrize("world,gpn", [(4, 2), (6, 3), (6, 6), (8, 1)])
    def test_matches_backend_allreduce(self, world, gpn):
        def worker(comm):
            rng = np.random.default_rng(comm.rank)
            x = rng.standard_normal(65).astype(np.float32)
            want = comm.allreduce(x, op="sum")
            got = hierarchical_allreduce(comm, x, gpus_per_node=gpn)
            return np.allclose(got, want, atol=1e-4)

        assert all(run_parallel(world, worker))

    def test_mean_op(self):
        def worker(comm):
            x = np.full(8, float(comm.rank), dtype=np.float32)
            return hierarchical_allreduce(comm, x, gpus_per_node=2, op="mean")

        for res in run_parallel(4, worker):
            assert np.allclose(res, 1.5)

    def test_preserves_shape_and_dtype(self):
        def worker(comm):
            x = np.ones((3, 4), dtype=np.float32)
            out = hierarchical_allreduce(comm, x, gpus_per_node=2)
            return out.shape, out.dtype

        for shape, dtype in run_parallel(4, worker):
            assert shape == (3, 4) and dtype == np.float32

    def test_world_not_multiple_of_node_rejected(self):
        def worker(comm):
            return hierarchical_allreduce(comm, np.ones(4), gpus_per_node=4)

        with pytest.raises(CommError, match="whole number"):
            run_parallel(6, worker)

    def test_bad_op_rejected(self):
        def worker(comm):
            return hierarchical_allreduce(comm, np.ones(2), 1, op="max")

        with pytest.raises(CommError, match="op must be"):
            run_parallel(2, worker)

    def test_deterministic_across_runs(self):
        def worker(comm):
            rng = np.random.default_rng(100 + comm.rank)
            x = rng.standard_normal(257).astype(np.float32)
            return hierarchical_allreduce(comm, x, gpus_per_node=3)

        a = run_parallel(6, worker)
        b = run_parallel(6, worker)
        for ra, rb in zip(a, b):
            assert np.array_equal(ra, rb)
