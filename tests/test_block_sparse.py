"""Block-sparse storage/kernels and the structured-sparsity perf model
(the Section II-C substrate: Gray et al. blocks, Chen et al. vectors)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import (
    BLOCKSPARSE_FP16,
    BlockSparseMatrix,
    ColumnVectorSparse,
    CUBLAS_FP16,
    block_crossover_sparsity,
    block_sparse_time,
)


def _random_block_dense(rng, shape=(16, 24), block=(4, 4), sparsity=0.5):
    bs = BlockSparseMatrix.random(shape, block, sparsity, rng)
    return bs, bs.to_dense()


class TestBlockSparseMatrix:
    def test_from_dense_roundtrip(self, rng):
        bs, dense = _random_block_dense(rng)
        rebuilt = BlockSparseMatrix.from_dense(dense, (4, 4))
        assert np.array_equal(rebuilt.to_dense(), dense)
        assert rebuilt.n_blocks <= bs.n_blocks  # all-zero random blocks drop

    def test_random_sparsity_exact(self, rng):
        bs = BlockSparseMatrix.random((32, 32), (4, 4), 0.75, rng)
        # 64 blocks total, keep 16
        assert bs.n_blocks == 16
        assert bs.sparsity == pytest.approx(0.75)

    def test_matmul_matches_dense(self, rng):
        bs, dense = _random_block_dense(rng, shape=(20, 12), block=(4, 3))
        x = rng.standard_normal((12, 7)).astype(np.float32)
        assert np.allclose(bs.matmul(x), dense @ x, atol=1e-5)

    def test_matmul_vector(self, rng):
        bs, dense = _random_block_dense(rng, shape=(8, 8), block=(2, 2))
        x = rng.standard_normal(8).astype(np.float32)
        out = bs.matmul(x)
        assert out.shape == (8,)
        assert np.allclose(out, dense @ x, atol=1e-5)

    def test_scipy_bsr_agrees(self, rng):
        bs, dense = _random_block_dense(rng, shape=(16, 16), block=(4, 4))
        x = rng.standard_normal((16, 5)).astype(np.float32)
        assert np.allclose(bs.to_scipy_bsr() @ x, dense @ x, atol=1e-5)

    def test_empty_pattern(self):
        bs = BlockSparseMatrix(
            np.array([], np.int32), np.array([], np.int32),
            np.zeros((0, 2, 2), np.float32), (4, 4),
        )
        assert bs.n_blocks == 0 and bs.sparsity == 1.0
        assert np.all(bs.matmul(np.ones((4, 3), np.float32)) == 0.0)

    def test_indivisible_shape_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            BlockSparseMatrix.random((10, 10), (4, 4), 0.5)

    def test_duplicate_blocks_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BlockSparseMatrix(
                np.array([0, 0], np.int32), np.array([0, 0], np.int32),
                np.zeros((2, 2, 2), np.float32), (4, 4),
            )

    def test_out_of_range_block_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            BlockSparseMatrix(
                np.array([5], np.int32), np.array([0], np.int32),
                np.zeros((1, 2, 2), np.float32), (4, 4),
            )

    def test_dim_mismatch_matmul(self, rng):
        bs, _ = _random_block_dense(rng, shape=(8, 8), block=(2, 2))
        with pytest.raises(ValueError, match="dim mismatch"):
            bs.matmul(np.ones((9, 2), np.float32))

    def test_storage_smaller_when_sparse(self, rng):
        bs = BlockSparseMatrix.random((64, 64), (8, 8), 0.875, rng)
        dense_bytes = 64 * 64 * 4
        assert bs.storage_bytes() < 0.2 * dense_bytes

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        gr=st.integers(1, 5),
        gc=st.integers(1, 5),
        bh=st.sampled_from([1, 2, 4]),
        bw=st.sampled_from([1, 2, 3]),
        sparsity=st.floats(0.0, 0.9),
    )
    def test_property_matmul_equals_dense(self, seed, gr, gc, bh, bw, sparsity):
        rng = np.random.default_rng(seed)
        shape = (gr * bh, gc * bw)
        bs = BlockSparseMatrix.random(shape, (bh, bw), sparsity, rng)
        x = rng.standard_normal((shape[1], 3)).astype(np.float32)
        assert np.allclose(bs.matmul(x), bs.to_dense() @ x, atol=1e-4)


class TestColumnVectorSparse:
    def test_roundtrip(self, rng):
        dense = rng.standard_normal((12, 6)).astype(np.float32)
        dense[rng.random(dense.shape) < 0.6] = 0.0
        cvs = ColumnVectorSparse.from_dense(dense, v=4)
        got = cvs.to_dense()
        # Round-trip preserves all non-zeros; kept vectors may include the
        # zeros sharing a vector with a non-zero.
        assert np.array_equal(got, np.where(got != 0, dense, got))
        assert np.array_equal((got != 0), (dense != 0))

    def test_matvec_matches_dense(self, rng):
        dense = rng.standard_normal((8, 10)).astype(np.float32)
        dense[:4, :5] = 0.0
        cvs = ColumnVectorSparse.from_dense(dense, v=2)
        x = rng.standard_normal(10).astype(np.float32)
        assert np.allclose(cvs.matvec(x), dense @ x, atol=1e-5)

    def test_vector_granularity(self, rng):
        """A single non-zero keeps its whole (v x 1) vector."""
        dense = np.zeros((8, 4), np.float32)
        dense[5, 2] = 1.0
        cvs = ColumnVectorSparse.from_dense(dense, v=4)
        assert cvs.n_vectors == 1
        assert cvs.vrow[0] == 1 and cvs.col[0] == 2  # rows 4-7, col 2

    def test_indivisible_rows_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            ColumnVectorSparse.from_dense(np.zeros((10, 4)), v=4)

    def test_sparsity_accounting(self, rng):
        dense = np.zeros((16, 8), np.float32)
        dense[0, 0] = 1.0  # one vector of 4 kept out of 32
        cvs = ColumnVectorSparse.from_dense(dense, v=4)
        assert cvs.sparsity == pytest.approx(1.0 - 4 / 128)


class TestBlockPerfModel:
    def test_crossover_near_seventy_percent(self):
        """Chen et al.: block-sparse beats cuBLAS from ~70% sparsity."""
        x = block_crossover_sparsity()
        assert 0.6 <= x <= 0.8

    def test_monotone_in_sparsity(self):
        times = [block_sparse_time(576, 2048, 2048, s) for s in (0.1, 0.5, 0.9)]
        assert times[0] > times[1] > times[2]

    def test_beats_cublas_at_ninety(self):
        t_dense = CUBLAS_FP16.time(576, 2048, 2048)
        assert block_sparse_time(576, 2048, 2048, 0.9) < t_dense

    def test_loses_to_cublas_when_dense(self):
        t_dense = CUBLAS_FP16.time(576, 2048, 2048)
        assert block_sparse_time(576, 2048, 2048, 0.0) > t_dense

    def test_structured_beats_unstructured_model(self):
        """The whole Section II-C story: at 90% sparsity, block-sparse
        (tensor-core) kernels are modelled far faster than Sputnik-class
        unstructured ones."""
        from repro.sparse import fc_layer_time

        t_block = block_sparse_time(576, 2048, 2048, 0.9)
        t_sputnik = fc_layer_time("sputnik", 576, 2048, 0.9)
        assert t_block < 0.5 * t_sputnik
