"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic random generator for each test."""
    return np.random.default_rng(12345)


def numeric_grad(f, x, eps=1e-6):
    """Central finite differences of scalar-valued f at array x."""
    x = np.asarray(x, dtype=np.float64)
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        g[idx] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return g


@pytest.fixture
def gradcheck():
    return numeric_grad
