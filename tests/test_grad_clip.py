"""Gradient clipping on stored mixed-precision gradients: norm math,
loss-scale interaction, and preservation of the dense ≡ SAMO invariant."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SAMOConfig, SAMOTrainingState
from repro.optim import clip_grad_norm, clip_stored_norm, global_grad_norm
from repro.pruning import magnitude_prune
from repro.tensor import Linear, Sequential, Tensor
from repro.train import Trainer
from repro.train.mixed_precision import DenseMixedPrecisionState


class TestClipStoredNorm:
    def test_under_threshold_untouched(self):
        a = np.array([0.3, 0.4], dtype=np.float16)  # norm 0.5
        before = a.copy()
        norm = clip_stored_norm([a], max_norm=1.0)
        assert norm == pytest.approx(0.5, rel=1e-3)
        assert np.array_equal(a, before)

    def test_over_threshold_scaled(self):
        a = np.array([3.0, 4.0], dtype=np.float16)  # norm 5
        norm = clip_stored_norm([a], max_norm=1.0)
        assert norm == pytest.approx(5.0, rel=1e-3)
        post = np.sqrt(float(np.sum(a.astype(np.float64) ** 2)))
        assert post == pytest.approx(1.0, rel=1e-2)

    def test_loss_scale_divided_out(self):
        """A scale-1024 gradient of true norm 5 must clip to scaled norm
        1024 * max_norm, i.e. the unscaled gradient norm becomes max_norm."""
        a = (np.array([3.0, 4.0]) * 16.0).astype(np.float16)
        norm = clip_stored_norm([a], max_norm=1.0, loss_scale=16.0)
        assert norm == pytest.approx(5.0, rel=1e-3)
        post_unscaled = np.sqrt(float(np.sum((a.astype(np.float64) / 16.0) ** 2)))
        assert post_unscaled == pytest.approx(1.0, rel=1e-2)

    def test_none_entries_skipped(self):
        a = np.array([2.0], dtype=np.float16)
        norm = clip_stored_norm([None, a, None], max_norm=10.0)
        assert norm == pytest.approx(2.0, rel=1e-3)

    def test_overflow_left_alone(self):
        a = np.array([np.inf, 1.0], dtype=np.float16)
        norm = clip_stored_norm([a], max_norm=1.0)
        assert not np.isfinite(norm)
        assert np.isinf(a[0])  # untouched; step() will skip on overflow

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_stored_norm([np.ones(2, np.float16)], max_norm=0.0)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000), max_norm=st.floats(0.1, 10.0))
    def test_property_post_norm_bounded(self, seed, max_norm):
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(rng.integers(1, 50)).astype(np.float16)
                  for _ in range(3)]
        clip_stored_norm(arrays, max_norm)
        post = np.sqrt(sum(float(np.sum(a.astype(np.float64) ** 2)) for a in arrays))
        # fp16 re-quantisation can overshoot by a rounding hair only.
        assert post <= max_norm * 1.01


class TestClipParamGrads:
    def test_clip_grad_norm_scales(self, rng):
        net = Sequential(Linear(4, 4, rng=rng))
        x = Tensor(np.full((2, 4), 10.0, dtype=np.float32))
        net(x).sum().backward()
        pre = global_grad_norm(net.parameters())
        returned = clip_grad_norm(net.parameters(), max_norm=pre / 2)
        assert returned == pytest.approx(pre)
        assert global_grad_norm(net.parameters()) == pytest.approx(pre / 2, rel=1e-5)


def _nets(seed=0):
    rng1 = np.random.default_rng(seed)
    rng2 = np.random.default_rng(seed)
    a = Sequential(Linear(10, 14, rng=rng1), Linear(14, 4, rng=rng1))
    b = Sequential(Linear(10, 14, rng=rng2), Linear(14, 4, rng=rng2))
    return a, b


class TestEquivalenceWithClipping:
    def test_samo_equals_masked_dense_under_clipping(self):
        """Invariant 2 extended: clipping must not break the bitwise
        dense ≡ SAMO trajectory equality."""
        net_a, net_b = _nets(seed=3)
        mask = magnitude_prune(net_a, 0.8)
        cfg = SAMOConfig(optimizer="adamw", lr=1e-2, warn_below_break_even=False)

        samo = SAMOTrainingState(net_a, mask, cfg)
        dense = DenseMixedPrecisionState(net_b, cfg, mask=mask)

        rng = np.random.default_rng(0)
        for _ in range(4):
            x = (rng.standard_normal((6, 10)) * 50).astype(np.float32)  # big grads
            net_a(Tensor(x)).sum().backward()
            net_b(Tensor(x.copy())).sum().backward()
            samo.compress_gradients()
            dense.compress_gradients()
            n1 = samo.clip_gradients(1.0)
            n2 = dense.clip_gradients(1.0)
            assert n1 == pytest.approx(n2, rel=1e-6)
            assert n1 > 1.0  # clipping actually engaged
            samo.step()
            dense.step()

        params_a = {n: p.data for n, p in net_a.named_parameters()}
        for name, p in net_b.named_parameters():
            assert np.array_equal(params_a[name], p.data), name

    def test_trainer_grad_clip_flag(self):
        net_a, net_b = _nets(seed=5)
        mask = magnitude_prune(net_a, 0.8)
        cfg = SAMOConfig(optimizer="sgd", lr=0.1, warn_below_break_even=False)
        clipped = Trainer(net_a, mode="samo", mask=mask, config=cfg, grad_clip=0.5)
        free = Trainer(net_b, mode="samo", mask=magnitude_prune(net_b, 0.8), config=cfg)

        x = Tensor(np.full((4, 10), 20.0, dtype=np.float32))
        clipped.step(loss_fn=lambda m, : m(x).sum())
        free.step(loss_fn=lambda m, : m(x).sum())
        a = np.concatenate([e.theta32_c for e in clipped.state.compressed])
        b = np.concatenate([e.theta32_c for e in free.state.compressed])
        assert not np.array_equal(a, b)  # the clip changed the update

    def test_trainer_rejects_bad_clip(self):
        net, _ = _nets()
        with pytest.raises(ValueError, match="grad_clip"):
            Trainer(net, grad_clip=-1.0)
