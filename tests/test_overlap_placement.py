"""Overlap-aware collective exposure + replica placement optimizer.

Pins the tentpole invariants of the overlap/placement PR:

* with ``overlap=True`` under a non-neutral collective scenario the
  exposed comm is *strictly less* than the additive path, while never
  dropping below ``max(0, comm - hideable drain)``;
* ``n_buckets=1`` degenerates to the additive sum exactly;
* ``overlap=False`` / ``placement="block"`` stay byte-identical to the
  additive engine (the goldens in ``test_api_golden.py`` already pin the
  numbers; here we pin the equivalence of the explicit knobs);
* ``Session.place`` never returns a placement worse than the default
  block layout, under any scenario;
* the executable ``BucketedGradSync`` matches the backend all-reduce.
"""

import numpy as np
import pytest

from repro.api import Job, Machine, Session
from repro.comm import run_parallel
from repro.models import get_spec
from repro.parallel import (
    BucketedGradSync,
    Placement,
    block_placement,
    overlap_exposed_collective,
    place_replicas,
    simulate_batch,
)
from repro.parallel.placement import optimize_placement
from repro.parallel.scenarios import _topology
from repro.cluster import SUMMIT


@pytest.fixture(scope="module")
def session():
    return Session(Machine.summit())


@pytest.fixture(scope="module")
def trace(session):
    return session.trace(
        Job(model="gpt3-2.7b", n_gpus=128, fidelity="sim"), scenario="degraded-ring"
    )


class TestOverlapEngine:
    def test_exposed_strictly_less_and_bounded(self, trace):
        comm = 0.6259578  # the degraded-ring additive collective at 128 GPUs
        for k in (2, 4, 8, 16):
            rep = overlap_exposed_collective(trace, comm, n_buckets=k)
            assert rep.exposed < comm, f"K={k}: no hiding"
            assert rep.exposed >= max(0.0, comm - rep.hideable_window) - 1e-12
            assert rep.exposed + rep.hidden == pytest.approx(comm, abs=1e-15)
            assert rep.n_buckets == k

    def test_one_bucket_is_additive(self, trace):
        """Gradients only final at the very end, one message: no overlap."""
        rep = overlap_exposed_collective(trace, 0.5, n_buckets=1)
        assert rep.exposed == pytest.approx(0.5, abs=1e-15)
        assert rep.hidden == pytest.approx(0.0, abs=1e-15)

    def test_zero_comm_zero_exposure(self, trace):
        rep = overlap_exposed_collective(trace, 0.0)
        assert rep.exposed == 0.0 and rep.hidden == 0.0

    def test_bad_inputs_rejected(self, trace):
        with pytest.raises(ValueError, match="n_buckets"):
            overlap_exposed_collective(trace, 1.0, n_buckets=0)
        with pytest.raises(ValueError, match="comm_time"):
            overlap_exposed_collective(trace, -1.0)

    def test_per_stage_exposure_peaks_at_stage_zero_neighbourhood(self, trace):
        """Stage 0 drains last, so its all-reduce has the least room to
        hide — the critical stage must sit at the front of the pipeline."""
        rep = overlap_exposed_collective(trace, 0.6259578, n_buckets=8)
        assert rep.per_stage_exposed[0] == max(rep.per_stage_exposed)
        assert rep.per_stage_exposed[-1] < rep.per_stage_exposed[0]


class TestOverlapBreakdown:
    def test_overlap_accounting_under_scenario(self, session):
        job = Job(model="gpt3-2.7b", n_gpus=128, fidelity="sim")
        add = session.breakdown(job, scenario="degraded-ring")
        ov = session.breakdown(job.with_(overlap=True), scenario="degraded-ring")
        assert ov.collective > 0.0
        # accounting: exposed + hidden == additive, and the notes carry it
        # (hidden may be negative: each stage rings its actual parameter
        # share, and the embedding-heavy stage 0 carries ~1.6x the
        # uniform shard the additive model charges)
        assert ov.collective_additive == pytest.approx(add.collective, abs=1e-15)
        assert ov.collective + ov.collective_hidden == pytest.approx(
            add.collective, abs=1e-12
        )
        # the heaviest stage's payload bounds how far past the additive
        # charge the exposure can grow
        from repro.parallel.scenarios import stage_payload_fractions

        fractions = stage_payload_fractions(get_spec("gpt3-2.7b"), ov.config.g_inter)
        assert ov.collective <= add.collective * max(fractions) * len(fractions) + 1e-12
        # only the collective phase moved
        assert ov.compute == add.compute
        assert ov.bubble == add.bubble
        assert ov.p2p == add.p2p

    def test_overlap_false_knob_is_byte_identical(self):
        spec = get_spec("gpt3-2.7b")
        base = simulate_batch(spec, 128, "axonn", pipeline_fidelity="sim")
        explicit = simulate_batch(
            spec, 128, "axonn", pipeline_fidelity="sim",
            overlap=False, placement="block",
        )
        assert explicit.to_dict() == base.to_dict()

    def test_overlap_implies_sim_fidelity(self, session):
        b = session.breakdown(Job(model="gpt3-2.7b", n_gpus=128, overlap=True))
        assert b.notes["pipeline_fidelity"] == "sim"
        assert b.notes["overlap"] is True

    def test_analytic_with_overlap_raises_everywhere(self, session):
        job = Job(model="gpt3-2.7b", n_gpus=128, fidelity="analytic", overlap=True)
        with pytest.raises(ValueError, match="overlap"):
            session.breakdown(job)
        with pytest.raises(ValueError, match="overlap"):
            session.plan(job)
        with pytest.raises(ValueError, match="overlap"):
            simulate_batch(
                get_spec("gpt3-2.7b"), 128, "axonn",
                pipeline_fidelity="analytic", overlap=True,
            )

    def test_synchronous_pipeline_keeps_additive(self, session):
        """deepspeed-3d has no asynchronous drain to hide behind."""
        job = Job(
            model="gpt3-2.7b", n_gpus=128, framework="deepspeed-3d", fidelity="sim"
        )
        add = session.breakdown(job)
        ov = session.breakdown(job.with_(overlap=True))
        assert ov.collective == add.collective
        assert ov.notes["overlap"] is False

    def test_plan_fidelity_label_separates_overlap(self, session):
        from repro.autotune import EvaluationCache

        s = Session(Machine.summit(), cache=EvaluationCache())
        job = Job(model="gpt3-xl", n_gpus=32, fidelity="sim")
        p0 = s.plan(job, microbatch_sizes=(1,))
        p1 = s.plan(job.with_(overlap=True), microbatch_sizes=(1,))
        assert p0.fidelity == "sim"
        assert p1.fidelity == "sim+overlap"
        # overlap re-prices only the collective phase: every other phase
        # of every candidate matches the additive plan byte-for-byte
        # (totals may move either way — a param-heavy stage can expose
        # more than the uniform additive charge)
        add = {e.config: e.breakdown for e in p0.evaluations}
        for e in p1.evaluations:
            b = add[e.config]
            assert e.breakdown.compute == b.compute
            # approx: at g_inter == 1 the additive path short-circuits the
            # trace while overlap must run it, leaving a ~1e-16 residue
            assert e.breakdown.bubble == pytest.approx(b.bubble, abs=1e-12)
            assert e.breakdown.p2p == b.p2p
            assert e.breakdown.other == b.other


class TestPlacementOptimizer:
    @pytest.mark.parametrize(
        "model,n_gpus,scenario",
        [
            ("gpt3-2.7b", 16, None),
            ("gpt3-2.7b", 32, "degraded-ring"),
            ("gpt3-xl", 64, "degraded"),
            ("gpt3-xl", 32, "slow-link"),
        ],
    )
    def test_never_worse_than_block_layout(self, session, model, n_gpus, scenario):
        res = session.place(Job(model=model, n_gpus=n_gpus), scenario=scenario)
        assert res.makespan <= res.default_makespan
        assert max(res.chain_times) == res.makespan
        assert res.placement.n_replicas == res.default_placement.n_replicas

    def test_strict_improvement_exists(self, session):
        """gpt3-2.7b on 16 GPUs: the straddling replica's cross-node hop
        can be moved to a cheaper cut — the optimizer must find it."""
        res = session.place(Job(model="gpt3-2.7b", n_gpus=16))
        assert res.makespan < res.default_makespan
        assert not res.is_default
        assert res.improvement_pct > 0

    def test_breakdown_at_best_placement_never_worse(self, session):
        job = Job(model="gpt3-2.7b", n_gpus=16, fidelity="sim")
        block = session.breakdown(job)
        best = session.breakdown(job.with_(placement="best"))
        assert best.total <= block.total
        assert best.bubble <= block.bubble

    def test_place_replicas_low_level(self):
        spec = get_spec("gpt3-xl")
        res = place_replicas(
            spec, g_inter=4, m=8, mbs=1, t_f_model=1.0, t_b_model=3.0, n_gpus=16
        )
        assert res.makespan <= res.default_makespan
        assert len(res.placement.replicas) == 4
        ranks = [r for chain in res.placement.replicas for r in chain]
        assert len(set(ranks)) == len(ranks)  # disjoint replicas

    def test_optimize_placement_respects_chain_objective(self):
        """With a synthetic objective that penalises one specific rank at
        the chain head, the optimizer must route around it."""
        topo = _topology(8, SUMMIT)

        def chain_time(ranks):
            return 10.0 if ranks[0] == 0 else 1.0

        res = optimize_placement(
            topo, g_inter=4, n_replicas=2, chain_time=chain_time
        )
        assert res.default_makespan == 10.0  # block layout roots replica 0 at rank 0
        assert res.makespan == 1.0

    def test_placement_validation(self):
        with pytest.raises(ValueError, match="two replicas"):
            Placement(((0, 1), (1, 2)))
        with pytest.raises(ValueError, match="ragged"):
            Placement(((0, 1), (2,)))
        topo = _topology(12, SUMMIT)
        assert block_placement(topo, 3, 4).n_replicas == 3

    def test_placement_analytic_conflict_raises(self, session):
        with pytest.raises(ValueError, match="placement"):
            session.breakdown(
                Job(model="gpt3-2.7b", n_gpus=16, fidelity="analytic", placement="best")
            )

    def test_cnn_has_no_pipeline_to_place(self, session):
        with pytest.raises(ValueError, match="no pipeline"):
            session.place(Job(model="vgg19", n_gpus=16))

    def test_job_round_trips_new_knobs(self):
        job = Job(model="gpt3-xl", n_gpus=32, overlap=True, placement="best")
        assert Job.from_dict(job.to_dict()) == job
        assert "overlap" in job.describe() and "placement=best" in job.describe()
        with pytest.raises(ValueError, match="placement"):
            Job(model="gpt3-xl", n_gpus=32, placement="nope")


class TestBucketedGradSync:
    def test_matches_backend_allreduce_dense_state(self):
        """Bucketed concatenated all-reduce == per-tensor all-reduce."""
        from repro.core import SAMOConfig
        from repro.tensor import Linear, Sequential, Tensor
        from repro.train.mixed_precision import DenseMixedPrecisionState

        def worker(comm):
            rng = np.random.default_rng(comm.rank)
            net = Sequential(Linear(6, 8, rng=rng), Linear(8, 4, rng=rng))
            state = DenseMixedPrecisionState(net, SAMOConfig(lr=1e-2))
            x = Tensor(rng.standard_normal((3, 6)).astype(np.float32))
            net(x).sum().backward()
            state.compress_gradients()
            want = [
                (comm.allreduce(g.astype(np.float32)) / comm.size).astype(np.float16)
                for g in state.grad16
            ]
            sync = BucketedGradSync(comm, n_buckets=3)
            sync(state)
            got = list(state.grad16)
            return all(np.array_equal(w, g) for w, g in zip(want, got)), sync.buckets_sent

        for ok, buckets in run_parallel(4, worker):
            assert ok
            assert buckets == 3

    def test_bucket_partition_covers_everything(self):
        views = [np.ones(n, dtype=np.float16) for n in (5, 1, 7, 2, 9)]
        sync = BucketedGradSync.__new__(BucketedGradSync)
        sync.n_buckets = 3
        buckets = sync._buckets(views)
        assert 1 <= len(buckets) <= 3
        flat = [v for b in buckets for v in b]
        assert [v.size for v in flat] == [5, 1, 7, 2, 9]

    def test_rejects_unknown_state(self):
        sync = BucketedGradSync(comm=None)
        with pytest.raises(TypeError, match="unsupported training state"):
            sync(object())
