"""Cluster substrate: topology, device model, events, collectives, p2p."""

import dataclasses

import numpy as np
import pytest

from repro.cluster import (
    SUMMIT,
    CommSample,
    ComputeKind,
    DeviceModel,
    EventLoop,
    Topology,
    broadcast_time,
    fit_calibration,
    p2p_message_time,
    pipeline_message_bytes,
    ring_allgather_time,
    ring_allreduce_time,
    ring_reduce_scatter_time,
    synthetic_comm_samples,
    with_memory_budget,
)


class TestTopology:
    def test_node_assignment(self):
        topo = Topology(24)
        assert topo.n_nodes == 4
        assert topo.node_of(0) == 0 and topo.node_of(5) == 0 and topo.node_of(6) == 1

    def test_link_classes(self):
        topo = Topology(12)
        assert topo.link(0, 5).name == "nvlink"
        assert topo.link(0, 6).name == "infiniband"

    def test_nvlink_faster(self):
        topo = Topology(12)
        nbytes = 10 * 1024**2
        assert topo.p2p_time(0, 1, nbytes) < topo.p2p_time(0, 7, nbytes)

    def test_self_message_free(self):
        assert Topology(4).p2p_time(2, 2, 1000) == 0.0

    def test_rank_range_checked(self):
        with pytest.raises(IndexError):
            Topology(4).node_of(4)

    def test_group_spans_nodes(self):
        topo = Topology(12)
        assert not topo.group_spans_nodes([0, 1, 2])
        assert topo.group_spans_nodes([0, 6])

    def test_needs_one_gpu(self):
        with pytest.raises(ValueError):
            Topology(0)


class TestDeviceModel:
    def test_time_linear_in_flops(self):
        d = DeviceModel()
        assert d.time(2e12) == pytest.approx(2 * d.time(1e12))

    def test_kind_ordering(self):
        d = DeviceModel()
        f = 1e12
        assert d.time(f, ComputeKind.DENSE_GEMM) < d.time(f, ComputeKind.SPARSE_SPUTNIK)

    def test_sputnik_slowdown_applied(self):
        d = DeviceModel()
        ratio = d.time(1e12, ComputeKind.SPARSE_SPUTNIK) / d.time(1e12, ComputeKind.DENSE_GEMM)
        assert ratio == pytest.approx(SUMMIT.sputnik_compute_slowdown)

    def test_conv_batch_ramp(self):
        d = DeviceModel()
        assert d.efficiency(ComputeKind.CONV, samples_per_gpu=1) < d.efficiency(
            ComputeKind.CONV, samples_per_gpu=64
        )

    def test_memory_capacity(self):
        d = DeviceModel()
        assert d.fits(15 * 1024**3) and not d.fits(17 * 1024**3)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            DeviceModel().time(-1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            DeviceModel().time(1.0, "quantum")


class TestEventLoop:
    def test_ordering(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("b"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.run()
        assert order == ["a", "b"] and loop.now == 2.0

    def test_ties_fifo(self):
        loop = EventLoop()
        order = []
        for i in range(5):
            loop.schedule(1.0, lambda i=i: order.append(i))
        loop.run()
        assert order == [0, 1, 2, 3, 4]

    def test_cascading_events(self):
        loop = EventLoop()
        seen = []

        def fire(depth):
            seen.append(loop.now)
            if depth:
                loop.schedule(0.5, lambda: fire(depth - 1))

        loop.schedule(0.0, lambda: fire(3))
        loop.run()
        assert seen == [0.0, 0.5, 1.0, 1.5]

    def test_past_scheduling_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)

    def test_runaway_guard(self):
        loop = EventLoop()

        def again():
            loop.schedule(0.1, again)

        loop.schedule(0.0, again)
        with pytest.raises(RuntimeError):
            loop.run(max_events=100)


class TestCollectives:
    def test_allreduce_cost_formula(self):
        """Invariant 5: ring all-reduce = 2(G-1)α + 2(G-1)/G · n/β."""
        n, g = 10**8, 16
        expected = 2 * (g - 1) * SUMMIT.coll_alpha + (2 * (g - 1) / g) * n / SUMMIT.coll_beta
        assert ring_allreduce_time(n, g) == pytest.approx(expected)

    def test_single_rank_free(self):
        assert ring_allreduce_time(10**6, 1) == 0.0

    def test_zero_bytes_free(self):
        assert ring_allreduce_time(0, 16) == 0.0

    def test_allreduce_increases_with_bytes_and_ranks(self):
        assert ring_allreduce_time(2 * 10**8, 16) > ring_allreduce_time(10**8, 16)
        assert ring_allreduce_time(10**8, 32) > ring_allreduce_time(10**8, 16)

    def test_reduce_scatter_half_of_allreduce_bandwidth_term(self):
        n, g = 10**9, 8
        ar = ring_allreduce_time(n, g) - 2 * (g - 1) * SUMMIT.coll_alpha
        rs = ring_reduce_scatter_time(n, g) - (g - 1) * SUMMIT.coll_alpha
        assert ar == pytest.approx(2 * rs)

    def test_allgather_equals_reduce_scatter(self):
        assert ring_allgather_time(10**7, 8) == ring_reduce_scatter_time(10**7, 8)

    def test_intra_node_group_uses_nvlink(self):
        topo = Topology(12)
        t_intra = ring_allreduce_time(10**8, 4, topology=topo, ranks=[0, 1, 2, 3])
        t_inter = ring_allreduce_time(10**8, 4, topology=topo, ranks=[0, 6, 7, 8])
        assert t_intra < t_inter

    def test_broadcast(self):
        assert broadcast_time(10**6, 4) > 0
        assert broadcast_time(10**6, 1) == 0.0

    def test_broadcast_intra_node_uses_nvlink(self):
        """Regression: broadcast was topology-blind, always pricing
        intra-node groups at the cross-node coll_beta."""
        topo = Topology(12)
        t_intra = broadcast_time(10**8, 4, topology=topo, ranks=[0, 1, 2, 3])
        t_inter = broadcast_time(10**8, 4, topology=topo, ranks=[0, 6, 7, 8])
        assert t_intra < t_inter
        # cross-node groups match the topology-free default
        assert t_inter == pytest.approx(broadcast_time(10**8, 4))

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(100, 0)


class TestP2P:
    def test_alpha_beta(self):
        t = p2p_message_time(10**7)
        assert t == pytest.approx(SUMMIT.p2p_alpha + 10**7 / SUMMIT.p2p_beta)

    def test_zero_bytes_free(self):
        assert p2p_message_time(0) == 0.0

    def test_with_topology_link_selection(self):
        topo = Topology(12)
        assert p2p_message_time(10**6, 0, 1, topology=topo) < p2p_message_time(
            10**6, 0, 11, topology=topo
        )

    def test_pipeline_message_bytes(self):
        # mbs=2, 2048x2560 activation, fp16
        assert pipeline_message_bytes(2, 2048 * 2560) == 2 * 2048 * 2560 * 2


class TestCalibrationValidation:
    """NaN/inf/non-positive constants must fail loudly at construction.

    The calibration is the machine's cache identity: a silently accepted
    NaN poisons every downstream memoisation key and every batch time.
    Follows the ScenarioSet weight-hardening pattern (test_api.py).
    """

    def test_default_is_valid(self):
        assert dataclasses.replace(SUMMIT) == SUMMIT

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0, -1.5])
    def test_physical_constant_rejected(self, bad):
        with pytest.raises(ValueError, match="p2p_beta"):
            dataclasses.replace(SUMMIT, p2p_beta=bad)

    @pytest.mark.parametrize("bad", [float("nan"), -0.1, 1.5])
    def test_fraction_bounds(self, bad):
        with pytest.raises(ValueError, match="dp_overlap_fraction"):
            dataclasses.replace(SUMMIT, dp_overlap_fraction=bad)

    def test_fractions_may_be_zero(self):
        cal = dataclasses.replace(SUMMIT, dp_overlap_fraction=0.0, other_fraction=0.0)
        assert cal.dp_overlap_fraction == 0.0

    def test_non_numbers_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            dataclasses.replace(SUMMIT, coll_alpha="fast")
        with pytest.raises(ValueError, match="must be a number"):
            dataclasses.replace(SUMMIT, coll_alpha=True)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0, -16.0, "16", None])
    def test_memory_budget_rejected(self, bad):
        with pytest.raises(ValueError, match="budget_gb"):
            with_memory_budget(bad)

    def test_memory_budget_accepts_positive(self):
        assert with_memory_budget(32.0).gpu_memory_bytes == 32 * 1024**3
        # cached: identical instance for identical budget (stable cache keys)
        assert with_memory_budget(32.0) is with_memory_budget(32.0)


class TestCalibrationFit:
    def test_comm_sample_validation(self):
        with pytest.raises(ValueError, match="unknown channel"):
            CommSample("broadcast", 1024, 1e-3)
        with pytest.raises(ValueError, match="nbytes"):
            CommSample("p2p", 0, 1e-3)
        with pytest.raises(ValueError, match="seconds"):
            CommSample("p2p", 1024, 0.0)
        with pytest.raises(ValueError, match="seconds"):
            CommSample("p2p", 1024, float("nan"))
        with pytest.raises(ValueError, match="group_size"):
            CommSample("collective", 1024, 1e-3, group_size=1)

    def test_fit_needs_samples(self):
        with pytest.raises(ValueError, match="at least one"):
            fit_calibration([])
        with pytest.raises(ValueError, match="CommSample"):
            fit_calibration([(1024, 1e-3)])

    def test_fit_needs_two_distinct_sizes_per_channel(self):
        same = [CommSample("p2p", 1024, 1e-3), CommSample("p2p", 1024, 1.1e-3)]
        with pytest.raises(ValueError, match="distinct"):
            fit_calibration(same)

    def test_noiseless_fit_is_exact(self):
        fitted = fit_calibration(synthetic_comm_samples(SUMMIT, seed=7, noise=0.0))
        assert fitted.p2p_alpha == pytest.approx(SUMMIT.p2p_alpha, rel=1e-9)
        assert fitted.p2p_beta == pytest.approx(SUMMIT.p2p_beta, rel=1e-9)
        assert fitted.coll_alpha == pytest.approx(SUMMIT.coll_alpha, rel=1e-9)
        assert fitted.coll_beta == pytest.approx(SUMMIT.coll_beta, rel=1e-9)

    def test_noisy_fit_recovers_within_noise(self):
        fitted = fit_calibration(synthetic_comm_samples(SUMMIT, seed=0, noise=0.02))
        for name in ("p2p_alpha", "p2p_beta", "coll_alpha", "coll_beta"):
            rel = abs(getattr(fitted, name) / getattr(SUMMIT, name) - 1.0)
            assert rel < 0.05, (name, rel)

    def test_channel_without_samples_keeps_base(self):
        only_p2p = [s for s in synthetic_comm_samples(SUMMIT, seed=1) if s.channel == "p2p"]
        fitted = fit_calibration(only_p2p)
        assert fitted.coll_alpha == SUMMIT.coll_alpha
        assert fitted.coll_beta == SUMMIT.coll_beta
        assert fitted.p2p_alpha != SUMMIT.p2p_alpha

    def test_inconsistent_timings_raise(self):
        # decreasing time with increasing size => negative 1/beta
        bad = [
            CommSample("p2p", 1024, 1.0),
            CommSample("p2p", 64 * 1024**2, 1e-6),
        ]
        with pytest.raises(ValueError, match="non-physical"):
            fit_calibration(bad)

    def test_deterministic_per_seed(self):
        a = fit_calibration(synthetic_comm_samples(SUMMIT, seed=5))
        b = fit_calibration(synthetic_comm_samples(SUMMIT, seed=5))
        assert a == b
        assert a != fit_calibration(synthetic_comm_samples(SUMMIT, seed=6))
