"""Cross-layer scenario consistency: analytic model vs event simulator
vs planner as degradation knobs turn.

Two properties hold the whole scenario system together:

(a) **Neutral parity** — a :class:`ClusterScenario` with every knob at
    its neutral value is the identity transform: the ring collectives,
    the pipeline engine, the batch model, and the sim estimator must
    reproduce the scenario-free uniform analytic costs (Eqs. 4-7)
    *exactly*, extending ``test_simulator_consistency.py``'s
    closed-form anchors to the scenario layer.

(b) **Monotone degradation** — turning any knob the wrong way never
    makes the batch cheaper: a slower ring link, a stalling allreduce
    rank, or halved cross-node bandwidth can only increase the
    collective phase, and a slower pipeline link/stage can only
    lengthen the uniform-baseline schedule. (Batch-level *stage*
    stragglers are exempt by design: the event engine reproduces
    Graham-style scheduling anomalies where a mild straggler shortens
    an already-skewed 1F1B schedule — see
    ``test_pipeline_hetero.TestBatchModelThreading`` — so compute-knob
    monotonicity is asserted on the uniform synthetic baseline where no
    prior skew exists.)
"""

import pytest

from repro.cluster import (
    SUMMIT,
    Topology,
    broadcast_time,
    ring_allgather_time,
    ring_allreduce_time,
    ring_reduce_scatter_time,
)
from repro.models import get_spec
from repro.parallel import (
    SCENARIOS,
    ClusterScenario,
    PipelineScenario,
    bubble_time,
    collective_time,
    run_scenario,
    simulate_batch,
)

NEUTRAL = ClusterScenario("neutral", "every knob at its identity value")


def _monotone(seq):
    return all(b >= a - 1e-12 for a, b in zip(seq, seq[1:]))


class TestNeutralScenarioParity:
    """(a): all multipliers at 1 reproduce the uniform analytic costs."""

    @pytest.mark.parametrize("nbytes", [0, 10**6, 10**8, 3 * 10**9])
    @pytest.mark.parametrize("group", [1, 2, 8, 64])
    def test_ring_collectives_bit_exact(self, nbytes, group):
        for fn in (
            ring_allreduce_time,
            ring_reduce_scatter_time,
            ring_allgather_time,
            broadcast_time,
        ):
            assert fn(nbytes, group, scenario=NEUTRAL) == fn(nbytes, group)

    @pytest.mark.parametrize("ranks", [[0, 1, 2], [0, 6, 7, 8]])
    def test_topology_aware_collectives_bit_exact(self, ranks):
        topo = Topology(12)
        assert ring_allreduce_time(
            10**8, len(ranks), topology=topo, ranks=ranks, scenario=NEUTRAL
        ) == ring_allreduce_time(10**8, len(ranks), topology=topo, ranks=ranks)

    def test_collective_time_bit_exact(self):
        spec = get_spec("gpt3-2.7b")
        assert collective_time(
            spec, 2, 64, sparse=True, scenario=NEUTRAL
        ) == collective_time(spec, 2, 64, sparse=True)

    @pytest.mark.parametrize("g,m,tf,tb", [(2, 4, 1.0, 2.0), (4, 8, 0.02, 0.06), (8, 16, 0.013, 0.039)])
    def test_pipeline_uniform_limit_is_eq7(self, g, m, tf, tb):
        trace, info = run_scenario(
            NEUTRAL, g_inter=g, n_microbatches=m, t_f=tf, t_b=tb
        )
        eq7 = bubble_time(g, tf * g, tb * g)
        assert info["mean_idle"] == pytest.approx(eq7, rel=1e-12)
        assert trace.makespan == pytest.approx(m * (tf + tb) + eq7, rel=1e-12)
        assert info["allreduce_slowdown"] == 1.0

    @pytest.mark.parametrize("framework", ["axonn", "axonn+samo", "deepspeed-3d"])
    @pytest.mark.parametrize("n_gpus", [32, 64])
    def test_batch_model_neutral_equals_scenario_free(self, framework, n_gpus):
        """Passing the neutral scenario must equal the scenario-free sim
        path in every phase (the collective phase bit-exactly)."""
        spec = get_spec("gpt3-xl")
        base = simulate_batch(spec, n_gpus, framework, pipeline_fidelity="sim")
        neutral = simulate_batch(spec, n_gpus, framework, scenario=NEUTRAL)
        assert neutral.collective == base.collective
        assert neutral.compute == base.compute
        assert neutral.bubble == pytest.approx(base.bubble, rel=1e-12)
        assert neutral.total == pytest.approx(base.total, rel=1e-12)

    def test_uniform_preset_has_neutral_collectives(self):
        sc = SCENARIOS["uniform"]
        assert not sc.degrades_collectives
        assert sc.collective_beta_multiplier(8) == 1.0
        assert sc.collective_stall_factor(8) == 1.0

    def test_cluster_scenario_is_pipeline_scenario(self):
        """PR 2 call sites constructed PipelineScenario; the collective
        extension must not have forked the type."""
        assert PipelineScenario is ClusterScenario
        sc = PipelineScenario("x", straggler_stage=-1, straggler_factor=2.0)
        assert sc.scale_stage_times([1.0, 1.0]) == [1.0, 2.0]


class TestMonotoneDegradation:
    """(b): every knob, turned further, never cheapens the batch."""

    SPEC = "gpt3-xl"

    def _totals(self, make, values):
        spec = get_spec(self.SPEC)
        return [simulate_batch(spec, 64, "axonn", scenario=make(v)).total for v in values]

    def test_cross_node_multiplier_monotone(self):
        totals = self._totals(
            lambda v: ClusterScenario("x", cross_node_bw_multiplier=v),
            (1.0, 0.8, 0.5, 0.25, 0.1),
        )
        assert _monotone(totals)
        assert totals[-1] > totals[0]

    def test_ring_link_multiplier_monotone(self):
        totals = self._totals(
            lambda v: ClusterScenario("x", ring_link_multipliers=(v, 1.0)),
            (1.0, 0.5, 0.25, 0.125),
        )
        assert _monotone(totals)
        assert totals[-1] > totals[0]

    def test_coll_straggler_factor_monotone(self):
        totals = self._totals(
            lambda v: ClusterScenario("x", coll_straggler_rank=0, coll_straggler_factor=v),
            (1.0, 1.25, 1.5, 2.0, 4.0),
        )
        assert _monotone(totals)
        assert totals[-1] > totals[0]

    def test_pipeline_slow_link_factor_monotone_in_batch(self):
        """Slower link => never-cheaper batch time."""
        totals = self._totals(
            lambda v: ClusterScenario("x", slow_link=1, slow_link_factor=v),
            (1.0, 2.0, 4.0, 8.0),
        )
        assert _monotone(totals)
        assert totals[-1] > totals[0]

    def test_pipeline_straggler_monotone_on_uniform_baseline(self):
        spans = [
            run_scenario(
                ClusterScenario("x", straggler_stage=-1, straggler_factor=v)
            )[0].makespan
            for v in (1.0, 1.25, 1.5, 2.0, 3.0)
        ]
        assert _monotone(spans)
        assert spans[-1] > spans[0]

    def test_pipeline_slow_link_monotone_on_uniform_baseline(self):
        spans = [
            run_scenario(
                ClusterScenario("x", slow_link=1, slow_link_factor=v, base_msg_time=0.25)
            )[0].makespan
            for v in (1.0, 2.0, 4.0, 8.0)
        ]
        assert _monotone(spans)
        assert spans[-1] > spans[0]

    def test_compute_skew_monotone_on_uniform_baseline(self):
        spans = [
            run_scenario(ClusterScenario("x", compute_skew=v))[0].makespan
            for v in (0.0, 0.2, 0.4, 0.6)
        ]
        assert _monotone(spans)
        assert spans[-1] > spans[0]

    def test_allreduce_monotone_in_group_knobs(self):
        """Closed-form check straight on the ring model."""
        n = 10**9
        base = ring_allreduce_time(n, 16)
        for sc in (
            SCENARIOS["degraded-ring"],
            SCENARIOS["ring-straggler"],
            SCENARIOS["slow-ring-link"],
        ):
            assert ring_allreduce_time(n, 16, scenario=sc) > base


class TestScenarioPresets:
    def test_collective_presets_registered(self):
        for name in ("degraded-ring", "ring-straggler", "slow-ring-link", "degraded"):
            assert name in SCENARIOS
            assert SCENARIOS[name].degrades_collectives

    def test_degraded_ring_halves_cross_node_only(self):
        sc = SCENARIOS["degraded-ring"]
        topo = Topology(12)
        intra = [0, 1, 2, 3]
        inter = [0, 6, 7, 8]
        assert ring_allreduce_time(
            10**8, 4, topology=topo, ranks=intra, scenario=sc
        ) == ring_allreduce_time(10**8, 4, topology=topo, ranks=intra)
        assert ring_allreduce_time(
            10**8, 4, topology=topo, ranks=inter, scenario=sc
        ) > ring_allreduce_time(10**8, 4, topology=topo, ranks=inter)

    def test_slowest_ring_link_paces_the_group(self):
        """Per-link multipliers resolve cyclically and the min wins."""
        sc = ClusterScenario("x", ring_link_multipliers=(1.0, 0.5, 0.25))
        assert sc.collective_beta_multiplier(2) == 0.5  # links 0, 1 only
        assert sc.collective_beta_multiplier(5) == 0.25
        assert sc.collective_beta_multiplier(1) == 1.0  # trivial group

    def test_planner_ranks_under_collective_scenario(self):
        from repro.autotune import plan

        res = plan(
            "gpt3-xl", 32, fidelity="sim", scenario="degraded-ring",
            microbatch_sizes=(1,),
        )
        assert res.fidelity == "sim@degraded-ring"
        clean = plan("gpt3-xl", 32, fidelity="sim", microbatch_sizes=(1,))
        degraded = {e.config: e for e in res.evaluations}
        for ev in clean.evaluations:
            if ev.config in degraded and ev.config.g_data > 1:
                assert (
                    degraded[ev.config].breakdown.collective
                    > ev.breakdown.collective
                )

    def test_coll_straggler_respects_group_membership(self):
        """Groups that pass their ranks only stall when the straggler is
        a member; rank-blind callers conservatively assume it is."""
        sc = ClusterScenario("x", coll_straggler_rank=7, coll_straggler_factor=2.0)
        assert sc.collective_stall_factor(4, ranks=[0, 1, 2, 3]) == 1.0
        assert sc.collective_stall_factor(4, ranks=[6, 7, 8, 9]) == 2.0
        assert sc.collective_stall_factor(4) == 2.0  # ranks unknown
        topo = Topology(12)
        with_out = ring_allreduce_time(
            10**8, 4, topology=topo, ranks=[0, 1, 2, 3], scenario=sc
        )
        with_in = ring_allreduce_time(
            10**8, 4, topology=topo, ranks=[6, 7, 8, 9], scenario=sc
        )
        assert with_out == ring_allreduce_time(10**8, 4, topology=topo, ranks=[0, 1, 2, 3])
        assert with_in > with_out

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ClusterScenario("x", coll_straggler_factor=0.0)
        with pytest.raises(ValueError):
            ClusterScenario("x", coll_straggler_rank=-3)
        with pytest.raises(ValueError):
            ClusterScenario("x", cross_node_bw_multiplier=-0.5)
        with pytest.raises(ValueError):
            ClusterScenario("x", ring_link_multipliers=(1.0, 0.0))

    def test_list_multipliers_coerced_hashable(self):
        """Planner cache keys hash the scenario; list input must not
        break that."""
        sc = ClusterScenario("x", ring_link_multipliers=[0.5, 1.0])
        assert sc.ring_link_multipliers == (0.5, 1.0)
        assert hash(sc) == hash(ClusterScenario("x", ring_link_multipliers=(0.5, 1.0)))
