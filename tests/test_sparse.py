"""Sparse kernels (spMM, sDDMM, FlatCOO) and the Figure 1 models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import (
    CUBLAS_FP16,
    CUSPARSE_FP16,
    FlatCOO,
    GemmModel,
    SPUTNIK_FP16,
    fc_layer_time,
    figure1_sweep,
    sddmm,
    sddmm_dense,
    sparse_over_dense_ratio,
    spmm_dense,
    spmm_gather,
    spmm_scipy,
)


class TestFlatCOO:
    def test_from_dense_roundtrip(self, rng):
        d = rng.standard_normal((5, 7)).astype(np.float32)
        d[rng.random((5, 7)) < 0.6] = 0.0
        coo = FlatCOO.from_dense(d)
        assert np.array_equal(coo.to_dense(), d)

    def test_random_sparsity(self, rng):
        coo = FlatCOO.random((40, 50), 0.9, rng)
        assert coo.sparsity == pytest.approx(0.9, abs=0.01)

    def test_rows_cols_consistent(self, rng):
        coo = FlatCOO.random((6, 9), 0.5, rng)
        r, c = coo.rows_cols()
        assert np.array_equal(r * 9 + c, coo.ind)

    def test_csr_matches_dense(self, rng):
        coo = FlatCOO.random((8, 8), 0.7, rng)
        assert np.allclose(coo.to_csr().toarray(), coo.to_dense())

    def test_shared_pattern_with_values(self, rng):
        coo = FlatCOO.random((4, 4), 0.5, rng)
        other = coo.with_values(np.ones(coo.nnz, np.float32))
        assert other.ind is coo.ind  # literally shared index memory

    def test_storage_bytes(self, rng):
        coo = FlatCOO.random((10, 10), 0.9, rng)
        assert coo.storage_bytes() == coo.nnz * (4 + 4)  # int32 + fp32

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            FlatCOO(np.array([0]), np.array([1.0]), (2, 2, 2))

    def test_value_length_mismatch(self):
        with pytest.raises(ValueError):
            FlatCOO(np.array([0, 1]), np.array([1.0]), (2, 2))


class TestSpMM:
    @settings(max_examples=25, deadline=None)
    @given(
        out_f=st.integers(2, 24),
        in_f=st.integers(2, 24),
        batch=st.integers(1, 8),
        sparsity=st.floats(0.0, 0.95),
        seed=st.integers(0, 100),
    )
    def test_property_all_kernels_agree(self, out_f, in_f, batch, sparsity, seed):
        rng = np.random.default_rng(seed)
        w = FlatCOO.random((out_f, in_f), sparsity, rng)
        x = rng.standard_normal((batch, in_f)).astype(np.float32)
        ref = spmm_dense(w, x)
        assert np.allclose(spmm_scipy(w, x), ref, atol=1e-4)
        assert np.allclose(spmm_gather(w, x), ref, atol=1e-4)

    def test_empty_pattern(self, rng):
        w = FlatCOO(np.array([], np.int32), np.array([], np.float32), (4, 6))
        x = rng.standard_normal((3, 6)).astype(np.float32)
        assert np.allclose(spmm_scipy(w, x), 0.0)


class TestSDDMM:
    @settings(max_examples=25, deadline=None)
    @given(
        out_f=st.integers(2, 16),
        in_f=st.integers(2, 16),
        batch=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    def test_property_matches_dense_reference(self, out_f, in_f, batch, seed):
        rng = np.random.default_rng(seed)
        pat = FlatCOO.random((out_f, in_f), 0.6, rng)
        dy = rng.standard_normal((batch, out_f)).astype(np.float32)
        x = rng.standard_normal((batch, in_f)).astype(np.float32)
        assert np.allclose(sddmm(pat, dy, x), sddmm_dense(pat, dy, x), atol=1e-4)

    def test_output_aligned_with_pattern(self, rng):
        """sDDMM output is exactly SAMO's compressed gradient layout."""
        pat = FlatCOO.random((6, 8), 0.5, rng)
        dy = rng.standard_normal((4, 6)).astype(np.float32)
        x = rng.standard_normal((4, 8)).astype(np.float32)
        vals = sddmm(pat, dy, x)
        assert vals.shape == pat.ind.shape

    def test_shape_validation(self, rng):
        pat = FlatCOO.random((6, 8), 0.5, rng)
        with pytest.raises(ValueError):
            sddmm(pat, rng.standard_normal((4, 6)), rng.standard_normal((5, 8)))
        with pytest.raises(ValueError):
            sddmm(pat, rng.standard_normal((4, 7)), rng.standard_normal((4, 8)))

    def test_fc_backward_integration(self, rng):
        """dW at kept positions from sDDMM == dense dW gathered."""
        w = FlatCOO.random((5, 9), 0.7, rng)
        x = rng.standard_normal((6, 9)).astype(np.float32)
        dy = rng.standard_normal((6, 5)).astype(np.float32)
        dense_dw = dy.T @ x
        assert np.allclose(sddmm(w, dy, x), dense_dw.reshape(-1)[w.ind], atol=1e-4)


class TestKernelModels:
    def test_figure1_ordering(self):
        """cuBLAS < Sputnik < cuSPARSE at every size (the Fig. 1 stack)."""
        sweep = figure1_sweep()
        for i in range(len(sweep["size"])):
            assert sweep["cublas"][i] < sweep["sputnik"][i] < sweep["cusparse"][i]

    def test_six_to_22x_band(self):
        """The paper's headline: dense is 6-22x faster than Sputnik."""
        ratios = [sparse_over_dense_ratio(n) for n in (128, 256, 512, 1024, 2048, 4096)]
        assert 5.5 < min(ratios) < 8.0
        assert 20.0 < max(ratios) < 24.0
        assert ratios == sorted(ratios)  # gap grows with size

    def test_times_monotone_in_size(self):
        sweep = figure1_sweep()
        for k in ("cublas", "sputnik", "cusparse"):
            assert sweep[k] == sorted(sweep[k]), k

    def test_efficiency_ramp(self):
        assert CUBLAS_FP16.efficiency(128) < CUBLAS_FP16.efficiency(4096)
        assert CUBLAS_FP16.efficiency(4096) < CUBLAS_FP16.eff_max

    def test_custom_model_time_positive(self):
        m = GemmModel("test", 1e12, eff_max=0.5, half_sat=100)
        assert m.time(10, 10, 10) > 0

    def test_sparsity_scales_sputnik_work(self):
        t95 = fc_layer_time("sputnik", 576, 1024, sparsity=0.95)
        t80 = fc_layer_time("sputnik", 576, 1024, sparsity=0.80)
        assert t95 < t80  # fewer nnz -> less work

    def test_cpu_kernels_execute_at_fig1_shape(self, rng):
        """Smoke: run the real CPU kernels on one Fig. 1 configuration."""
        w = FlatCOO.random((256, 256), 0.9, rng)
        x = rng.standard_normal((64, 256)).astype(np.float32)
        a = spmm_scipy(w, x)
        b = spmm_dense(w, x)
        assert np.allclose(a, b, atol=1e-3)
