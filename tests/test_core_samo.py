"""SAMO core: indexing, compression, memory model, training state.

Pins down invariants 1-3 of DESIGN.md.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BREAK_EVEN_SPARSITY,
    SAMOConfig,
    SAMOOptimizer,
    SAMOTrainingState,
    compress,
    dense_model_state_bytes,
    expand,
    expand_into,
    flatten_indices,
    index_bytes,
    memory_savings_bytes,
    memory_savings_percent,
    samo_breakdown,
    samo_model_state_bytes,
    unflatten_indices,
    validate_flat_indices,
)
from repro.models import GPT, GPT_CONFIGS
from repro.pruning import magnitude_prune, random_prune
from repro.tensor import Linear, Sequential, Tensor


class TestIndexing:
    def test_paper_example(self):
        """2x2 tensor, non-zeros at (0,0),(1,1) -> flat [0, 3] (Sec III-B)."""
        flat = flatten_indices(np.array([[0, 0], [1, 1]]), (2, 2))
        assert np.array_equal(flat, [0, 3])

    def test_roundtrip(self, rng):
        shape = (3, 4, 5)
        coords = np.stack([rng.integers(0, s, 10) for s in shape], axis=1)
        coords = np.unique(coords, axis=0)
        flat = flatten_indices(coords, shape)
        back = unflatten_indices(flat, shape)
        assert np.array_equal(np.sort(back.view("i8,i8,i8"), axis=0).view(back.dtype),
                              np.sort(coords.view("i8,i8,i8"), axis=0).view(coords.dtype))

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            flatten_indices(np.array([[0, 0]]), (2, 2, 2))

    def test_validation_catches_unsorted_dup_range(self):
        with pytest.raises(ValueError):
            validate_flat_indices(np.array([3, 1], dtype=np.int32), 10)
        with pytest.raises(ValueError):
            validate_flat_indices(np.array([1, 1], dtype=np.int32), 10)
        with pytest.raises(ValueError):
            validate_flat_indices(np.array([1, 100], dtype=np.int32), 10)

    def test_index_bytes(self):
        assert index_bytes(1000) == 4000  # int32


class TestCompression:
    def test_roundtrip_equals_masked(self, rng):
        x = rng.normal(size=(6, 7)).astype(np.float32)
        ind = np.sort(rng.choice(42, 20, replace=False)).astype(np.int32)
        vals = compress(x, ind)
        dense = expand(vals, ind, x.shape)
        keep = np.zeros(42, bool)
        keep[ind] = True
        assert np.array_equal(dense.reshape(-1)[keep], x.reshape(-1)[keep])
        assert np.all(dense.reshape(-1)[~keep] == 0)

    def test_fused_dtype_cast(self, rng):
        x = rng.normal(size=(4, 4)).astype(np.float32)
        ind = np.arange(8, dtype=np.int32)
        vals = compress(x, ind, out_dtype=np.float16)
        assert vals.dtype == np.float16

    def test_expand_shape_mismatch(self):
        with pytest.raises(ValueError):
            expand(np.zeros(3, np.float32), np.array([0, 1], np.int32), (2, 2))

    def test_expand_into_reuses_buffer(self, rng):
        out = np.full((4, 4), 7.0, np.float32)
        expand_into(np.ones(2, np.float32), np.array([0, 5], np.int32), out)
        assert out[0, 0] == 1.0 and out[1, 1] == 1.0 and out.sum() == 2.0

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(1, 200),
        frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 1000),
    )
    def test_property_roundtrip(self, n, frac, seed):
        """Invariant 1: expand(compress(x)) == x * mask for any pattern."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n).astype(np.float32)
        k = int(round(frac * n))
        ind = np.sort(rng.choice(n, k, replace=False)).astype(np.int32)
        dense = expand(compress(x, ind), ind, (n,))
        mask = np.zeros(n, np.float32)
        mask[ind] = 1.0
        assert np.array_equal(dense, x * mask)


class TestMemoryModel:
    def test_dense_is_20_phi_for_adam(self):
        assert dense_model_state_bytes(10**9) == 20 * 10**9

    def test_samo_formula_eq2(self):
        phi = 10**9
        for p in (0.0, 0.3, 0.8, 0.9):
            f = 1 - p
            expected = round(24 * f * phi) + 2 * phi
            assert samo_model_state_bytes(phi, p) == pytest.approx(expected, abs=30)

    def test_break_even_at_quarter(self):
        assert memory_savings_percent(BREAK_EVEN_SPARSITY) == pytest.approx(0.0, abs=0.01)
        assert memory_savings_percent(0.24) < 0
        assert memory_savings_percent(0.26) > 0

    def test_figure2_landmarks(self):
        """66-78% savings in the 0.8-0.9 regime; -30% at p=0 (Fig. 2)."""
        assert memory_savings_percent(0.8) == pytest.approx(66.0, abs=0.5)
        assert memory_savings_percent(0.9) == pytest.approx(78.0, abs=0.5)
        assert memory_savings_percent(0.0) == pytest.approx(-30.0, abs=0.5)

    def test_savings_monotone_in_sparsity(self):
        vals = [memory_savings_percent(p / 20) for p in range(21)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_breakdown_sums(self):
        b = samo_breakdown(1000, 0.9)
        assert b.total == sum(b.as_dict()[k] for k in
                              ("theta16", "grad16", "theta32", "grad32",
                               "optimizer_states", "index", "downcast_temp"))

    def test_theta16_always_dense(self):
        b = samo_breakdown(1000, 0.99)
        assert b.theta16 == 2000  # never compressed

    def test_sgd_state_variant(self):
        # SGD+momentum: 4 bytes state/param -> dense 16 phi
        assert dense_model_state_bytes(100, optimizer_state_bytes_per_param=4) == 1600

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            samo_breakdown(100, 1.5)


def tiny_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(12, 24, rng=rng), Linear(24, 6, rng=rng))


class TestSAMOTrainingState:
    def make(self, sparsity=0.8, optimizer="adam"):
        net = tiny_net()
        mask = magnitude_prune(net, sparsity)
        state = SAMOTrainingState(net, mask, SAMOConfig(optimizer=optimizer, lr=0.01))
        return net, mask, state

    def test_construction_applies_mask_and_quantises(self):
        net, mask, state = self.make()
        state.consistency_check()

    def test_warns_below_break_even(self):
        net = tiny_net()
        mask = magnitude_prune(net, 0.1)
        with pytest.warns(UserWarning):
            SAMOTrainingState(net, mask)

    def test_full_step_cycle(self, rng):
        net, mask, state = self.make()
        x = Tensor(rng.normal(size=(4, 12)).astype(np.float32))
        net(x).sum().backward()
        state.compress_gradients()
        assert all(e.param.grad is None for e in state.compressed)  # freed
        assert state.step()
        state.consistency_check()

    def test_pruned_positions_stay_zero_over_training(self, rng):
        net, mask, state = self.make(optimizer="adamw")
        for _ in range(5):
            x = Tensor(rng.normal(size=(4, 12)).astype(np.float32))
            net(x).sum().backward()
            state.compress_gradients()
            state.step()
        for e in state.compressed:
            keep = np.zeros(int(np.prod(e.shape)), bool)
            keep[e.ind] = True
            assert np.all(e.param.data.reshape(-1)[~keep] == 0.0)

    def test_gradient_accumulation_across_microbatches(self, rng):
        net, mask, state = self.make()
        x = Tensor(rng.normal(size=(4, 12)).astype(np.float32))
        net(x).sum().backward()
        state.compress_gradients()
        g1 = state.compressed[0].grad16_c.astype(np.float32).copy()
        net(x).sum().backward()
        state.compress_gradients()
        g2 = state.compressed[0].grad16_c.astype(np.float32)
        assert np.allclose(g2, 2 * g1, rtol=1e-2)

    def test_overflow_skips_step(self, rng):
        net, mask, state = self.make()
        x = Tensor(rng.normal(size=(4, 12)).astype(np.float32))
        net(x).sum().backward()
        state.compress_gradients()
        state.compressed[0].grad16_c[0] = np.float16(np.inf)
        before = state.compressed[0].theta32_c.copy()
        assert not state.step()
        assert np.array_equal(state.compressed[0].theta32_c, before)
        assert state.step_count == 0

    def test_loss_scale_unscaling(self, rng):
        """Training with scale S and unscale == training without scale."""
        nets = []
        for scale in (1.0, 1024.0):
            net = tiny_net()
            mask = magnitude_prune(net, 0.8)
            state = SAMOTrainingState(net, mask, SAMOConfig(optimizer="adam", lr=0.01))
            x = Tensor(np.linspace(-1, 1, 48).reshape(4, 12).astype(np.float32))
            out = net(x).sum()
            out.backward(np.full_like(out.data, scale))
            state.compress_gradients()
            state.step(loss_scale=scale)
            nets.append(net)
        for p1, p2 in zip(nets[0].parameters(), nets[1].parameters()):
            assert np.allclose(p1.data, p2.data, atol=1e-3)

    def test_measured_bytes_match_analytics_exactly(self):
        """Invariant 3: byte accounting equals Eq. 2 on prunable params."""
        net, mask, state = self.make(sparsity=0.75)
        measured = state.measured_bytes()
        phi_p = sum(int(np.prod(e.shape)) for e in state.compressed)
        nnz = sum(e.nnz for e in state.compressed)
        assert measured["index"] == 4 * nnz
        b = samo_breakdown(phi_p, 1 - nnz / phi_p)
        # components over prunable tensors only (dense entries add on top)
        assert measured["theta32"] - sum(d.theta32.nbytes for d in state.dense) == b.theta32

    def test_sgd_state_slots(self):
        net, mask, state = self.make(optimizer="sgd")
        assert all(len(e.opt_state_c) == 1 for e in state.compressed)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SAMOConfig(optimizer="rmsprop")
        with pytest.raises(ValueError):
            SAMOConfig(lr=0.0)
        with pytest.raises(ValueError):
            SAMOConfig(compress_nonprunable=True)


class TestSAMOOptimizerFacade:
    def test_sparse_allreduce_views_and_bytes(self, rng):
        net = tiny_net()
        mask = random_prune(net, 0.9, rng)
        opt = SAMOOptimizer(net, mask)
        x = Tensor(rng.normal(size=(2, 12)).astype(np.float32))
        net(x).sum().backward()
        opt.compress_gradients()
        views = opt.compressed_gradient_views()
        assert len(views) > 0
        nnz = mask.total_kept()
        dense_bias_elems = sum(
            p.size for n, p in net.named_parameters() if n not in mask
        )
        assert opt.gradient_message_bytes() == 2 * (nnz + dense_bias_elems)

    def test_average_gradients(self, rng):
        net = tiny_net()
        mask = random_prune(net, 0.5, rng)
        opt = SAMOOptimizer(net, mask)
        x = Tensor(rng.normal(size=(2, 12)).astype(np.float32))
        net(x).sum().backward()
        opt.compress_gradients()
        before = {n: g.astype(np.float32).copy() for n, g in opt.compressed_gradient_views()}
        opt.average_gradients(4)
        for n, g in opt.compressed_gradient_views():
            assert np.allclose(g.astype(np.float32), before[n] / 4, rtol=1e-2)

    def test_gpt_memory_reduction_band(self):
        """Measured SAMO bytes on a tiny GPT land in the 70-80% band of
        the dense 20-phi baseline (the Fig. 2 prediction at p=0.9)."""
        cfg = GPT_CONFIGS["gpt3-tiny"]
        model = GPT(cfg, seed=0)
        phi = model.num_parameters()
        mask = magnitude_prune(model, 0.9)
        opt = SAMOOptimizer(model, mask)
        total = opt.state.measured_bytes()["total"]
        dense = dense_model_state_bytes(phi)
        savings = 100 * (dense - total) / dense
        assert 70.0 < savings < 80.0
