"""Gradient checks and graph semantics of the autograd engine.

Every differentiable op's analytic vector-Jacobian product is compared to
central finite differences (invariant 6 of DESIGN.md).
"""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, no_grad, enable_grad, is_grad_enabled
from repro.tensor.autograd import unbroadcast


def _check(fn_tensor, fn_numpy, shape, gradcheck, rng, atol=1e-6, **kw):
    x = rng.normal(size=shape).astype(np.float64)
    t = Tensor(x.copy(), requires_grad=True)
    out = fn_tensor(t, **kw)
    out.sum().backward()
    num = gradcheck(lambda v: fn_numpy(v, **kw).sum(), x)
    assert np.allclose(t.grad, num, atol=atol), f"max err {np.abs(t.grad - num).max()}"


class TestElementwiseGradients:
    def test_add(self, gradcheck, rng):
        _check(lambda t: t + 2.5, lambda v: v + 2.5, (3, 4), gradcheck, rng)

    def test_mul(self, gradcheck, rng):
        _check(lambda t: t * t, lambda v: v * v, (3, 4), gradcheck, rng)

    def test_div(self, gradcheck, rng):
        x = np.abs(rng.normal(size=(3, 4))) + 1.0
        t = Tensor(x, requires_grad=True)
        (1.0 / t).sum().backward()
        num = gradcheck(lambda v: (1.0 / v).sum(), x)
        assert np.allclose(t.grad, num, atol=1e-5)

    def test_pow(self, gradcheck, rng):
        x = np.abs(rng.normal(size=(5,))) + 0.5
        t = Tensor(x, requires_grad=True)
        (t**3).sum().backward()
        assert np.allclose(t.grad, 3 * x**2, atol=1e-6)

    def test_exp_log_sqrt_tanh(self, gradcheck, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        for name in ("exp", "log", "sqrt", "tanh"):
            t = Tensor(x.copy(), requires_grad=True)
            getattr(t, name)().sum().backward()
            num = gradcheck(lambda v: getattr(np, name)(v).sum(), x)
            assert np.allclose(t.grad, num, atol=1e-5), name

    def test_abs(self, rng):
        x = rng.normal(size=(10,))
        t = Tensor(x, requires_grad=True)
        t.abs().sum().backward()
        assert np.allclose(t.grad, np.sign(x))

    def test_neg_sub(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, -1.0)


class TestBroadcasting:
    def test_unbroadcast_leading(self):
        g = np.ones((4, 3, 2))
        assert unbroadcast(g, (3, 2)).shape == (3, 2)
        assert np.allclose(unbroadcast(g, (3, 2)), 4.0)

    def test_unbroadcast_size_one_axis(self):
        g = np.ones((3, 5))
        out = unbroadcast(g, (3, 1))
        assert out.shape == (3, 1) and np.allclose(out, 5.0)

    def test_broadcast_add_grad(self, rng):
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(b.grad, 4.0)
        assert np.allclose(a.grad, 1.0)

    def test_broadcast_mul_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3)).astype(np.float64), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 3)).astype(np.float64), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(b.grad, a.data.sum(axis=0, keepdims=True))


class TestMatmul:
    def test_2d(self, gradcheck, rng):
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(5, 3))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        assert np.allclose(ta.grad, gradcheck(lambda v: (v @ b).sum(), a), atol=1e-5)
        assert np.allclose(tb.grad, gradcheck(lambda v: (a @ v).sum(), b), atol=1e-5)

    def test_batched(self, rng):
        a = rng.normal(size=(2, 4, 5))
        b = rng.normal(size=(2, 5, 3))
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        assert ta.grad.shape == a.shape and tb.grad.shape == b.shape
        assert np.allclose(ta.grad, np.ones((2, 4, 3)) @ np.swapaxes(b, -1, -2))

    def test_matvec(self, rng):
        a = rng.normal(size=(4, 5))
        v = rng.normal(size=(5,))
        ta, tv = Tensor(a, requires_grad=True), Tensor(v, requires_grad=True)
        (ta @ tv).sum().backward()
        assert np.allclose(tv.grad, a.sum(axis=0))


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self, rng):
        x = rng.normal(size=(3, 4, 5))
        for axis, keep in [(None, False), (1, False), (1, True), ((0, 2), False)]:
            t = Tensor(x, requires_grad=True)
            t.sum(axis=axis, keepdims=keep).sum().backward()
            assert np.allclose(t.grad, 1.0), (axis, keep)

    def test_mean_grad(self, rng):
        t = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        t.mean().backward()
        assert np.allclose(t.grad, 1.0 / 24)

    def test_mean_axis(self, rng):
        t = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        t.mean(axis=0).sum().backward()
        assert np.allclose(t.grad, 0.25)

    def test_max_grad_ties_split(self):
        t = Tensor(np.array([[1.0, 2.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.0, 0.5, 0.5]])

    def test_reshape_transpose_roundtrip(self, rng):
        x = rng.normal(size=(2, 3, 4))
        t = Tensor(x, requires_grad=True)
        t.reshape(6, 4).transpose(1, 0).sum().backward()
        assert t.grad.shape == x.shape and np.allclose(t.grad, 1.0)

    def test_T_property(self, rng):
        t = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        assert t.T.shape == (5, 3)

    def test_getitem_scatter_grad(self, rng):
        t = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        t[1:3].sum().backward()
        expected = np.zeros((5, 4))
        expected[1:3] = 1.0
        assert np.allclose(t.grad, expected)

    def test_astype_grad(self, rng):
        t = Tensor(rng.normal(size=(3,)).astype(np.float32), requires_grad=True)
        t.astype(np.float64).sum().backward()
        assert t.grad.dtype == np.float32 and np.allclose(t.grad, 1.0)


class TestGraphSemantics:
    def test_backward_requires_scalar(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_explicit_grad_shape_check(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(4))

    def test_grad_accumulates_across_backwards(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (t * 1.0).sum().backward()
        (t * 1.0).sum().backward()
        assert np.allclose(t.grad, 2.0)

    def test_no_grad_suppresses_graph(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with no_grad():
            out = t * 2
        assert out._parents == () and not out.requires_grad

    def test_enable_grad_inside_no_grad(self):
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()

    def test_interior_grads_freed_leaf_kept(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        mid = t * 2
        mid.sum().backward()
        assert mid.grad is None and t.grad is not None

    def test_retain_grad(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        mid = (t * 2).retain_grad()
        mid.sum().backward()
        assert mid.grad is not None

    def test_diamond_graph_accumulation(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        a = t * 2
        b = t * 3
        (a + b).sum().backward()
        assert np.allclose(t.grad, 5.0)

    def test_detach_cuts_graph(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = (t.detach() * 2).sum()
        assert not out.requires_grad

    def test_shared_subexpression(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        a = t * 2
        ((a + a) * 1.0).sum().backward()
        assert np.allclose(t.grad, 4.0)

    def test_non_float_input_cast(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.data.dtype == np.float32
