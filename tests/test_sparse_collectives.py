"""Sparse gradient collectives: values-only fast path, union fallback,
and the SAMO data-parallel synchronizer (paper Section IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import (
    CommError,
    SparseGradientSynchronizer,
    allreduce_compressed,
    mask_digest,
    run_parallel,
    sparse_allreduce_union,
)
from repro.core import SAMOConfig, SAMOTrainingState
from repro.pruning import magnitude_prune
from repro.tensor import Linear, Sequential, Tensor


class TestMaskDigest:
    def test_deterministic_and_distinct(self):
        a = np.array([0, 3, 7], dtype=np.int32)
        b = np.array([0, 3, 8], dtype=np.int32)
        assert np.array_equal(mask_digest(a), mask_digest(a))
        assert not np.array_equal(mask_digest(a), mask_digest(b))

    def test_dtype_insensitive(self):
        """int32 and int64 views of the same index set hash identically."""
        a32 = np.array([1, 5, 9], dtype=np.int32)
        assert np.array_equal(mask_digest(a32), mask_digest(a32.astype(np.int64)))


class TestAllreduceCompressed:
    def test_mean_matches_manual(self):
        def worker(comm):
            vals = np.full(6, float(comm.rank + 1), dtype=np.float16)
            return allreduce_compressed(comm, vals)

        for res in run_parallel(4, worker):
            assert res.dtype == np.float16
            assert np.allclose(res, 2.5)

    def test_sum_op(self):
        def worker(comm):
            return allreduce_compressed(
                comm, np.ones(3, dtype=np.float32), op="sum"
            )

        for res in run_parallel(3, worker):
            assert np.allclose(res, 3.0)

    def test_mask_check_passes_when_aligned(self):
        ind = np.array([0, 2, 5], dtype=np.int32)

        def worker(comm):
            return allreduce_compressed(
                comm, np.ones(3, np.float32), ind=ind, check_masks=True
            )

        run_parallel(2, worker)

    def test_mask_check_detects_divergence(self):
        def worker(comm):
            ind = np.array([0, 2, 5 + comm.rank], dtype=np.int32)
            return allreduce_compressed(
                comm, np.ones(3, np.float32), ind=ind, check_masks=True
            )

        with pytest.raises(CommError, match="identical masks"):
            run_parallel(2, worker)

    def test_check_requires_index(self):
        def worker(comm):
            return allreduce_compressed(
                comm, np.ones(2, np.float32), check_masks=True
            )

        with pytest.raises(CommError, match="requires the index"):
            run_parallel(2, worker)


class TestSparseAllreduceUnion:
    def test_disjoint_supports(self):
        """Ranks contribute disjoint positions; union holds both halves."""
        def worker(comm):
            if comm.rank == 0:
                ind = np.array([0, 2], dtype=np.int32)
                vals = np.array([1.0, 2.0], dtype=np.float32)
            else:
                ind = np.array([5, 7], dtype=np.int32)
                vals = np.array([10.0, 20.0], dtype=np.float32)
            return sparse_allreduce_union(comm, ind, vals, op="sum")

        for union, out in run_parallel(2, worker):
            assert np.array_equal(union, [0, 2, 5, 7])
            assert np.allclose(out, [1.0, 2.0, 10.0, 20.0])

    def test_overlapping_supports_sum_and_mean(self):
        def worker(comm):
            ind = np.array([1, 4], dtype=np.int32)
            vals = np.array([1.0, float(comm.rank)], dtype=np.float32)
            s_ind, s = sparse_allreduce_union(comm, ind, vals, op="sum")
            m_ind, m = sparse_allreduce_union(comm, ind, vals, op="mean")
            return s_ind, s, m

        for s_ind, s, m in run_parallel(4, worker):
            assert np.array_equal(s_ind, [1, 4])
            assert np.allclose(s, [4.0, 0 + 1 + 2 + 3])
            # mean divides by world size (dense semantics)
            assert np.allclose(m, [1.0, 6.0 / 4])

    def test_matches_dense_allreduce(self):
        """Union sparse allreduce == dense allreduce restricted to union."""
        size = 40

        def worker(comm):
            rng = np.random.default_rng(100 + comm.rank)
            ind = np.sort(rng.choice(size, 12, replace=False)).astype(np.int32)
            vals = rng.standard_normal(12).astype(np.float32)
            dense = np.zeros(size, dtype=np.float32)
            dense[ind] = vals
            dense_out = comm.allreduce(dense, op="sum")
            union, sparse_out = sparse_allreduce_union(comm, ind, vals, op="sum")
            return dense_out, union, sparse_out

        for dense_out, union, sparse_out in run_parallel(3, worker):
            recon = np.zeros(size, dtype=np.float32)
            recon[union] = sparse_out
            assert np.allclose(recon, dense_out, atol=1e-6)

    def test_shape_mismatch_raises(self):
        def worker(comm):
            return sparse_allreduce_union(
                comm, np.array([0, 1], np.int32), np.ones(3, np.float32)
            )

        with pytest.raises(CommError, match="align"):
            run_parallel(2, worker)

    def test_bad_op_raises(self):
        def worker(comm):
            return sparse_allreduce_union(
                comm, np.array([0], np.int32), np.ones(1, np.float32), op="prod"
            )

        with pytest.raises(CommError, match="op must be"):
            run_parallel(2, worker)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        world=st.integers(2, 4),
        space=st.integers(8, 64),
    )
    def test_property_union_reconstruction(self, seed, world, space):
        """For random supports/values, scattering the union result back to a
        dense vector always equals the dense all-reduce."""
        def worker(comm):
            rng = np.random.default_rng(seed * 10 + comm.rank)
            nnz = rng.integers(1, space)
            ind = np.sort(rng.choice(space, nnz, replace=False)).astype(np.int32)
            vals = rng.standard_normal(nnz).astype(np.float32)
            dense = np.zeros(space, np.float32)
            dense[ind] = vals
            d = comm.allreduce(dense, op="sum")
            union, s = sparse_allreduce_union(comm, ind, vals, op="sum")
            recon = np.zeros(space, np.float32)
            recon[union] = s
            return np.allclose(recon, d, atol=1e-5)

        assert all(run_parallel(world, worker))


def _make_state(seed: int, sparsity: float = 0.75) -> SAMOTrainingState:
    rng = np.random.default_rng(seed)
    net = Sequential(Linear(10, 16, rng=rng), Linear(16, 4, rng=rng))
    mask = magnitude_prune(net, sparsity)
    cfg = SAMOConfig(optimizer="sgd", lr=0.1, warn_below_break_even=False)
    return SAMOTrainingState(net, mask, cfg)


class TestSynchronizer:
    def _run_step(self, comm, sync_before_step: bool):
        # Same init on every rank; rank-dependent data -> different grads.
        state = _make_state(seed=7)
        rng = np.random.default_rng(1000 + comm.rank)
        x = Tensor(rng.standard_normal((8, 10)).astype(np.float32))
        y = state.model(x)
        y.sum().backward()
        state.compress_gradients()
        sync = SparseGradientSynchronizer(state, comm)
        if sync_before_step:
            sync.sync()
        state.step()
        return np.concatenate(
            [e.theta32_c for e in state.compressed]
            + [d.theta32.reshape(-1) for d in state.dense]
        ), sync.bytes_last_sync

    def test_replicas_agree_after_sync(self):
        results = run_parallel(3, lambda comm: self._run_step(comm, True))
        thetas = [t for t, _ in results]
        for t in thetas[1:]:
            assert np.array_equal(t, thetas[0])

    def test_replicas_diverge_without_sync(self):
        results = run_parallel(3, lambda comm: self._run_step(comm, False))
        thetas = [t for t, _ in results]
        assert any(not np.array_equal(t, thetas[0]) for t in thetas[1:])

    def test_payload_is_sparse_fraction_of_dense(self):
        def worker(comm):
            state = _make_state(seed=3, sparsity=0.8)
            x = Tensor(np.ones((4, 10), dtype=np.float32))
            state.model(x).sum().backward()
            state.compress_gradients()
            sync = SparseGradientSynchronizer(state, comm)
            sent = sync.sync()
            return sent, sync.dense_bytes()

        for sent, dense in run_parallel(2, worker):
            # prunable payload shrinks ~5x at 80% sparsity; biases stay dense
            assert sent < 0.45 * dense

    def test_sync_matches_manual_mean(self):
        """Synchronizer result == manual fp32 mean of per-rank gradients."""
        def worker(comm):
            state = _make_state(seed=11)
            rng = np.random.default_rng(50 + comm.rank)
            x = Tensor(rng.standard_normal((6, 10)).astype(np.float32))
            state.model(x).sum().backward()
            state.compress_gradients()
            raw = [e.grad16_c.copy() for e in state.compressed]
            manual = [
                (comm.allreduce(g.astype(np.float32)) / comm.size).astype(np.float16)
                for g in raw
            ]
            SparseGradientSynchronizer(state, comm).sync()
            got = [e.grad16_c for e in state.compressed]
            return all(np.array_equal(m, g) for m, g in zip(manual, got))

        assert all(run_parallel(2, worker))


class TestUnionEdgeCases:
    def test_rank_with_empty_support(self):
        """A rank holding no kept values still participates correctly."""
        def worker(comm):
            if comm.rank == 0:
                ind = np.array([], dtype=np.int32)
                vals = np.array([], dtype=np.float32)
            else:
                ind = np.array([2, 7], dtype=np.int32)
                vals = np.array([1.0, 2.0], dtype=np.float32)
            return sparse_allreduce_union(comm, ind, vals, op="sum")

        for union, out in run_parallel(2, worker):
            assert np.array_equal(union, [2, 7])
            assert np.allclose(out, [1.0, 2.0])
