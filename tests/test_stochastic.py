"""repro.stochastic: failure processes, MC robust planning, re-planning.

Pins the subsystem's statistical invariants with fixed seeds:

* sampler determinism — one seed, one event stream; SeedSequence prefix
  property across sample counts;
* rate monotonicity — doubling a constant rate halves the same seeded
  exponential gaps, so the event count never drops and grows overall;
* exposure algebra — weights sum to 1, overlap resolves to the latest
  arrival, absorbing events run to the horizon;
* CRN — every candidate priced on the *same* per-sample scenario
  exposures, and the paired-difference variance is measurably below
  independent sampling (the acceptance criterion);
* degeneracy — a process that can never fire reproduces
  ``Session.plan`` bit-identically, fidelity and all;
* RNG hygiene + ScenarioSet round-trip hardening (the satellites).
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.api import Job, Machine, ScenarioSet, Session
from repro.autotune.cache import EvaluationCache
from repro.parallel.scenarios import SCENARIOS
from repro.rng import resolve_rng, spawn_generators
from repro.stochastic import (
    PROCESSES,
    DegradationKind,
    RateFunction,
    ScenarioProcess,
    ScenarioTimeline,
    get_process,
)


def _constant_process(rate, duration=0.1, scenario="slow-ring-link"):
    return ScenarioProcess(
        "one-kind",
        (
            DegradationKind(
                "k", scenario=SCENARIOS[scenario],
                rate=RateFunction.constant(rate), duration=duration,
            ),
        ),
    )


# ---------------------------------------------------------------------------
# processes and sampling
# ---------------------------------------------------------------------------

class TestScenarioProcess:
    def test_named_presets_resolve_and_round_trip(self):
        for name, process in PROCESSES.items():
            assert get_process(name) is process
            clone = ScenarioProcess.from_dict(
                json.loads(json.dumps(process.to_dict()))
            )
            assert clone == process

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario process"):
            get_process("nope")
        with pytest.raises(TypeError):
            get_process(42)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate kind"):
            RateFunction("quadratic", 1.0)
        with pytest.raises(ValueError, match="finite non-negative"):
            RateFunction.constant(-1.0)
        with pytest.raises(ValueError, match="finite non-negative"):
            RateFunction.constant(math.inf)
        with pytest.raises(ValueError, match="rate_end"):
            RateFunction("linear", 1.0)
        with pytest.raises(ValueError, match="duration"):
            DegradationKind("k", None, RateFunction.constant(1.0), duration=0.0)
        with pytest.raises(ValueError, match="horizon"):
            ScenarioProcess("p", (), horizon=0.0)
        kind = DegradationKind("k", None, RateFunction.constant(1.0))
        with pytest.raises(ValueError, match="duplicate kind"):
            ScenarioProcess("p", (kind, kind))

    def test_neutral_kind_scenario_canonicalises_to_none(self):
        kind = DegradationKind(
            "idle", scenario=SCENARIOS["uniform"], rate=RateFunction.constant(5.0)
        )
        assert kind.scenario is None

    def test_fixed_seed_identical_event_streams(self):
        process = get_process("flaky-links")
        a = process.sample(resolve_rng(11))
        b = process.sample(resolve_rng(11))
        assert a == b
        assert a.events  # rate 2 + 1 over the horizon: all-empty is wrong

    def test_prefix_property_across_sample_counts(self):
        process = get_process("flaky-links")
        few = process.sample_timelines(3, seed=5)
        many = process.sample_timelines(9, seed=5)
        assert many[:3] == few

    def test_doubling_rate_yields_more_events(self):
        # same seed => the doubled rate halves the same exponential
        # gaps, so per-sample counts never drop; over draws they grow
        slow, fast = _constant_process(1.0), _constant_process(2.0)
        total_slow = total_fast = 0
        for seed in range(20):
            n_slow = len(slow.sample(resolve_rng(seed)).events)
            n_fast = len(fast.sample(resolve_rng(seed)).events)
            assert n_fast >= n_slow
            total_slow += n_slow
            total_fast += n_fast
        assert total_fast > total_slow

    def test_linear_rate_thinning_front_vs_back_loaded(self):
        climbing = ScenarioProcess(
            "aging", (DegradationKind(
                "k", SCENARIOS["straggler"], RateFunction.linear(0.0, 4.0),
            ),),
        )
        times = [
            ev.time
            for timeline in climbing.sample_timelines(200, seed=0)
            for ev in timeline.events
        ]
        # a 0 -> λ ramp concentrates arrivals late: E[t] = 2/3 horizon
        assert np.mean(times) > 0.55

    def test_zero_rate_never_fires_and_is_degenerate(self):
        calm = _constant_process(0.0)
        assert calm.is_degenerate
        assert calm.sample(resolve_rng(0)).events == ()
        assert get_process("calm").is_degenerate

    def test_timeline_round_trip(self):
        timeline = get_process("spot-preemption").sample_timelines(4, seed=2)[3]
        clone = ScenarioTimeline.from_dict(
            json.loads(json.dumps(timeline.to_dict()))
        )
        assert clone == timeline
        assert clone.exposure() == timeline.exposure()


class TestExposure:
    def test_weights_sum_to_one_and_neutral_leads(self):
        for seed in range(10):
            exposure = get_process("flaky-links").sample(
                resolve_rng(seed)
            ).exposure()
            assert sum(w for _, w in exposure) == pytest.approx(1.0)
            names = [s.name if s is not None else None for s, _ in exposure]
            if None in names:
                assert names[0] is None

    def test_absorbing_event_runs_to_horizon(self):
        from repro.stochastic import ScenarioEvent

        timeline = ScenarioTimeline(
            horizon=1.0,
            events=(
                ScenarioEvent(0.25, "loss", SCENARIOS["degraded"], None),
            ),
        )
        exposure = dict(
            (s.name if s is not None else None, w) for s, w in timeline.exposure()
        )
        assert exposure[None] == pytest.approx(0.25)
        assert exposure["degraded"] == pytest.approx(0.75)

    def test_overlap_resolves_to_latest_arrival(self):
        from repro.stochastic import ScenarioEvent

        timeline = ScenarioTimeline(
            horizon=1.0,
            events=(
                ScenarioEvent(0.2, "a", SCENARIOS["degraded-ring"], 0.6),
                ScenarioEvent(0.4, "b", SCENARIOS["slow-ring-link"], 0.2),
            ),
        )
        # 0.0-0.2 neutral, 0.2-0.4 ring, 0.4-0.6 flap (later arrival
        # wins), 0.6-0.8 ring again, 0.8-1.0 neutral
        exposure = dict(
            (s.name if s is not None else None, w) for s, w in timeline.exposure()
        )
        assert exposure[None] == pytest.approx(0.4)
        assert exposure["degraded-ring"] == pytest.approx(0.4)
        assert exposure["slow-ring-link"] == pytest.approx(0.2)


# ---------------------------------------------------------------------------
# Monte-Carlo robust planning
# ---------------------------------------------------------------------------

JOB = Job(model="gpt3-xl", n_gpus=16)


class TestMCRobustPlan:
    def test_degenerate_process_reproduces_plan_bit_identically(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        plan = session.plan(JOB)
        mc = session.mc_robust_plan(JOB, "calm", samples=6, seed=9)
        assert mc.fidelity == plan.fidelity == "analytic"
        assert [(e.config, e.mean_time) for e in mc.entries] == [
            (e.config, e.total_time) for e in plan.evaluations
        ]
        assert [e.config for e in mc.feasible] == [
            e.config for e in plan.feasible
        ]
        best = mc.best
        assert best.std_time == best.ci95 == 0.0
        assert best.worst_time == best.mean_time
        assert set(best.sample_costs) == {best.mean_time}

    def test_collective_only_process_uses_batch_fidelity(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        mc = session.mc_robust_plan(JOB, "flaky-links", samples=8, seed=1)
        assert mc.fidelity == "analytic-batch"
        assert mc.labels == ("neutral", "slow-ring-link", "degraded-ring")
        assert mc.stats["evaluated"] > 0

    def test_pipeline_process_needs_engine(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        mc = session.mc_robust_plan(
            JOB, "aging-stragglers", samples=2, seed=0,
            frameworks=("axonn+samo",), microbatch_sizes=(4,),
        )
        assert mc.fidelity == "sim"

    def test_crn_candidates_share_per_sample_exposures_exactly(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        mc = session.mc_robust_plan(JOB, "flaky-links", samples=8, seed=4)
        from repro.stochastic.monte_carlo import _exposure_matrix

        W = _exposure_matrix(
            get_process("flaky-links").sample_timelines(8, seed=4),
            list(mc.labels), 1.0,
        )
        # every candidate's sample costs are its scenario row times the
        # SAME exposure matrix — the common-random-numbers contract
        # (atol covers BLAS matmul vs vector-dot summation order only)
        for entry in mc.entries[:20]:
            row = np.array([entry.per_scenario[l] for l in mc.labels])
            np.testing.assert_allclose(
                np.asarray(entry.sample_costs), row @ W.T, rtol=0, atol=1e-9
            )

    def test_crn_difference_variance_below_independent(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        crn = session.mc_robust_plan(JOB, "flaky-links", samples=16, seed=3)
        ind = session.mc_robust_plan(
            JOB, "flaky-links", samples=16, seed=3, crn=False
        )
        a, b = crn.feasible[0], crn.feasible[1]
        by_config = {e.config: e for e in ind.entries}
        ai, bi = by_config[a.config], by_config[b.config]
        var_crn = np.var(
            np.asarray(b.sample_costs) - np.asarray(a.sample_costs), ddof=1
        )
        var_ind = np.var(
            np.asarray(bi.sample_costs) - np.asarray(ai.sample_costs), ddof=1
        )
        assert var_crn < var_ind

    def test_same_seed_serializes_byte_identically(self):
        def run():
            session = Session(Machine.summit(), cache=EvaluationCache())
            return json.dumps(
                session.mc_robust_plan(
                    JOB, "flaky-links", samples=8, seed=7
                ).to_dict()
            )

        assert run() == run()

    def test_leaders_flags_statistical_ties(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        mc = session.mc_robust_plan(JOB, "flaky-links", samples=8, seed=2)
        leaders = mc.leaders()
        assert leaders and leaders[0] is mc.best
        # an exact duplicate of the winner is indistinguishable from it
        # by construction: paired differences are all zero
        clone = mc.best
        mc.entries.append(clone)
        assert sum(1 for e in mc.leaders() if e is clone) >= 1

    def test_report_and_metrics(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        mc = session.mc_robust_plan(JOB, "flaky-links", samples=4, seed=0)
        report = mc.report(top=3)
        assert "MC robust plan" in report and "95% CI" in report
        metrics = session.metrics()
        assert metrics["mc.samples"] == 4
        assert metrics["mc.timeline_events"]["count"] == 4
        assert metrics['session.ops{op="mc_robust_plan"}'] == 1

    def test_evaluations_shared_with_robust_plan_cache(self):
        # the MC matrix and robust_plan price the same (config, scenario)
        # cells: a robust_plan over the same scenarios is all cache hits
        cache = EvaluationCache()
        session = Session(Machine.summit(), cache=cache)
        session.mc_robust_plan(JOB, "flaky-links", samples=4, seed=0)
        before = cache.stats()["entries"]
        job = JOB.with_(fidelity="analytic-batch")
        res = session.robust_plan(
            job, ScenarioSet.of("slow-ring-link", "degraded-ring", None)
        )
        assert cache.stats()["entries"] == before
        assert res.stats["evaluated"] == 0

    def test_invalid_samples_rejected(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        with pytest.raises(ValueError, match="at least one sample"):
            session.mc_robust_plan(JOB, "calm", samples=0)


# ---------------------------------------------------------------------------
# re-planning
# ---------------------------------------------------------------------------

class TestReplan:
    def test_skewed_failure_repairs_with_finite_break_even(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        decision = session.replan(
            Job(model="gpt3-2.7b", n_gpus=16), "skewed", at=0.3
        )
        assert decision.remaining_batches == pytest.approx(350.0)
        assert decision.decision == "re-partition"
        chosen = decision.chosen
        assert chosen.total_seconds < decision.ride_seconds
        assert math.isfinite(chosen.break_even_batches)
        assert chosen.break_even_batches == pytest.approx(
            chosen.migration_seconds
            / (decision.ride_batch_time - chosen.batch_time)
        )

    def test_ride_when_no_repair_amortises(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        decision = session.replan(
            Job(model="gpt3-2.7b", n_gpus=16), "skewed", at=0.3,
            migration_seconds=1e9,
        )
        assert decision.decision == "ride"

    def test_sampled_event_carries_its_own_timestamp(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        process = get_process("aging-stragglers")
        timeline = next(
            t for t in process.sample_timelines(16, seed=1) if t.events
        )
        decision = session.replan(
            Job(model="gpt3-2.7b", n_gpus=16), timeline.events[0]
        )
        assert decision.at == timeline.events[0].time
        assert decision.scenario == "straggler"

    def test_validation_and_metrics(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        job = Job(model="gpt3-2.7b", n_gpus=16)
        with pytest.raises(ValueError, match="'at'"):
            session.replan(job, "straggler", at=1.0)
        with pytest.raises(ValueError, match="horizon_batches"):
            session.replan(job, "straggler", horizon_batches=0)
        with pytest.raises(ValueError, match="no pipeline"):
            session.replan(Job(model="vgg19", n_gpus=12), "straggler")
        session.replan(job, "straggler")
        assert session.metrics()["mc.replan_evaluations"] == 4

    def test_round_trip_report_and_json(self):
        session = Session(Machine.summit(), cache=EvaluationCache())
        decision = session.replan(
            Job(model="gpt3-2.7b", n_gpus=16), "straggler", at=0.5
        )
        doc = json.loads(json.dumps(decision.to_dict()))
        assert doc["decision"] in ("ride", "re-partition", "re-place",
                                   "re-partition+re-place")
        for option in doc["options"]:
            be = option["break_even_batches"]
            assert be is None or be > 0  # inf serializes as null
        assert "Re-plan decision" in decision.report()


# ---------------------------------------------------------------------------
# satellites: RNG hygiene and ScenarioSet hardening
# ---------------------------------------------------------------------------

class TestRngHygiene:
    def test_resolve_rng_contract(self):
        g = resolve_rng(3)
        assert resolve_rng(g) is g
        assert resolve_rng(3).integers(1000) == resolve_rng(3).integers(1000)

    def test_spawned_generators_prefix_stable(self):
        a = [g.random() for g in spawn_generators(1, 2)]
        b = [g.random() for g in spawn_generators(1, 6)][:2]
        assert a == b

    def test_random_pruning_same_seed_bit_identical(self):
        from repro.pruning.random_pruning import random_mask_for_shapes

        shapes = {"w1": (32, 64), "w2": (16, 16)}
        m1 = random_mask_for_shapes(shapes, 0.9, rng=7)
        m2 = random_mask_for_shapes(shapes, 0.9, rng=7)
        for name in shapes:
            assert np.array_equal(m1.indices[name], m2.indices[name])

    def test_corpus_batches_same_seed_bit_identical(self):
        from repro.train.data import CharCorpus, batch_iterator

        corpus = CharCorpus(vocab_size=16, length=2000, seed=3)
        x1, y1 = corpus.sample_batch(4, 16, rng=11)
        x2, y2 = corpus.sample_batch(4, 16, rng=11)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)
        s1 = [x.sum() + y.sum() for x, y in batch_iterator(corpus, 2, 8, 3, seed=5)]
        s2 = [x.sum() + y.sum() for x, y in batch_iterator(corpus, 2, 8, 3, seed=5)]
        assert s1 == s2

    def test_blob_images_accept_seed(self):
        from repro.train.data import BlobImages

        blobs = BlobImages(n=64, seed=2)
        x1, y1 = blobs.sample_batch(8, rng=4)
        x2, y2 = blobs.sample_batch(8, rng=4)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)


class TestScenarioSetHardening:
    def test_non_normalised_weights_round_trip_identically(self):
        original = ScenarioSet.of(
            "straggler", None, "degraded-ring",
            weights=(3, 2, 5), name="lopsided",
        )
        clone = ScenarioSet.from_dict(json.loads(json.dumps(original.to_dict())))
        assert clone == original
        assert clone.weights == original.weights == (0.3, 0.2, 0.5)
        assert clone.labels() == ("straggler", "neutral", "degraded-ring")

    def test_neutral_member_round_trip(self):
        original = ScenarioSet.of(None, "slow-link", name="mostly-fine")
        clone = ScenarioSet.from_dict(original.to_dict())
        assert clone.scenarios[0] is None
        assert clone == original

    def test_empty_member_list_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            ScenarioSet("empty", ())
        with pytest.raises(ValueError, match="must not be empty"):
            ScenarioSet.of()
        with pytest.raises(ValueError, match="must not be empty"):
            ScenarioSet.from_dict({"name": "empty", "members": []})

    def test_zero_negative_and_non_finite_weights_rejected(self):
        for bad in (0, -1.0, math.inf, math.nan):
            with pytest.raises(ValueError, match="positive finite"):
                ScenarioSet.of("straggler", weights=(bad,))
